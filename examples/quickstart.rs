//! Quickstart: generate a synthetic telescope capture, run the full
//! QUICsand pipeline and print the paper's headline findings.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use quicsand_core::{Analysis, AnalysisConfig};
use quicsand_sessions::multivector::MultiVectorClass;
use quicsand_sessions::Cdf;
use quicsand_traffic::{Scenario, ScenarioConfig};

fn main() {
    // A small but complete scenario: every traffic component of the
    // April-2021 telescope month, at a scale that runs in seconds.
    let mut config = ScenarioConfig::test();
    config.days = 4;
    config.quic_attacks = 160;
    config.victim_pool = 40;
    config.common_attacks = 200;
    println!("Generating {}-day telescope capture...", config.days);
    let scenario = Scenario::generate(&config);
    println!(
        "  {} packets captured by the /9 telescope ({})",
        scenario.records.len(),
        scenario.world.telescope
    );

    println!("Running the measurement pipeline...");
    let analysis = Analysis::run(&scenario, &AnalysisConfig::default());

    println!("\n--- Findings ---");
    println!(
        "Research scanners identified: {} source(s), {} packets removed",
        analysis.research_sources.len(),
        analysis.research_packets
    );
    println!(
        "Sanitized traffic: {} requests / {} responses ({} request sessions, {} response sessions)",
        analysis.requests.len(),
        analysis.responses.len(),
        analysis.request_sessions.len(),
        analysis.response_sessions.len()
    );

    let durations = Cdf::new(
        analysis
            .quic_attacks
            .iter()
            .map(|a| a.duration().as_secs_f64())
            .collect(),
    );
    let intensities = Cdf::new(analysis.quic_attacks.iter().map(|a| a.max_pps).collect());
    println!(
        "QUIC floods detected: {} against {} victims (median duration {:.0} s, median intensity {:.2} max pps)",
        analysis.quic_attacks.len(),
        analysis.victims().len(),
        durations.median().unwrap_or(0.0),
        intensities.median().unwrap_or(0.0)
    );
    println!(
        "Estimated Internet-wide rate at the median: {:.0} pps (telescope sees 1/512 of IPv4)",
        intensities.median().unwrap_or(0.0) * 512.0
    );
    println!(
        "Multi-vector structure: {:.0}% concurrent, {:.0}% sequential, {:.0}% isolated",
        analysis.multivector.share(MultiVectorClass::Concurrent) * 100.0,
        analysis.multivector.share(MultiVectorClass::Sequential) * 100.0,
        analysis.multivector.share(MultiVectorClass::Isolated) * 100.0
    );
    let retries = analysis
        .responses
        .iter()
        .filter(|o| o.dissected.has_retry())
        .count();
    println!("RETRY packets observed in backscatter: {retries} (defence not deployed)");

    println!("\nReproduce every figure/table with:");
    println!("  cargo run --release -p quicsand-bench --bin all_experiments");
}
