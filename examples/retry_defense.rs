//! RETRY defence walkthrough (Table 1 live).
//!
//! Floods the server model at increasing rates, with and without the
//! RETRY defence, and shows what a *legitimate* client experiences in
//! each regime — including the extra round trip RETRY costs.
//!
//! ```text
//! cargo run --release --example retry_defense
//! ```

use quicsand_net::{Duration, Timestamp};
use quicsand_server::client::{run_handshake, QuicClient};
use quicsand_server::model::{QuicServerSim, ServerConfig};
use quicsand_server::replay::InitialStream;
use std::net::Ipv4Addr;

/// Floods `server` for `secs` seconds at `pps`, then measures a
/// legitimate client's handshake.
fn flood_then_connect(mut server: QuicServerSim, pps: u64, secs: u64) -> (f64, bool, u32) {
    let mut stream = InitialStream::new(0xF100D);
    let interval = Duration::from_micros(1_000_000 / pps);
    let mut now = Timestamp::EPOCH;
    for _ in 0..pps * secs {
        let p = stream.next().expect("infinite stream");
        server.handle_datagram(now, p.src_ip, p.src_port, &p.datagram);
        now += interval;
    }
    let answered = if server.stats().retries_sent > 0 {
        server.stats().retries_sent + server.stats().accepted
    } else {
        server.stats().accepted
    };
    let availability = answered as f64 / server.stats().received as f64;

    // Now a real user shows up mid-flood.
    let mut client = QuicClient::new(0x1337);
    run_handshake(
        &mut server,
        &mut client,
        Ipv4Addr::new(192, 0, 2, 55),
        50_443,
        now,
    );
    (availability, client.is_established(), client.round_trips())
}

fn main() {
    println!("Flooding a 4-worker QUIC server for 60 s at increasing rates.\n");
    println!(
        "{:>10}  {:>6}  {:>13}  {:>18}  {:>10}",
        "pps", "RETRY", "availability", "legit client", "RTTs"
    );
    for pps in [100u64, 1_000, 5_000] {
        for retry in [false, true] {
            let server = QuicServerSim::new(
                ServerConfig {
                    workers: 4,
                    ..ServerConfig::default()
                }
                .with_retry(retry),
                7,
            );
            let (availability, established, rtts) = flood_then_connect(server, pps, 60);
            println!(
                "{:>10}  {:>6}  {:>12.0}%  {:>18}  {:>10}",
                pps,
                if retry { "on" } else { "off" },
                availability * 100.0,
                if established { "served" } else { "STARVED" },
                rtts
            );
        }
    }
    println!(
        "\nWithout RETRY the connection table (4 x 1024 slots, 60 s hold) saturates and\n\
         both the flood and the legitimate client are dropped. With RETRY the flood is\n\
         answered statelessly and the legitimate client is always served — at the cost\n\
         of one extra round trip (the paper's Table 1 trade-off)."
    );
}
