//! Scan-campaign forensics: who probes UDP/443, when, and from where.
//!
//! Reproduces the paper's scanning-side analyses on a synthetic month:
//! the research-scanner bias (Fig. 2), the diurnal request pattern
//! (Fig. 3), the eyeball origins (Fig. 5) and the GreyNoise correlation
//! (§5.2).
//!
//! ```text
//! cargo run --release --example scan_campaign
//! ```

use quicsand_core::{Analysis, AnalysisConfig};
use quicsand_intel::NetworkType;
use quicsand_traffic::{Scenario, ScenarioConfig};
use std::collections::HashMap;

fn main() {
    let mut config = ScenarioConfig::test();
    config.days = 7;
    config.request_sessions = 3_000;
    config.quic_attacks = 40;
    let scenario = Scenario::generate(&config);
    let analysis = Analysis::run(&scenario, &AnalysisConfig::default());

    println!("=== The scanning ecosystem at the telescope ===\n");

    // 1. Research bias.
    let factor = config.research_subsample_factor();
    let research_full = analysis.research_packets as f64 * factor;
    let other = (analysis.requests.len() + analysis.responses.len()) as f64;
    println!("Research scanners (full-sweep equivalents): {research_full:.0} packets");
    println!("All other QUIC traffic:                     {other:.0} packets");
    println!(
        "Research share: {:.1}% (paper: 98.5%)\n",
        100.0 * research_full / (research_full + other)
    );
    for src in &analysis.research_sources {
        let info = scenario.world.asdb.lookup(*src).expect("mapped scanner");
        println!(
            "  research source {src} — AS{} {} ({})",
            info.asn, info.name, info.country
        );
    }

    // 2. Diurnal pattern of the sanitized requests.
    println!("\nRequest activity by hour of day (mean packets/hour):");
    let profile = analysis
        .request_hourly
        .hour_of_day_profile(u64::from(config.days) * 24);
    let max = profile.iter().fold(0.0f64, |a, &b| a.max(b)).max(1.0);
    for (hour, value) in profile.iter().enumerate() {
        let bar = "#".repeat((value / max * 40.0).round() as usize);
        println!("  {hour:02}:00 {value:>8.1} {bar}");
    }

    // 3. Origins.
    let mut types: HashMap<NetworkType, usize> = HashMap::new();
    let mut countries: HashMap<&str, usize> = HashMap::new();
    for session in &analysis.request_sessions {
        *types
            .entry(scenario.world.asdb.network_type(session.src))
            .or_default() += 1;
        if let Some(c) = scenario.world.asdb.country(session.src) {
            *countries.entry(c).or_default() += 1;
        }
    }
    println!("\nRequest-session source network types:");
    for ty in NetworkType::ALL {
        let count = types.get(&ty).copied().unwrap_or(0);
        if count > 0 {
            println!(
                "  {:<12} {:>6} ({:.1}%)",
                ty.label(),
                count,
                100.0 * count as f64 / analysis.request_sessions.len() as f64
            );
        }
    }
    let mut ranked: Vec<_> = countries.into_iter().collect();
    ranked.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!("\nTop origin countries (paper: BD 34%, US 27%, DZ 8%):");
    for (country, count) in ranked.iter().take(5) {
        println!(
            "  {country}: {:.1}%",
            100.0 * *count as f64 / analysis.request_sessions.len() as f64
        );
    }

    // 4. GreyNoise correlation.
    let sources: std::collections::HashSet<_> =
        analysis.request_sessions.iter().map(|s| s.src).collect();
    let summary = scenario.world.greynoise.summarize(sources.iter());
    println!(
        "\nGreyNoise view of {} request sources: {} benign, {} tagged ({:.1}%, paper: 2.3%)",
        summary.total,
        summary.benign,
        summary.tagged,
        summary.tagged_share() * 100.0
    );
}
