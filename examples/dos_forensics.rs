//! DoS forensics: the flood analyses of §5.2 on one synthetic month.
//!
//! Detects QUIC floods with the Moore et al. thresholds, compares them
//! with TCP/ICMP floods, correlates multi-vector events and prints a
//! showcase victim timeline (Figs. 6–8, 11).
//!
//! ```text
//! cargo run --release --example dos_forensics
//! ```

use quicsand_core::experiments::fig11;
use quicsand_core::{Analysis, AnalysisConfig};
use quicsand_sessions::dos::attacks_per_victim;
use quicsand_sessions::multivector::MultiVectorClass;
use quicsand_sessions::Cdf;
use quicsand_traffic::{Scenario, ScenarioConfig};

fn main() {
    let mut config = ScenarioConfig::test();
    config.days = 10;
    config.quic_attacks = 400;
    config.victim_pool = 80;
    config.common_attacks = 400;
    println!("Generating a {}-day attack-heavy scenario...", config.days);
    let scenario = Scenario::generate(&config);
    let analysis = Analysis::run(&scenario, &AnalysisConfig::default());

    println!("\n=== QUIC flood census ===");
    println!(
        "{} QUIC floods against {} victims ({:.1} floods/hour; paper: ~4/hour)",
        analysis.quic_attacks.len(),
        analysis.victims().len(),
        analysis.quic_attacks.len() as f64 / (f64::from(config.days) * 24.0)
    );
    let counts = attacks_per_victim(&analysis.quic_attacks);
    let once = counts.values().filter(|&&c| c == 1).count();
    println!(
        "{:.0}% of victims attacked exactly once (paper: >50%)",
        100.0 * once as f64 / counts.len() as f64
    );
    let known = analysis
        .victims()
        .iter()
        .filter(|v| scenario.world.servers.is_known_server(**v))
        .count();
    println!(
        "{:.0}% of victims are known QUIC servers (paper: 98% of attacks)",
        100.0 * known as f64 / counts.len() as f64
    );

    println!("\n=== QUIC vs TCP/ICMP floods ===");
    let quic_d = Cdf::new(
        analysis
            .quic_attacks
            .iter()
            .map(|a| a.duration().as_secs_f64())
            .collect(),
    );
    let common_d = Cdf::new(
        analysis
            .common_attacks
            .iter()
            .map(|a| a.duration().as_secs_f64())
            .collect(),
    );
    println!(
        "median duration: QUIC {:.0} s vs TCP/ICMP {:.0} s (paper: 255 s vs 1499 s)",
        quic_d.median().unwrap_or(0.0),
        common_d.median().unwrap_or(0.0)
    );
    let quic_i = Cdf::new(analysis.quic_attacks.iter().map(|a| a.max_pps).collect());
    let common_i = Cdf::new(analysis.common_attacks.iter().map(|a| a.max_pps).collect());
    println!(
        "median intensity: QUIC {:.2} vs TCP/ICMP {:.2} max pps (paper: ~1 for both)",
        quic_i.median().unwrap_or(0.0),
        common_i.median().unwrap_or(0.0)
    );

    println!("\n=== Multi-vector structure ===");
    for class in [
        MultiVectorClass::Concurrent,
        MultiVectorClass::Sequential,
        MultiVectorClass::Isolated,
    ] {
        println!(
            "  {:<11} {:.1}%",
            class.label(),
            analysis.multivector.share(class) * 100.0
        );
    }
    let overlaps = analysis.multivector.overlap_shares();
    if !overlaps.is_empty() {
        let full = overlaps.iter().filter(|s| **s >= 0.999).count();
        println!(
            "  {:.0}% of concurrent floods overlap their common flood completely (paper: ~75%)",
            100.0 * full as f64 / overlaps.len() as f64
        );
    }

    println!("\n=== Showcase victim timeline (Fig. 11) ===");
    println!("{}", fig11::run(&analysis).render());
}
