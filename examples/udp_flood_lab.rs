//! UDP flood lab: the server model and client driven over *real* UDP
//! sockets on loopback.
//!
//! This is the paper's local testbed in miniature: a QUIC server behind
//! a UDP socket, a replayed Initial flood, and a legitimate client that
//! completes a real handshake over the wire — with RETRY on, the client
//! transparently honours the Retry packet it receives.
//!
//! Everything stays on 127.0.0.1; no external traffic is generated.
//!
//! ```text
//! cargo run --release --example udp_flood_lab
//! ```

use quicsand_net::Timestamp;
use quicsand_server::client::QuicClient;
use quicsand_server::model::{QuicServerSim, ServerConfig};
use quicsand_server::replay::InitialStream;
use std::net::{SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

/// Runs the server loop on `socket` until `stop` is set, feeding every
/// datagram into the simulator and writing its responses back.
fn serve(socket: UdpSocket, mut server: QuicServerSim, stop: Arc<AtomicBool>) -> QuicServerSim {
    let mut buf = [0u8; 2048];
    let start = Instant::now();
    socket
        .set_read_timeout(Some(StdDuration::from_millis(50)))
        .expect("set timeout");
    while !stop.load(Ordering::Relaxed) {
        match socket.recv_from(&mut buf) {
            Ok((len, peer)) => {
                let SocketAddr::V4(peer) = peer else { continue };
                // Virtual time tracks wall time for token freshness.
                let now = Timestamp::from_micros(start.elapsed().as_micros() as u64);
                let responses = server.handle_datagram(now, *peer.ip(), peer.port(), &buf[..len]);
                for response in responses {
                    let _ = socket.send_to(&response.payload, SocketAddr::V4(peer));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => panic!("server socket error: {e}"),
        }
    }
    server
}

/// Drives a full client handshake over UDP; returns (established, rtts).
fn connect(server_addr: SocketAddrV4, seed: u64) -> (bool, u32) {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    socket
        .set_read_timeout(Some(StdDuration::from_millis(500)))
        .expect("set timeout");
    let mut client = QuicClient::new(seed);
    let mut out = client.initial_datagram();
    let mut buf = [0u8; 2048];
    for _ in 0..8 {
        socket.send_to(&out, server_addr).expect("send");
        let mut replied = false;
        // Drain the flight; the server may send several datagrams.
        while let Ok((len, _)) = socket.recv_from(&mut buf) {
            if let Some(next) = client.handle_datagram(&buf[..len]) {
                out = next;
                replied = true;
            }
            if client.is_established() {
                return (true, client.round_trips());
            }
        }
        if !replied {
            break;
        }
    }
    (client.is_established(), client.round_trips())
}

fn run_regime(retry: bool, flood_packets: usize) {
    let server_socket = UdpSocket::bind("127.0.0.1:0").expect("bind server");
    let server_addr = match server_socket.local_addr().expect("addr") {
        SocketAddr::V4(a) => a,
        SocketAddr::V6(_) => unreachable!("bound v4"),
    };
    let stop = Arc::new(AtomicBool::new(false));
    let server = QuicServerSim::new(
        ServerConfig {
            workers: 2,
            conns_per_worker: 64, // small table so the flood bites fast
            ..ServerConfig::default()
        }
        .with_retry(retry),
        9,
    );
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || serve(server_socket, server, stop))
    };

    // Flood from a pool of sockets: loopback cannot spoof addresses,
    // so distinct source *ports* stand in for the spoofed identities
    // (the server keys connections on the 4-tuple either way).
    let flooders: Vec<UdpSocket> = (0..160)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind flooder"))
        .collect();
    for (i, packet) in InitialStream::new(0xF100D).take(flood_packets).enumerate() {
        flooders[i % flooders.len()]
            .send_to(&packet.datagram, server_addr)
            .expect("flood send");
        if i % 64 == 63 {
            // Pace the flood so the server's socket buffer keeps up.
            std::thread::sleep(StdDuration::from_millis(2));
        }
    }
    std::thread::sleep(StdDuration::from_millis(200));

    // A legitimate client connects mid-flood.
    let (established, rtts) = connect(server_addr, 0xC11E57);

    stop.store(true, Ordering::Relaxed);
    let server = handle.join().expect("server thread");
    let stats = server.stats();
    println!(
        "RETRY {:<3}  flood {:>5} pkts  accepted {:>5}  retries {:>5}  table-drops {:>5}  legit client: {} in {} RTT(s)",
        if retry { "on" } else { "off" },
        flood_packets,
        stats.accepted,
        stats.retries_sent,
        stats.dropped_table,
        if established { "served" } else { "STARVED" },
        rtts
    );
}

fn main() {
    println!("QUIC flood lab over real UDP loopback sockets\n");
    for retry in [false, true] {
        run_regime(retry, 2_000);
    }
    println!(
        "\nWithout RETRY the spoof-flood fills the connection table and the real\n\
         client is starved; with RETRY the flood elicits only stateless Retry\n\
         packets (spoofed sources never echo the token) and the real client is\n\
         served after one extra round trip."
    );
}
