//! `quicsand` — command-line front end for the QUICsand reproduction.
//!
//! ```text
//! quicsand generate --out capture.qscp [--scale test|demo|paper] [--seed N]
//! quicsand analyze <capture.qscp> [--threads N] [--verbose]
//! quicsand live <capture.qscp> [--shards N] [--checkpoint-every N] [--alert-format text|json]
//! quicsand replay --pps 1000 [--requests 300001] [--workers 4] [--retry|--adaptive 0.5]
//! quicsand experiments [--scale test|demo|paper]
//! ```

use quicsand_core::{Analysis, AnalysisConfig};
use quicsand_events::qlog::QlogWriter;
use quicsand_events::Subscriber;
use quicsand_faults::{FaultPlan, FaultProfile};
use quicsand_net::capture::CaptureWriter;
use quicsand_net::ZeroCopyCaptureReader;
use quicsand_obs::EventsMetrics;
use quicsand_sessions::multivector::MultiVectorClass;
use quicsand_sessions::Cdf;
use quicsand_traffic::{Scenario, ScenarioConfig, ScenarioKind};
use std::io::BufWriter;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "live" => cmd_live(&args[1..]),
        "replay" => cmd_replay(&args[1..]),
        "experiments" => cmd_experiments(&args[1..]),
        "export" => cmd_export(&args[1..]),
        "metrics" => cmd_metrics(&args[1..]),
        "forensics" => cmd_forensics(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
quicsand — QUIC scan & DoS-flood measurement toolkit (IMC'21 reproduction)

USAGE:
    quicsand generate --out <file.qscp> [--scale test|demo|paper] [--seed N]
                      [--scenario migration-abuse|evolving-scanners|
                                  version-drift|retry-amplification]
        Generate a synthetic telescope capture and write it to disk.
        --scenario layers a post-2021 workload variant on top of the
        baseline: connection-migration abuse (stable-CID flows that
        switch source address mid-session), evolving aggressive
        scanners (cadence and coverage grow week over week), version
        drift (draft retirement -> v1 -> v2 with Version Negotiation
        backscatter), or Retry amplification (victims answer spoofed
        Initials with varied-token Retry packets).

    quicsand analyze <file.qscp> [--threads N] [--verbose]
                     [--fault-profile none|standard|aggressive] [--fault-seed N]
                     [--metrics-out <file>] [--events-out <file.qlog>]
        Run the sessionization + DoS-inference pipeline on a capture.
        --threads shards ingest+sessionization by source across N
        workers (default: all cores); results are identical at any N.
        --verbose adds a per-stage walltime breakdown.
        --fault-profile injects a seeded adversarial fault mix
        (truncation, corrupt versions, duplicates, clock skew, ...)
        into the record stream before ingest, to exercise the
        quarantine path; --fault-seed varies the mix (default 0xF4017).
        --metrics-out writes the full metrics registry (counters,
        gauges, histograms — including volatile walltimes) as
        canonical JSON after verifying it reconciles with the
        pipeline's stats.
        --events-out mirrors the run as a typed event stream in qlog
        0.4 JSON-SEQ (RFC 7464) — wire rejections, Retry/VN
        sightings, session lifecycle — via a single-threaded forensic
        re-pass, so the stream is identical at any --threads. An
        unwritable path fails before the pipeline runs.

    quicsand metrics <file.qscp> [--format prometheus|json] [--threads N]
                     [--fault-profile ...] [--fault-seed N] [--stable-only]
        Run the same pipeline and print only the metrics registry to
        stdout — Prometheus text exposition by default, canonical JSON
        with --format json. --stable-only drops volatile series
        (walltimes, thread counts), leaving exactly the
        trace-deterministic subset.

    quicsand live [file.qscp] [--input <file.qscp>]... [--window MINS]
                  [--weight W] [--escalate W] [--shards N] [--chunk N]
                  [--source-rate N] [--source-queue N] [--source-batch N]
                  [--max-victims N] [--evidence-ring N]
                  [--checkpoint-every N] [--alert-format text|json]
                  [--metrics-out <file>] [--events-out <file.qlog>]
                  [--verbose]
        Stream one or more captures through the live flood-detection
        engine and print alert lifecycle events (OPEN / ESCALATE /
        CLOSE / RECLASSIFY) as they fire. Each --input adds a feed;
        feeds run concurrently behind bounded queues and are merged in
        event-time order, so alerts are identical to a single merged
        capture at any source count. An empty feed is drained and
        counted, not fatal; a feed that fails mid-run reconnects and
        resumes. --window sets the sessionization timeout; --weight
        scales the Moore thresholds; --escalate sets the escalation
        tier multiplier; --shards runs per-source detector shards
        (alerts are identical at any N); --source-rate paces each feed
        (records/s); --source-queue bounds each feed's queue (records);
        --source-batch sets the per-feed transfer batch target
        (records; batches never change the merged order);
        --max-victims caps tracked victims per channel (LRU eviction);
        --checkpoint-every N snapshots engine + per-source cursors
        every N records (schema v2; v1 engine-only checkpoints still
        restore), round-trips through JSON, and resumes every feed
        from the restored copy — proving the checkpoint is lossless
        mid-run. --metrics-out writes the engine's metrics registry as
        canonical JSON after the run (stable series survive
        checkpoint/restore unchanged). --evidence-ring sets the
        per-alert evidence ring capacity (most recent packets kept as
        replayable forensics; default 16). --events-out writes the
        typed event stream (wire rejections, Retry/VN sightings,
        alert lifecycle) as qlog 0.4 JSON-SEQ with one vantage entry
        per feed; record-tied events are identical at any --shards
        and every event's timestamp comes from the trace, and an
        unwritable path fails before any feed is opened.

    quicsand replay --pps <rate> [--requests N] [--workers N]
                    [--retry | --adaptive <occupancy>]
        Flood the local QUIC server model (Table 1 style) and report
        service availability.

    quicsand export <file.qscp> --pcap <file.pcap>
        Convert a capture to classic libpcap (raw-IP linktype) for
        inspection in Wireshark.

    quicsand forensics <file.qscp> [--out <dir>] [--replay]
                       [--window MINS] [--weight W] [--shards N]
                       [--chunk N] [--evidence-ring N]
        Run the live engine over a capture and export every closed
        QUIC alert as a self-contained replayable qlog slice
        (alert-<i>.qlog under --out, default `forensics/`): config,
        per-minute arrival profile, evidence ring, and the correlated
        common-channel floods. --replay feeds each exported slice
        back through a fresh detector and fails unless it reproduces
        the identical closed alert and multi-vector verdict.

    quicsand forensics check <file.qlog>
        Validate a qlog file's RFC 7464 JSON-SEQ framing and header,
        and print a record/event summary.

    quicsand experiments [--scale test|demo|paper] [--threads N]
        Regenerate every paper table/figure and print the reports.";

/// Looks up the value following `name`.
///
/// `Ok(None)` when the flag is absent; an error when the flag is
/// present but its value is missing or looks like another flag
/// (`--out --scale` used to happily write a file named `--scale`).
fn flag_value<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(value) if value.starts_with("--") => Err(format!(
            "flag {name} expects a value, but got the flag `{value}`"
        )),
        Some(value) => Ok(Some(value.as_str())),
        None => Err(format!("flag {name} is missing its value")),
    }
}

/// Collects every value of a repeatable flag (`--input a --input b`),
/// with the same flag-shaped-value rejection as [`flag_value`].
fn flag_values<'a>(args: &'a [String], name: &str) -> Result<Vec<&'a str>, String> {
    let mut values = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        if arg != name {
            continue;
        }
        match args.get(i + 1) {
            Some(value) if value.starts_with("--") => {
                return Err(format!(
                    "flag {name} expects a value, but got the flag `{value}`"
                ))
            }
            Some(value) => values.push(value.as_str()),
            None => return Err(format!("flag {name} is missing its value")),
        }
    }
    Ok(values)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Builds the `AnalysisConfig`, honouring `--threads N`.
fn analysis_config(args: &[String]) -> Result<AnalysisConfig, String> {
    let mut config = AnalysisConfig::default();
    if let Some(threads) = flag_value(args, "--threads")? {
        config.threads = threads
            .parse::<usize>()
            .ok()
            .filter(|&t| t >= 1)
            .ok_or(format!(
                "invalid --threads `{threads}` (want an integer >= 1)"
            ))?;
    }
    Ok(config)
}

/// Builds a [`FaultPlan`] from `--fault-profile` / `--fault-seed`.
///
/// `Ok(None)` when no profile is requested; `--fault-seed` without a
/// profile is rejected rather than silently ignored.
fn fault_plan(args: &[String]) -> Result<Option<FaultPlan>, String> {
    let profile = flag_value(args, "--fault-profile")?;
    let seed = flag_value(args, "--fault-seed")?;
    let Some(profile) = profile else {
        if seed.is_some() {
            return Err("--fault-seed requires --fault-profile".into());
        }
        return Ok(None);
    };
    let profile: FaultProfile = profile.parse()?;
    let seed: u64 = seed
        .map(|s| {
            s.parse()
                .map_err(|_| format!("invalid --fault-seed `{s}` (want a u64)"))
        })
        .transpose()?
        .unwrap_or(0xF4017);
    Ok(Some(FaultPlan::new(profile, seed)))
}

fn scale_config(args: &[String]) -> Result<ScenarioConfig, String> {
    let mut config = match flag_value(args, "--scale")?.unwrap_or("test") {
        "test" => ScenarioConfig::test(),
        "demo" => {
            // The demo preset mirrors quicsand-bench's.
            ScenarioConfig {
                days: 30,
                research_packets_per_scan: 25_000,
                request_sessions: 5_000,
                quic_attacks: 800,
                victim_pool: 110,
                common_attacks: 2_400,
                misconfig_sessions: 2_000,
                garbage_udp443_packets: 500,
                ..ScenarioConfig::paper_month()
            }
        }
        "paper" => ScenarioConfig::paper_month(),
        other => return Err(format!("unknown scale `{other}`")),
    };
    if let Some(seed) = flag_value(args, "--seed")? {
        config.seed = seed.parse().map_err(|_| format!("invalid seed `{seed}`"))?;
    }
    Ok(config)
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let out = flag_value(args, "--out")?.ok_or("generate requires --out <file>")?;
    let config = scale_config(args)?;
    let kind = flag_value(args, "--scenario")?
        .map(|s| s.parse::<ScenarioKind>().map_err(|e| e.to_string()))
        .transpose()?;
    match kind {
        Some(kind) => eprintln!(
            "generating {kind} scenario (seed {:#x}, {} days)...",
            config.seed, config.days
        ),
        None => eprintln!(
            "generating scenario (seed {:#x}, {} days)...",
            config.seed, config.days
        ),
    }
    let scenario = match kind {
        Some(kind) => kind.generate(&config),
        None => Scenario::generate(&config),
    };
    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let mut writer =
        CaptureWriter::new(BufWriter::new(file)).map_err(|e| format!("write header: {e}"))?;
    for record in &scenario.records {
        writer
            .write(record)
            .map_err(|e| format!("write record: {e}"))?;
    }
    writer.finish().map_err(|e| format!("flush: {e}"))?;
    println!(
        "wrote {} records to {out} ({} QUIC floods planted against {} victims)",
        scenario.records.len(),
        scenario.truth.plan.quic.len(),
        scenario.truth.plan.victims.len()
    );
    Ok(())
}

/// First positional argument: not a flag, and not a flag's value.
fn positional(args: &[String]) -> Option<&String> {
    args.iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && (*i == 0 || !args[*i - 1].starts_with("--")))
        .map(|(_, a)| a)
}

/// Loads the capture at the positional path, applies any requested
/// fault plan, runs the batch pipeline, and verifies that the exported
/// metrics reconcile with the pipeline stats — shared by `analyze` and
/// `metrics`. Progress goes to stderr so stdout stays clean for the
/// caller's own output. A disabled `subscriber` (the `--events-out`
/// flag absent) skips the event re-pass entirely.
fn run_pipeline<S: Subscriber>(
    args: &[String],
    command: &str,
    subscriber: &mut S,
) -> Result<Analysis, String> {
    // Validate flags before touching the filesystem.
    let mut analysis_cfg = analysis_config(args)?;
    let plan = fault_plan(args)?;
    let path = positional(args).ok_or(format!("{command} requires a capture path"))?;
    // Zero-copy load: the capture is pulled into one arena and decoded
    // in place, so UDP payloads are views rather than per-record copies.
    let mut reader =
        ZeroCopyCaptureReader::from_path(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut records = reader
        .read_to_end()
        .map_err(|e| format!("read records: {e}"))?;
    eprintln!("loaded {} records; running pipeline...", records.len());

    let fault_summary = plan.map(|mut plan| {
        // The injector computes jitter/reorder deltas against the same
        // guard thresholds the pipeline will enforce.
        analysis_cfg.guard = plan.profile().guard;
        records = plan.apply_all(&records);
        *plan.summary()
    });
    if let Some(summary) = &fault_summary {
        let breakdown: Vec<String> = summary
            .as_table()
            .iter()
            .filter(|(_, count)| *count > 0)
            .map(|(label, count)| format!("{label} {count}"))
            .collect();
        eprintln!(
            "fault injection: {} -> {} records, {} fault(s): {}",
            summary.input_records,
            summary.emitted_records,
            summary.total_injected(),
            if breakdown.is_empty() {
                "none".into()
            } else {
                breakdown.join(", ")
            }
        );
    }

    // The world is rebuilt deterministically; AS/provider lookups for a
    // *foreign* capture will classify unknown sources as `other`.
    let config = scale_config(args)?;
    let world = quicsand_intel::SyntheticInternet::build(&quicsand_intel::TopologyConfig {
        seed: config.seed,
        servers_per_provider: (config.victim_pool * 2).max(48),
        ..quicsand_intel::TopologyConfig::default()
    });
    let scenario = Scenario {
        world,
        records,
        truth: quicsand_traffic::GroundTruth {
            plan: quicsand_traffic::floods::AttackPlan {
                quic: vec![],
                common: vec![],
                victims: vec![],
            },
            research_packets: 0,
            request_packets: 0,
            response_packets: 0,
            common_packets: 0,
            garbage_packets: 0,
        },
        config,
    };
    let analysis = Analysis::run_with(&scenario, &analysis_cfg, subscriber);
    // Hard invariant: every exported counter equals the corresponding
    // stats field, at any thread count. A mismatch is a bug, not noise.
    analysis
        .verify_metrics()
        .map_err(|e| format!("metrics reconciliation failed: {}", e.join("; ")))?;
    Ok(analysis)
}

/// Writes the full (volatile included) canonical-JSON metrics dump when
/// `--metrics-out <file>` was given.
fn write_metrics_out(
    args: &[String],
    registry: &quicsand_obs::MetricsRegistry,
) -> Result<(), String> {
    if let Some(out) = flag_value(args, "--metrics-out")? {
        std::fs::write(out, registry.render_json(false))
            .map_err(|e| format!("write {out}: {e}"))?;
        eprintln!("metrics written to {out}");
    }
    Ok(())
}

/// Opens the qlog writer when `--events-out <path>` was given —
/// creating the file (and failing on an unwritable path) before any
/// heavy work starts. `None` keeps the zero-cost disabled path.
fn events_out_writer(
    args: &[String],
    title: &str,
    vantage: &[String],
) -> Result<Option<QlogWriter>, String> {
    flag_value(args, "--events-out")?
        .map(|path| QlogWriter::create(path, title, vantage))
        .transpose()
}

/// Finishes an open qlog writer: flushes, publishes the event/byte
/// totals on `registry`, and reports the write on stderr.
fn finish_events_out(
    args: &[String],
    sink: Option<QlogWriter>,
    registry: &quicsand_obs::MetricsRegistry,
) -> Result<(), String> {
    let Some(writer) = sink else {
        return Ok(());
    };
    let (events, bytes) = writer.finish()?;
    EventsMetrics::register(registry).add_totals(events, bytes);
    // The flag was present, so the path parses; unwrap via expect.
    let path = flag_value(args, "--events-out")?.expect("writer implies the flag");
    eprintln!("events: {events} event(s), {bytes} bytes -> {path}");
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let vantage: Vec<String> = positional(args).cloned().into_iter().collect();
    let mut sink = events_out_writer(args, "quicsand analyze", &vantage)?;
    let analysis = run_pipeline(args, "analyze", &mut sink)?;
    finish_events_out(args, sink, &analysis.registry)?;
    write_metrics_out(args, &analysis.registry)?;

    let stats = &analysis.ingest;
    println!(
        "ingest: {} records, {} valid QUIC, {} false positives, {} TCP, {} ICMP, {} quarantined",
        stats.total,
        stats.quic_valid,
        stats.quic_false_positives,
        stats.tcp,
        stats.icmp,
        stats.quarantine.total()
    );
    if stats.quarantine.total() > 0 {
        let breakdown: Vec<String> = stats
            .quarantine
            .as_table()
            .iter()
            .filter(|(_, count)| *count > 0)
            .map(|(label, count)| format!("{label} {count}"))
            .collect();
        println!("quarantine: {}", breakdown.join(", "));
    }
    let pipeline = &analysis.stats;
    println!(
        "pipeline: {} thread(s), {:.0} records/s ingest; peak open sessions {}",
        pipeline.threads,
        pipeline.ingest_records_per_sec(),
        pipeline.peak_open_sessions
    );
    if has_flag(args, "--verbose") {
        // Keep the `pipeline:` prefix: walltime lines are excluded from
        // cross-thread determinism comparisons by that prefix.
        println!("pipeline: {}", pipeline.stage_summary());
    }
    println!(
        "sanitized: {} requests / {} responses after removing {} research packets from {} scanner(s)",
        analysis.requests.len(),
        analysis.responses.len(),
        analysis.research_packets,
        analysis.research_sources.len()
    );
    println!(
        "sessions: {} request, {} response, {} TCP/ICMP",
        analysis.request_sessions.len(),
        analysis.response_sessions.len(),
        analysis.common_sessions.len()
    );
    let durations = Cdf::new(
        analysis
            .quic_attacks
            .iter()
            .map(|a| a.duration().as_secs_f64())
            .collect(),
    );
    println!(
        "QUIC floods: {} against {} victims (median {:.0}s, median {:.2} max pps)",
        analysis.quic_attacks.len(),
        analysis.victims().len(),
        durations.median().unwrap_or(0.0),
        Cdf::new(analysis.quic_attacks.iter().map(|a| a.max_pps).collect())
            .median()
            .unwrap_or(0.0)
    );
    println!(
        "multi-vector: {:.0}% concurrent / {:.0}% sequential / {:.0}% isolated (of {} QUIC floods)",
        analysis.multivector.share(MultiVectorClass::Concurrent) * 100.0,
        analysis.multivector.share(MultiVectorClass::Sequential) * 100.0,
        analysis.multivector.share(MultiVectorClass::Isolated) * 100.0,
        analysis.quic_attacks.len()
    );
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let stable_only = has_flag(args, "--stable-only");
    let format = flag_value(args, "--format")?.unwrap_or("prometheus");
    let analysis = run_pipeline(args, "metrics", &mut quicsand_events::NoopSubscriber)?;
    let rendered = match format {
        "prometheus" => analysis.registry.render_prometheus(stable_only),
        "json" => analysis.registry.render_json(stable_only),
        other => return Err(format!("unknown --format `{other}` (want prometheus|json)")),
    };
    print!("{rendered}");
    Ok(())
}

fn cmd_live(args: &[String]) -> Result<(), String> {
    use quicsand_live::{parse_checkpoint, LiveConfig, MultiSourceLive};
    use quicsand_net::multi::{capture_file_factory, SourceFactory, SourceSet, SourceSetConfig};
    use quicsand_net::Duration;
    use quicsand_sessions::dos::DosThresholds;
    use quicsand_sessions::multivector::MultiVectorClass;
    use quicsand_sessions::SessionConfig;
    use quicsand_telescope::GuardConfig;

    // Feeds: the optional positional capture plus any number of
    // repeatable --input captures, merged in event-time order.
    let mut inputs: Vec<String> = Vec::new();
    if let Some(path) = positional(args) {
        inputs.push(path.clone());
    }
    inputs.extend(flag_values(args, "--input")?.into_iter().map(String::from));
    if inputs.is_empty() {
        return Err("live requires a capture path (positional or --input <file>)".into());
    }
    let window: u64 = flag_value(args, "--window")?
        .map(|v| {
            v.parse()
                .map_err(|_| format!("invalid --window `{v}` (minutes)"))
        })
        .transpose()?
        .unwrap_or(5);
    let weight: f64 = flag_value(args, "--weight")?
        .map(|v| v.parse().map_err(|_| format!("invalid --weight `{v}`")))
        .transpose()?
        .unwrap_or(1.0);
    let escalate: f64 = flag_value(args, "--escalate")?
        .map(|v| v.parse().map_err(|_| format!("invalid --escalate `{v}`")))
        .transpose()?
        .unwrap_or(LiveConfig::default().escalation_weight);
    let shards: usize = flag_value(args, "--shards")?
        .map(|v| v.parse().map_err(|_| format!("invalid --shards `{v}`")))
        .transpose()?
        .unwrap_or(1);
    let chunk: usize = flag_value(args, "--chunk")?
        .map(|v| {
            v.parse::<usize>()
                .ok()
                .filter(|&c| c >= 1)
                .ok_or(format!("invalid --chunk `{v}` (want an integer >= 1)"))
        })
        .transpose()?
        .unwrap_or(1024);
    let max_victims: usize = flag_value(args, "--max-victims")?
        .map(|v| {
            v.parse::<usize>()
                .ok()
                .filter(|&m| m >= 1)
                .ok_or(format!("invalid --max-victims `{v}`"))
        })
        .transpose()?
        .unwrap_or(LiveConfig::default().max_victims);
    let evidence_ring: usize = flag_value(args, "--evidence-ring")?
        .map(|v| {
            v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or(format!(
                "invalid --evidence-ring `{v}` (want an integer >= 1)"
            ))
        })
        .transpose()?
        .unwrap_or(LiveConfig::default().evidence_capacity);
    let checkpoint_every: Option<u64> = flag_value(args, "--checkpoint-every")?
        .map(|v| {
            v.parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or(format!("invalid --checkpoint-every `{v}`"))
        })
        .transpose()?;
    let source_queue: usize = flag_value(args, "--source-queue")?
        .map(|v| {
            v.parse::<usize>().ok().filter(|&q| q >= 1).ok_or(format!(
                "invalid --source-queue `{v}` (want an integer >= 1)"
            ))
        })
        .transpose()?
        .unwrap_or(SourceSetConfig::default().queue_capacity);
    let source_batch: usize = flag_value(args, "--source-batch")?
        .map(|v| {
            v.parse::<usize>().ok().filter(|&b| b >= 1).ok_or(format!(
                "invalid --source-batch `{v}` (want an integer >= 1)"
            ))
        })
        .transpose()?
        .unwrap_or(SourceSetConfig::default().batch_records);
    let source_rate: Option<u64> = flag_value(args, "--source-rate")?
        .map(|v| {
            v.parse::<u64>()
                .ok()
                .filter(|&r| r >= 1)
                .ok_or(format!("invalid --source-rate `{v}` (want records/s >= 1)"))
        })
        .transpose()?;
    let json = match flag_value(args, "--alert-format")?.unwrap_or("text") {
        "text" => false,
        "json" => true,
        other => return Err(format!("unknown --alert-format `{other}` (want text|json)")),
    };
    let verbose = has_flag(args, "--verbose");

    let guard = GuardConfig::default();
    let config = LiveConfig {
        thresholds: DosThresholds::moore().scaled(weight),
        // Match the batch pipeline's convention: sessionization
        // tolerates exactly the reordering the ingest guard admits.
        session: SessionConfig {
            timeout: Duration::from_mins(window),
            skew_tolerance: guard.reorder_tolerance,
        },
        escalation_weight: escalate,
        max_victims,
        evidence_capacity: evidence_ring,
    };
    // The qlog sink (when requested) is created first: an unwritable
    // --events-out path must fail before any feed is opened. The
    // vantage metadata carries one label per feed.
    let mut sink = events_out_writer(args, "quicsand live", &inputs)?;
    // A bad path or corrupt header is still a hard, immediate error —
    // only *mid-run* source failures are tolerated (reconnect/abandon).
    // An empty capture opens as an instantly-EOF feed, not an error.
    for path in &inputs {
        capture_file_factory(path.clone())
            .open()
            .map_err(|e| format!("read {path}: {e}"))?;
    }
    let set_config = SourceSetConfig {
        queue_capacity: source_queue,
        batch_records: source_batch,
        rate_limit: source_rate,
        ..SourceSetConfig::default()
    };
    let make_factories = || -> Vec<Box<dyn SourceFactory>> {
        inputs
            .iter()
            .map(|path| Box::new(capture_file_factory(path.clone())) as Box<dyn SourceFactory>)
            .collect()
    };
    let mut live = MultiSourceLive::new(
        config,
        guard,
        shards,
        SourceSet::spawn(make_factories(), &set_config),
    );

    let emit = |event: &quicsand_live::LiveEvent| {
        if json {
            println!("{}", event.render_json());
        } else {
            println!("{}", event.render_text());
        }
    };

    let mut offered_at_checkpoint: u64 = 0;
    let mut checkpoints: u64 = 0;
    let mut checkpoint_bytes: u64 = 0;
    while let Some(events) = live.pump_with(chunk, &mut sink) {
        for event in events {
            emit(&event);
        }
        let due =
            checkpoint_every.is_some_and(|every| live.offered() - offered_at_checkpoint >= every);
        if due {
            // Self-verifying checkpoint: serialize the v2 snapshot
            // (engine + per-source cursors), parse it back, restore a
            // fresh engine *and* fresh feeds resumed past the cursors,
            // prove the round trip is lossless, and continue from the
            // restored copy — the rest of the run exercises the
            // multi-source resume path.
            let snapshot = live.snapshot();
            let encoded =
                serde_json::to_string(&snapshot).map_err(|e| format!("checkpoint encode: {e}"))?;
            let decoded = parse_checkpoint(&encoded)?;
            let restored = MultiSourceLive::restore(&decoded, make_factories(), &set_config)?;
            if restored.snapshot() != snapshot {
                return Err(format!(
                    "checkpoint self-verification failed after {} records",
                    live.offered()
                ));
            }
            live = restored;
            checkpoints += 1;
            checkpoint_bytes += encoded.len() as u64;
            // restore() rebuilds the registry from the snapshot, which
            // carries no checkpoint telemetry — re-seed the cumulative
            // totals so the exported counters cover the whole run, not
            // just the stretch since the last resume.
            live.engine().metrics().checkpoints_total.add(checkpoints);
            live.engine()
                .metrics()
                .checkpoint_bytes_total
                .add(checkpoint_bytes);
            offered_at_checkpoint = live.offered();
            if verbose {
                eprintln!(
                    "checkpoint {} verified at {} records ({} bytes, {} source cursor(s))",
                    checkpoints,
                    live.offered(),
                    encoded.len(),
                    snapshot.cursors.len()
                );
            }
        }
    }
    for event in live.finish_with(&mut sink) {
        emit(&event);
    }
    finish_events_out(args, sink, live.engine().registry())?;
    // Hard invariant: live counters reconcile with the merged detector
    // stats at this (finished) sync point — including the per-source
    // counters and the cursor/offered conservation check.
    live.verify_metrics()
        .map_err(|e| format!("live metrics reconciliation failed: {}", e.join("; ")))?;
    write_metrics_out(args, live.engine().registry())?;

    let stats = live.live_stats();
    let ingest = live.ingest_stats();
    println!(
        "live: {} records in, {} opened / {} escalated / {} closed / {} reclassified, \
         {} eviction(s), {} quarantined",
        live.offered(),
        stats.opened,
        stats.escalated,
        stats.closed,
        stats.reclassified,
        stats.evictions,
        ingest.quarantine.total()
    );
    let quic = live.engine().closed_quic();
    let class_count = |class: MultiVectorClass| quic.iter().filter(|c| c.class() == class).count();
    println!(
        "live: {} QUIC flood(s) ({} concurrent / {} sequential / {} isolated), \
         {} TCP/ICMP flood(s), {} checkpoint(s) verified",
        quic.len(),
        class_count(MultiVectorClass::Concurrent),
        class_count(MultiVectorClass::Sequential),
        class_count(MultiVectorClass::Isolated),
        live.engine().closed_common().len(),
        checkpoints
    );
    let sources = live.source_stats();
    println!(
        "sources: {} feed(s), {} record(s) merged, {} reconnect(s), {} abandoned, {} empty",
        sources.len(),
        live.offered(),
        sources.iter().map(|s| s.reconnects).sum::<u64>(),
        sources.iter().filter(|s| s.dead).count(),
        sources.iter().filter(|s| s.eof && s.delivered == 0).count()
    );
    if verbose {
        let pipeline = live.engine().pipeline_stats();
        println!(
            "live: {} shard(s), {:.0} records/s ingest; {}; peak tracked victims {}",
            shards.max(1),
            pipeline.ingest_records_per_sec(),
            pipeline.stage_summary(),
            stats.peak_tracked
        );
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    use quicsand_server::model::{RetryPolicy, ServerConfig};
    use quicsand_server::replay::{replay_flood, ReplayConfig};

    let pps: u64 = flag_value(args, "--pps")?
        .ok_or("replay requires --pps <rate>")?
        .parse()
        .map_err(|_| "invalid --pps")?;
    let requests: u64 = flag_value(args, "--requests")?
        .map(|v| v.parse().map_err(|_| "invalid --requests"))
        .transpose()?
        .unwrap_or(pps * 300 + 1);
    let workers: usize = flag_value(args, "--workers")?
        .map(|v| v.parse().map_err(|_| "invalid --workers"))
        .transpose()?
        .unwrap_or(4);
    let retry_policy = if let Some(threshold) = flag_value(args, "--adaptive")? {
        RetryPolicy::Adaptive {
            occupancy_threshold: threshold.parse().map_err(|_| "invalid --adaptive")?,
        }
    } else if has_flag(args, "--retry") {
        RetryPolicy::Always
    } else {
        RetryPolicy::Off
    };

    eprintln!("replaying {requests} Initials at {pps} pps against {workers} worker(s)...");
    let outcome = replay_flood(
        &ReplayConfig {
            pps,
            total_requests: requests,
            server: ServerConfig {
                workers,
                retry_policy,
                ..ServerConfig::default()
            },
        },
        42,
    );
    println!(
        "requests {}  responses {}  answered {}  availability {}%  extra-rtt {}",
        outcome.requests,
        outcome.responses,
        outcome.answered,
        outcome.availability_percent(),
        if outcome.extra_rtt { "yes" } else { "no" }
    );
    Ok(())
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let input = positional(args).ok_or("export requires a capture path")?;
    let output = flag_value(args, "--pcap")?.ok_or("export requires --pcap <file>")?;
    let reader =
        ZeroCopyCaptureReader::from_path(input).map_err(|e| format!("read {input}: {e}"))?;
    let out = std::fs::File::create(output).map_err(|e| format!("create {output}: {e}"))?;
    let mut writer = quicsand_net::pcap::PcapWriter::new(BufWriter::new(out))
        .map_err(|e| format!("write pcap header: {e}"))?;
    for record in reader {
        let record = record.map_err(|e| format!("read record: {e}"))?;
        writer
            .write(&record)
            .map_err(|e| format!("write packet: {e}"))?;
    }
    let written = writer.written();
    writer.finish().map_err(|e| format!("flush: {e}"))?;
    println!("wrote {written} packets to {output} (libpcap, raw-IP linktype)");
    Ok(())
}

fn cmd_forensics(args: &[String]) -> Result<(), String> {
    use quicsand_events::qlog::validate_qlog;
    use quicsand_live::{parse_slice_qlog, replay_slice, LiveConfig, LiveEngine};
    use quicsand_net::Duration;
    use quicsand_sessions::dos::DosThresholds;
    use quicsand_sessions::SessionConfig;
    use quicsand_telescope::GuardConfig;

    // `forensics check <file.qlog>`: framing/header validation only.
    if args.first().map(String::as_str) == Some("check") {
        let path = positional(&args[1..]).ok_or("forensics check requires a qlog path")?;
        let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
        let summary = validate_qlog(&bytes).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: valid qlog JSON-SEQ ({} record(s), {} event(s))",
            summary.records, summary.events
        );
        return Ok(());
    }

    let path = positional(args).ok_or("forensics requires a capture path")?;
    let out_dir = flag_value(args, "--out")?
        .unwrap_or("forensics")
        .to_string();
    let replay = has_flag(args, "--replay");
    let window: u64 = flag_value(args, "--window")?
        .map(|v| {
            v.parse()
                .map_err(|_| format!("invalid --window `{v}` (minutes)"))
        })
        .transpose()?
        .unwrap_or(5);
    let weight: f64 = flag_value(args, "--weight")?
        .map(|v| v.parse().map_err(|_| format!("invalid --weight `{v}`")))
        .transpose()?
        .unwrap_or(1.0);
    let shards: usize = flag_value(args, "--shards")?
        .map(|v| v.parse().map_err(|_| format!("invalid --shards `{v}`")))
        .transpose()?
        .unwrap_or(1);
    let chunk: usize = flag_value(args, "--chunk")?
        .map(|v| {
            v.parse::<usize>()
                .ok()
                .filter(|&c| c >= 1)
                .ok_or(format!("invalid --chunk `{v}` (want an integer >= 1)"))
        })
        .transpose()?
        .unwrap_or(1024);
    let evidence_ring: usize = flag_value(args, "--evidence-ring")?
        .map(|v| {
            v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or(format!(
                "invalid --evidence-ring `{v}` (want an integer >= 1)"
            ))
        })
        .transpose()?
        .unwrap_or(LiveConfig::default().evidence_capacity);

    let guard = GuardConfig::default();
    let config = LiveConfig {
        thresholds: DosThresholds::moore().scaled(weight),
        session: SessionConfig {
            timeout: Duration::from_mins(window),
            skew_tolerance: guard.reorder_tolerance,
        },
        evidence_capacity: evidence_ring,
        ..LiveConfig::default()
    };
    let mut reader =
        ZeroCopyCaptureReader::from_path(path).map_err(|e| format!("read {path}: {e}"))?;
    let records = reader
        .read_to_end()
        .map_err(|e| format!("read records: {e}"))?;
    eprintln!(
        "loaded {} records; running the live engine...",
        records.len()
    );
    let mut engine = LiveEngine::new(config, guard, shards);
    for part in records.chunks(chunk.max(1)) {
        engine.offer_chunk(part);
    }
    engine.finish();

    let slices = engine.alert_slices();
    if slices.is_empty() {
        println!("no closed QUIC alerts in {path}; nothing to export");
        return Ok(());
    }
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("create {out_dir}: {e}"))?;
    let mut replayed = 0usize;
    for slice in &slices {
        let bytes = slice.to_qlog()?;
        let file = format!("{out_dir}/alert-{}.qlog", slice.alert_index);
        std::fs::write(&file, &bytes).map_err(|e| format!("write {file}: {e}"))?;
        if replay {
            // The replay contract: the exported slice alone must
            // reproduce the identical closed alert and verdict in a
            // fresh detector. `replay_slice` errors on any divergence.
            let (parsed, packets) = parse_slice_qlog(&bytes).map_err(|e| format!("{file}: {e}"))?;
            replay_slice(&parsed, &packets)
                .map_err(|e| format!("{file}: replay contract violated: {e}"))?;
            replayed += 1;
        }
        println!(
            "wrote {file} (victim {}, {} packet(s), {} common flood(s), class {})",
            slice.victim,
            slice.quic.attack.packet_count,
            slice.commons.len(),
            slice.class.label()
        );
    }
    println!(
        "forensics: {} alert slice(s) exported to {out_dir}{}",
        slices.len(),
        if replay {
            format!(", {replayed} replay(s) verified")
        } else {
            String::new()
        }
    );
    Ok(())
}

fn cmd_experiments(args: &[String]) -> Result<(), String> {
    use quicsand_core::experiments as exp;
    let config = scale_config(args)?;
    eprintln!("generating scenario (seed {:#x})...", config.seed);
    let scenario = Scenario::generate(&config);
    let analysis = Analysis::run(&scenario, &analysis_config(args)?);
    let reports = vec![
        exp::fig02::run(&scenario, &analysis),
        exp::fig03::run(&scenario, &analysis),
        exp::fig04::run(&analysis),
        exp::fig05::run(&scenario, &analysis),
        exp::fig06::run(&analysis),
        exp::fig07::run(&analysis),
        exp::fig08::run(&analysis),
        exp::fig09::run(&scenario, &analysis),
        exp::fig10::run(&scenario, &analysis),
        exp::fig11::run(&analysis),
        exp::fig12::run(&analysis),
        exp::fig13::run(&analysis),
        exp::msgmix::run(&analysis),
        exp::sec3_amplification::run(),
    ];
    for report in reports {
        println!("{}", report.render());
    }
    Ok(())
}
