//! # quicsand
//!
//! Umbrella crate for the QUICsand reproduction ("QUICsand: Quantifying
//! QUIC Reconnaissance Scans and DoS Flooding Events", IMC 2021).
//!
//! Re-exports the workspace crates under one roof; see the `examples/`
//! directory for runnable entry points:
//!
//! * `quickstart` — generate a telescope month and reproduce the key
//!   findings in one run.
//! * `scan_campaign` — dissect the scanning ecosystem (research bias,
//!   diurnal bots, honeypot correlation).
//! * `dos_forensics` — the DoS analyses: victims, intensities,
//!   multi-vector structure.
//! * `retry_defense` — Table 1 live: floods against the server model,
//!   with and without RETRY, plus a legitimate client's experience.
//! * `udp_flood_lab` — the same server and client driven over real UDP
//!   sockets on loopback.

pub use quicsand_core as core;
pub use quicsand_dissect as dissect;
pub use quicsand_events as events;
pub use quicsand_intel as intel;
pub use quicsand_net as net;
pub use quicsand_server as server;
pub use quicsand_sessions as sessions;
pub use quicsand_telescope as telescope;
pub use quicsand_traffic as traffic;
pub use quicsand_wire as wire;
