//! A capture written to disk and re-read must analyze identically:
//! the persistence path is how real deployments would feed the tool.

use quicsand_core::{Analysis, AnalysisConfig};
use quicsand_net::capture::{CaptureReader, CaptureWriter};
use quicsand_traffic::{Scenario, ScenarioConfig};
use std::fs::File;
use std::io::{BufReader, BufWriter};

#[test]
fn file_roundtrip_preserves_analysis() {
    let mut config = ScenarioConfig::test();
    // Keep the file small but representative.
    config.research_packets_per_scan = 500;
    config.quic_attacks = 30;
    config.victim_pool = 12;
    config.common_attacks = 20;
    let scenario = Scenario::generate(&config);

    let dir = std::env::temp_dir().join("quicsand-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.qscp");

    // Write streaming.
    let mut writer = CaptureWriter::new(BufWriter::new(File::create(&path).unwrap())).unwrap();
    for record in &scenario.records {
        writer.write(record).unwrap();
    }
    assert_eq!(writer.records_written(), scenario.records.len() as u64);
    writer
        .finish()
        .unwrap()
        .into_inner()
        .unwrap()
        .sync_all()
        .unwrap();

    // Read streaming.
    let reader = CaptureReader::new(BufReader::new(File::open(&path).unwrap())).unwrap();
    let records: Vec<_> = reader.map(|r| r.unwrap()).collect();
    assert_eq!(records, scenario.records);

    // Analyses agree.
    let original = Analysis::run(&scenario, &AnalysisConfig::default());
    let reloaded = Scenario {
        world: scenario.world.clone(),
        records,
        truth: scenario.truth.clone(),
        config: scenario.config.clone(),
    };
    let reanalyzed = Analysis::run(&reloaded, &AnalysisConfig::default());
    assert_eq!(original.quic_attacks, reanalyzed.quic_attacks);
    assert_eq!(original.ingest, reanalyzed.ingest);

    std::fs::remove_file(&path).unwrap();
}
