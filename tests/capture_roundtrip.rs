//! A capture written to disk and re-read must analyze identically:
//! the persistence path is how real deployments would feed the tool.

use quicsand_core::{Analysis, AnalysisConfig};
use quicsand_net::capture::{self, CaptureReader, CaptureWriter};
use quicsand_net::{PacketRecord, Timestamp};
use quicsand_traffic::{Scenario, ScenarioConfig};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::net::Ipv4Addr;

#[test]
fn file_roundtrip_preserves_analysis() {
    let mut config = ScenarioConfig::test();
    // Keep the file small but representative.
    config.research_packets_per_scan = 500;
    config.quic_attacks = 30;
    config.victim_pool = 12;
    config.common_attacks = 20;
    let scenario = Scenario::generate(&config);

    let dir = std::env::temp_dir().join("quicsand-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.qscp");

    // Write streaming.
    let mut writer = CaptureWriter::new(BufWriter::new(File::create(&path).unwrap())).unwrap();
    for record in &scenario.records {
        writer.write(record).unwrap();
    }
    assert_eq!(writer.records_written(), scenario.records.len() as u64);
    writer
        .finish()
        .unwrap()
        .into_inner()
        .unwrap()
        .sync_all()
        .unwrap();

    // Read streaming.
    let reader = CaptureReader::new(BufReader::new(File::open(&path).unwrap())).unwrap();
    let records: Vec<_> = reader.map(|r| r.unwrap()).collect();
    assert_eq!(records, scenario.records);

    // Analyses agree.
    let original = Analysis::run(&scenario, &AnalysisConfig::default());
    let reloaded = Scenario {
        world: scenario.world.clone(),
        records,
        truth: scenario.truth.clone(),
        config: scenario.config.clone(),
    };
    let reanalyzed = Analysis::run(&reloaded, &AnalysisConfig::default());
    assert_eq!(original.quic_attacks, reanalyzed.quic_attacks);
    assert_eq!(original.ingest, reanalyzed.ingest);

    std::fs::remove_file(&path).unwrap();
}

/// A zero-length UDP payload is a legal darknet observation (it is
/// exactly what some liveness probes look like) — the capture format
/// must persist it losslessly, and ingest must quarantine rather than
/// misparse it.
#[test]
fn zero_length_payload_roundtrips_and_is_quarantined() {
    let record = PacketRecord::udp(
        Timestamp::from_micros(1_000),
        Ipv4Addr::new(203, 0, 113, 9),
        Ipv4Addr::new(128, 0, 0, 1),
        40000,
        443,
        bytes::Bytes::new(),
    );
    let bytes = capture::to_bytes(std::slice::from_ref(&record)).unwrap();
    let back = capture::from_bytes(&bytes).unwrap();
    assert_eq!(back, vec![record.clone()]);

    let mut pipeline = quicsand_telescope::TelescopePipeline::new();
    pipeline.ingest(&record);
    assert_eq!(pipeline.stats().quarantine.empty_payload, 1);
}

/// A QUIC Initial carrying the maximum legal 20-byte connection IDs
/// must survive the capture format byte-for-byte and still dissect —
/// the boundary the oversized-CID fault sits one byte past.
#[test]
fn max_length_cid_packet_roundtrips_and_dissects() {
    use quicsand_wire::crypto::{Direction, InitialSecrets};
    use quicsand_wire::{ConnectionId, Frame, Packet, PacketPayload, Version};

    let dcid = ConnectionId::new(&[0x5A; 20]).unwrap();
    let scid = ConnectionId::new(&[0xA5; 20]).unwrap();
    let packet = Packet::Initial {
        version: Version::V1,
        dcid,
        scid,
        token: bytes::Bytes::new(),
        packet_number: 0,
        payload: PacketPayload::new(vec![Frame::Ping]),
    };
    let key = InitialSecrets::derive(Version::V1, &dcid).key(Direction::ClientToServer);
    let wire = packet.encode(Some(key)).unwrap();

    let record = PacketRecord::udp(
        Timestamp::from_micros(2_000),
        Ipv4Addr::new(203, 0, 113, 10),
        Ipv4Addr::new(128, 0, 0, 2),
        50000,
        443,
        bytes::Bytes::from(wire),
    );
    let bytes = capture::to_bytes(std::slice::from_ref(&record)).unwrap();
    let back = capture::from_bytes(&bytes).unwrap();
    assert_eq!(back, vec![record.clone()]);

    let quicsand_net::Transport::Udp { payload, .. } = &back[0].transport else {
        panic!("expected udp transport");
    };
    let dissected = quicsand_dissect::dissect_udp_payload(payload).expect("max-CID packet parses");
    assert!(!dissected.messages.is_empty());
}

/// Declaring more payload than any datagram can carry must be rejected
/// by the reader before it allocates.
#[test]
fn hostile_declared_length_is_rejected() {
    let mut bytes = capture::to_bytes(&[]).unwrap();
    bytes.extend_from_slice(&0u64.to_le_bytes()); // ts
    bytes.extend_from_slice(&0u32.to_le_bytes()); // src
    bytes.extend_from_slice(&0u32.to_le_bytes()); // dst
    bytes.push(0); // TAG_UDP
    bytes.extend_from_slice(&40000u16.to_le_bytes());
    bytes.extend_from_slice(&443u16.to_le_bytes());
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        capture::from_bytes(&bytes),
        Err(capture::CaptureError::OversizedPayload(u32::MAX))
    ));
}
