//! Fuzz-style adversarial corpus for the dissector and header parser.
//!
//! The corpus itself lives in `quicsand_dissect::corpus` — each entry is
//! a hand-crafted hostile payload of the kind a darknet actually
//! receives, and each must produce the *right typed error*: never a
//! panic, never a false success, and never a coarser error than the
//! malformation deserves (the quarantine taxonomy depends on the
//! distinction). The same corpus is replayed through the capture layer
//! by `tests/zerocopy_differential.rs`.

use quicsand_dissect::corpus::{adversarial_corpus, assert_expected};
use quicsand_dissect::dissect_udp_payload;
use quicsand_wire::header::{LongHeader, ShortHeader};
use quicsand_wire::WireError;

#[test]
fn adversarial_corpus_gets_the_right_typed_error() {
    for entry in adversarial_corpus() {
        let result = dissect_udp_payload(&entry.payload);
        assert_expected(entry.name, entry.expect, &result);
    }
}

/// Every strict prefix of a valid Initial must fail to dissect — a
/// datagram is either complete or rejected, never partially accepted.
#[test]
fn every_prefix_of_a_valid_initial_is_rejected() {
    let wire = adversarial_corpus()
        .into_iter()
        .find(|e| e.name == "minimal valid initial")
        .expect("corpus carries the minimal initial")
        .payload;
    assert!(dissect_udp_payload(&wire).is_ok(), "full packet must parse");
    for cut in 1..wire.len() {
        let result = dissect_udp_payload(&wire[..cut]);
        assert!(
            result.is_err(),
            "prefix of {cut}/{} bytes must not dissect, got {result:?}",
            wire.len()
        );
    }
}

/// The post-2021 corpus entries carry semantics beyond pass/fail: the
/// v2 frames must announce the v2 wire version, the Retry variants
/// must register as retries whatever their token size, the VN entry
/// must read as version 0, and the migration-grade Initial must yield
/// the CID key the migration linker folds sessions on.
#[test]
fn post_2021_entries_expose_their_semantics() {
    let corpus = adversarial_corpus();
    let find = |name: &str| {
        &corpus
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("corpus carries {name:?}"))
            .payload
    };

    const V2_WIRE: u32 = 0x6b3343cf;
    let v2_initial = dissect_udp_payload(find("v2 initial accepted")).unwrap();
    assert_eq!(v2_initial.version(), Some(V2_WIRE));
    assert!(!v2_initial.has_retry());

    let v2_retry = dissect_udp_payload(find("v2 retry accepted")).unwrap();
    assert_eq!(v2_retry.version(), Some(V2_WIRE));
    assert!(v2_retry.has_retry());

    for name in [
        "retry with empty token",
        "retry with 128-byte amplification token",
    ] {
        let d = dissect_udp_payload(find(name)).unwrap();
        assert!(d.has_retry(), "{name} registers as a retry");
    }

    let vn = dissect_udp_payload(find("version negotiation offering v1 and v2")).unwrap();
    assert_eq!(vn.version(), Some(0), "vn announces version 0");

    let keyed = dissect_udp_payload(find("v2 initial with migration-grade 8-byte scid")).unwrap();
    let key = keyed.client_cid_key().expect("non-empty scid yields a key");
    // Same scid bytes -> same key, independent of the rest of the frame.
    let again = dissect_udp_payload(find("v2 initial with migration-grade 8-byte scid")).unwrap();
    assert_eq!(again.client_cid_key(), Some(key));
    // A different scid yields a different key.
    let other = dissect_udp_payload(find("minimal valid initial")).unwrap();
    assert_ne!(other.client_cid_key(), Some(key));
}

/// The same boundary discipline at the header layer: typed `WireError`s
/// for the canonical malformations.
#[test]
fn header_layer_corpus() {
    // Short form offered to the long-header decoder.
    let mut slice: &[u8] = &[0x40, 0, 0, 0, 1, 0, 0];
    assert!(matches!(
        LongHeader::decode(&mut slice),
        Err(WireError::InvalidValue { .. })
    ));

    // Fixed bit clear on a non-negotiation version.
    let mut slice: &[u8] = &[0x80, 0, 0, 0, 1, 0, 0];
    assert_eq!(
        LongHeader::decode(&mut slice),
        Err(WireError::FixedBitUnset)
    );

    // Oversized CID length at the header layer.
    let mut slice: &[u8] = &[0xc0, 0, 0, 0, 1, 21];
    assert_eq!(
        LongHeader::decode(&mut slice),
        Err(WireError::CidTooLong(21))
    );

    // Truncation inside the version field.
    let mut slice: &[u8] = &[0xc0, 0, 0];
    assert!(matches!(
        LongHeader::decode(&mut slice),
        Err(WireError::UnexpectedEnd { .. })
    ));

    // Short header truncated inside the DCID.
    let mut slice: &[u8] = &[0x40, 1, 2];
    assert!(matches!(
        ShortHeader::decode(&mut slice, 8),
        Err(WireError::UnexpectedEnd { .. })
    ));

    // Short header with an out-of-range expected DCID length.
    let mut slice: &[u8] = &[0x40; 40];
    assert_eq!(
        ShortHeader::decode(&mut slice, 21),
        Err(WireError::CidTooLong(21))
    );

    // Long-header decoder never accepts any strict prefix of a valid
    // maximum-CID header.
    let full = adversarial_corpus()
        .into_iter()
        .find(|e| e.name == "both cids at the 20-byte maximum")
        .expect("corpus carries the max-CID initial")
        .payload;
    let header_len = 1 + 4 + 1 + 20 + 1 + 20;
    for cut in 0..header_len {
        let mut slice = &full[..cut];
        assert!(
            LongHeader::decode(&mut slice).is_err(),
            "header prefix of {cut} bytes must not decode"
        );
    }
}
