//! Fuzz-style adversarial corpus for the dissector and header parser.
//!
//! Each entry is a hand-crafted hostile payload of the kind a darknet
//! actually receives — truncations at every field boundary, oversized
//! CID lengths, reserved bit violations, bogus versions — and each must
//! produce the *right typed error*: never a panic, never a false
//! success, and never a coarser error than the malformation deserves
//! (the quarantine taxonomy depends on the distinction).

use quicsand_dissect::{dissect_udp_payload, DissectError};
use quicsand_wire::header::{LongHeader, ShortHeader};
use quicsand_wire::WireError;

/// What a corpus entry must dissect to.
enum Expect {
    /// Must parse successfully.
    Ok,
    /// Must be rejected as an empty payload.
    Empty,
    /// Must be rejected as truncated.
    Truncated,
    /// Must be rejected with exactly this unknown version.
    BadVersion(u32),
    /// Must be rejected with exactly this oversized CID length.
    BadCid(usize),
    /// Must be rejected as structurally non-QUIC.
    NotQuic,
    /// Must be rejected, kind unconstrained (structurally ambiguous
    /// inputs where the exact classification is an implementation
    /// detail — but success would be a bug).
    AnyErr,
}

/// A structurally valid, hand-crafted Initial: long form + fixed bit,
/// version 1, empty CIDs, empty token, 5-byte protected payload.
fn minimal_initial() -> Vec<u8> {
    vec![
        0xc0, // long | fixed | type=Initial | pn_len=1
        0x00, 0x00, 0x00, 0x01, // version 1
        0x00, // dcid len
        0x00, // scid len
        0x00, // token length (varint)
        0x05, // length (varint)
        0x01, 0x02, 0x03, 0x04, 0x05, // pn + protected payload
    ]
}

/// An Initial with both connection IDs at the 20-byte maximum.
fn max_cid_initial(cut_dcid_short: bool) -> Vec<u8> {
    let mut wire = vec![0xc0, 0x00, 0x00, 0x00, 0x01];
    wire.push(20);
    wire.extend_from_slice(&[0x5A; 20][..if cut_dcid_short { 19 } else { 20 }]);
    if cut_dcid_short {
        return wire; // ends inside the DCID
    }
    wire.push(20);
    wire.extend_from_slice(&[0xA5; 20]);
    wire.extend_from_slice(&[0x00, 0x01, 0x09]); // token len, length, pn
    wire
}

/// A structurally valid Retry: version 1, empty CIDs, 3-byte token,
/// 16-byte integrity tag.
fn minimal_retry(tag_bytes: usize) -> Vec<u8> {
    let mut wire = vec![0xf0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00];
    wire.extend_from_slice(b"tok");
    wire.extend_from_slice(&vec![0xEE; tag_bytes]);
    wire
}

fn corpus() -> Vec<(&'static str, Vec<u8>, Expect)> {
    vec![
        // --- degenerate inputs ------------------------------------
        ("empty payload", vec![], Expect::Empty),
        ("single zero byte", vec![0x00], Expect::NotQuic),
        ("all zeros", vec![0u8; 64], Expect::NotQuic),
        (
            "dns-ish payload, fixed bit unset",
            vec![0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00],
            Expect::NotQuic,
        ),
        (
            "ascii shebang garbage",
            b"#!garbage shell script".to_vec(),
            Expect::NotQuic,
        ),
        // --- short-header edge cases ------------------------------
        ("short form, no dcid", vec![0x40], Expect::Truncated),
        (
            "short form, dcid cut at 3 of 8 bytes",
            vec![0x40, 0x01, 0x02, 0x03],
            Expect::Truncated,
        ),
        (
            "short form, dcid but no packet number",
            vec![0x40, 1, 2, 3, 4, 5, 6, 7, 8],
            Expect::AnyErr,
        ),
        (
            "plausible 1-RTT packet",
            vec![0x43, 1, 2, 3, 4, 5, 6, 7, 8, 0xAA, 0xBB, 0xCC, 0xDD],
            Expect::Ok,
        ),
        // --- long-header reserved-bit violations ------------------
        (
            "long form, fixed bit clear, version 1",
            vec![0x80, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00],
            Expect::NotQuic,
        ),
        // --- long-header truncations at every field boundary ------
        ("long form, version missing", vec![0xc0], Expect::Truncated),
        (
            "long form, version cut at 3 of 4 bytes",
            vec![0xc0, 0x00, 0x00, 0x00],
            Expect::Truncated,
        ),
        (
            "long form, dcid length byte missing",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01],
            Expect::Truncated,
        ),
        (
            "dcid declares 8, carries 4",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x08, 1, 2, 3, 4],
            Expect::Truncated,
        ),
        (
            "scid length byte missing",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x00],
            Expect::Truncated,
        ),
        (
            "initial token varint declares 16383, carries none",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x7f, 0xff],
            Expect::Truncated,
        ),
        (
            "initial length field missing",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00],
            Expect::Truncated,
        ),
        (
            "length declares 0x30, carries 2",
            vec![
                0xc0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x30, 0xAA, 0xBB,
            ],
            Expect::Truncated,
        ),
        (
            // The Retry token is not self-describing, so a cut is only
            // detectable once fewer than 16 tag bytes remain.
            "retry with 15 bytes where the 16-byte tag belongs",
            vec![
                0xf0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, // header, empty cids
                0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, // 15 of 16
                0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE,
            ],
            Expect::Truncated,
        ),
        (
            "max-cid initial cut inside the dcid",
            max_cid_initial(true),
            Expect::Truncated,
        ),
        // --- version-field hostility ------------------------------
        (
            "unknown version 0xdeadbeef",
            {
                let mut wire = minimal_initial();
                wire[1..5].copy_from_slice(&0xdeadbeef_u32.to_be_bytes());
                wire
            },
            Expect::BadVersion(0xdeadbeef),
        ),
        (
            // Structural parsing runs before version semantics: the
            // 0xFF DCID-length byte is rejected before the unknown
            // version 0xffffffff is even considered.
            "all-ones packet (oversized cid wins over bad version)",
            vec![0xFF; 1200],
            Expect::BadCid(255),
        ),
        (
            "grease version 0x1a2a3a4a accepted",
            {
                let mut wire = minimal_initial();
                wire[1..5].copy_from_slice(&0x1a2a3a4a_u32.to_be_bytes());
                wire
            },
            Expect::Ok,
        ),
        // --- CID length hostility ---------------------------------
        (
            "dcid length 21 (one past the RFC max)",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x15],
            Expect::BadCid(21),
        ),
        (
            "dcid length 255",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0xFF],
            Expect::BadCid(255),
        ),
        (
            "scid length 21 after a valid empty dcid",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x15],
            Expect::BadCid(21),
        ),
        (
            "both cids at the 20-byte maximum",
            max_cid_initial(false),
            Expect::Ok,
        ),
        // --- inconsistent length fields ---------------------------
        (
            "length zero but pn_len one",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00],
            Expect::NotQuic,
        ),
        // --- version negotiation ----------------------------------
        (
            "version negotiation with one offered version",
            vec![0x80, 0, 0, 0, 0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01],
            Expect::Ok,
        ),
        (
            "version negotiation with a partial version entry",
            vec![0x80, 0, 0, 0, 0, 0x00, 0x00, 0x00, 0x01],
            Expect::AnyErr,
        ),
        // --- positive controls ------------------------------------
        ("minimal valid initial", minimal_initial(), Expect::Ok),
        ("minimal valid retry", minimal_retry(16), Expect::Ok),
        (
            "valid initial coalesced with a truncated second packet",
            {
                let mut wire = minimal_initial();
                wire.push(0xc0);
                wire
            },
            Expect::AnyErr,
        ),
    ]
}

#[test]
fn adversarial_corpus_gets_the_right_typed_error() {
    for (name, payload, expect) in corpus() {
        let result = dissect_udp_payload(&payload);
        match expect {
            Expect::Ok => assert!(result.is_ok(), "{name}: expected Ok, got {result:?}"),
            Expect::Empty => assert!(
                matches!(result, Err(DissectError::Empty)),
                "{name}: expected Empty, got {result:?}"
            ),
            Expect::Truncated => assert!(
                matches!(result, Err(DissectError::Truncated(_))),
                "{name}: expected Truncated, got {result:?}"
            ),
            Expect::BadVersion(v) => assert!(
                matches!(result, Err(DissectError::BadVersion(got)) if got == v),
                "{name}: expected BadVersion({v:#x}), got {result:?}"
            ),
            Expect::BadCid(n) => assert!(
                matches!(result, Err(DissectError::BadCid(got)) if got == n),
                "{name}: expected BadCid({n}), got {result:?}"
            ),
            Expect::NotQuic => assert!(
                matches!(result, Err(DissectError::NotQuic(_))),
                "{name}: expected NotQuic, got {result:?}"
            ),
            Expect::AnyErr => assert!(result.is_err(), "{name}: expected an error, got Ok"),
        }
    }
}

/// Every strict prefix of a valid Initial must fail to dissect — a
/// datagram is either complete or rejected, never partially accepted.
#[test]
fn every_prefix_of_a_valid_initial_is_rejected() {
    let wire = minimal_initial();
    assert!(dissect_udp_payload(&wire).is_ok(), "full packet must parse");
    for cut in 1..wire.len() {
        let result = dissect_udp_payload(&wire[..cut]);
        assert!(
            result.is_err(),
            "prefix of {cut}/{} bytes must not dissect, got {result:?}",
            wire.len()
        );
    }
}

/// The same boundary discipline at the header layer: typed `WireError`s
/// for the canonical malformations.
#[test]
fn header_layer_corpus() {
    // Short form offered to the long-header decoder.
    let mut slice: &[u8] = &[0x40, 0, 0, 0, 1, 0, 0];
    assert!(matches!(
        LongHeader::decode(&mut slice),
        Err(WireError::InvalidValue { .. })
    ));

    // Fixed bit clear on a non-negotiation version.
    let mut slice: &[u8] = &[0x80, 0, 0, 0, 1, 0, 0];
    assert_eq!(
        LongHeader::decode(&mut slice),
        Err(WireError::FixedBitUnset)
    );

    // Oversized CID length at the header layer.
    let mut slice: &[u8] = &[0xc0, 0, 0, 0, 1, 21];
    assert_eq!(
        LongHeader::decode(&mut slice),
        Err(WireError::CidTooLong(21))
    );

    // Truncation inside the version field.
    let mut slice: &[u8] = &[0xc0, 0, 0];
    assert!(matches!(
        LongHeader::decode(&mut slice),
        Err(WireError::UnexpectedEnd { .. })
    ));

    // Short header truncated inside the DCID.
    let mut slice: &[u8] = &[0x40, 1, 2];
    assert!(matches!(
        ShortHeader::decode(&mut slice, 8),
        Err(WireError::UnexpectedEnd { .. })
    ));

    // Short header with an out-of-range expected DCID length.
    let mut slice: &[u8] = &[0x40; 40];
    assert_eq!(
        ShortHeader::decode(&mut slice, 21),
        Err(WireError::CidTooLong(21))
    );

    // Long-header decoder never accepts any strict prefix of a valid
    // maximum-CID header.
    let full = max_cid_initial(false);
    let header_len = 1 + 4 + 1 + 20 + 1 + 20;
    for cut in 0..header_len {
        let mut slice = &full[..cut];
        assert!(
            LongHeader::decode(&mut slice).is_err(),
            "header prefix of {cut} bytes must not decode"
        );
    }
}
