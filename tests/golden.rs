//! Golden-figure regression tests.
//!
//! Every paper artifact (fig02–fig13 + tab01) is regenerated from a
//! fixed seed and compared byte-for-byte against a checked-in JSON
//! snapshot under `tests/golden/`. Reports carry no wall-clock timings,
//! so the snapshots are stable across machines; any drift means an
//! intentional algorithm change (re-bless) or an accidental regression
//! (fix it).
//!
//! To re-bless after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use quicsand_core::{experiments as exp, Analysis, AnalysisConfig, Report};
use quicsand_traffic::{Scenario, ScenarioConfig};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares one report against its snapshot, or re-blesses it when
/// `UPDATE_GOLDEN` is set. Returns a drift description instead of
/// panicking so the caller can report *all* drifted artifacts at once.
fn check(report: &Report) -> Result<(), String> {
    let path = golden_dir().join(format!("{}.json", report.id));
    let mut rendered = report.to_json().expect("report serializes");
    rendered.push('\n');
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &rendered).expect("write snapshot");
        return Ok(());
    }
    let expected = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "{}: missing snapshot {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden`",
            report.id,
            path.display()
        )
    })?;
    if rendered != expected {
        // Point at the first differing line to keep failures readable.
        let diff_line = rendered
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("first diff at line {}: got `{a}`, want `{b}`", i + 1))
            .unwrap_or_else(|| "reports differ in length".to_string());
        return Err(format!(
            "{}: drift against {} — {diff_line}\n  \
             (re-bless with `UPDATE_GOLDEN=1 cargo test --test golden` if intentional)",
            report.id,
            path.display()
        ));
    }
    Ok(())
}

/// All scenario-derived artifacts, regenerated at the fixed test seed
/// on a single thread, must match their checked-in snapshots.
#[test]
fn figures_match_golden_snapshots() {
    let config = ScenarioConfig::test();
    let scenario = Scenario::generate(&config);
    let analysis = Analysis::run(
        &scenario,
        &AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        },
    );

    let reports = vec![
        exp::fig02::run(&scenario, &analysis),
        exp::fig03::run(&scenario, &analysis),
        exp::fig04::run(&analysis),
        exp::fig05::run(&scenario, &analysis),
        exp::fig06::run(&analysis),
        exp::fig07::run(&analysis),
        exp::fig08::run(&analysis),
        exp::fig09::run(&scenario, &analysis),
        exp::fig10::run(&scenario, &analysis),
        exp::fig11::run(&analysis),
        exp::fig12::run(&analysis),
        exp::fig13::run(&analysis),
    ];

    let drifted: Vec<String> = reports
        .iter()
        .filter_map(|report| check(report).err())
        .collect();
    assert!(
        drifted.is_empty(),
        "golden drift in {} artifact(s):\n{}",
        drifted.len(),
        drifted.join("\n")
    );
}

/// Compares raw rendered text against a named snapshot file, with the
/// same `UPDATE_GOLDEN=1` re-bless flow as the report snapshots.
fn check_text(name: &str, rendered: &str) -> Result<(), String> {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, rendered).expect("write snapshot");
        return Ok(());
    }
    let expected = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "{name}: missing snapshot {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden`",
            path.display()
        )
    })?;
    if rendered != expected {
        let diff_line = rendered
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("first diff at line {}: got `{a}`, want `{b}`", i + 1))
            .unwrap_or_else(|| "snapshots differ in length".to_string());
        return Err(format!(
            "{name}: drift against {} — {diff_line}\n  \
             (re-bless with `UPDATE_GOLDEN=1 cargo test --test golden` if intentional)",
            path.display()
        ));
    }
    Ok(())
}

/// The *stable* metric exposition (Prometheus text and canonical JSON)
/// for the seeded end-to-end scenario must match its checked-in
/// snapshots byte for byte. Volatile series (walltimes, thread counts,
/// peaks, checkpoint volume) are excluded — everything in these files
/// is a pure function of the trace, so drift means a behavior change
/// in classification, sessionization or detection.
#[test]
fn metrics_exposition_matches_golden_snapshots() {
    let scenario = Scenario::generate(&ScenarioConfig::test());
    let analysis = Analysis::run(
        &scenario,
        &AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        },
    );
    analysis.verify_metrics().expect("metrics reconcile");

    let drifted: Vec<String> = [
        check_text("metrics.prom", &analysis.registry.render_prometheus(true)).err(),
        check_text("metrics.json", &analysis.registry.render_json(true)).err(),
    ]
    .into_iter()
    .flatten()
    .collect();
    assert!(
        drifted.is_empty(),
        "metrics golden drift:\n{}",
        drifted.join("\n")
    );
}

/// The typed event stream for a deterministic scenario prefix,
/// serialized as qlog 0.4 JSON-SEQ, must match its checked-in snapshot
/// byte for byte. Event times come from packet timestamps (never the
/// wall clock) and the stream is shard-invariant by construction, so
/// any drift is a real change to what the pipeline emits — to event
/// taxonomy, ordering, or serialization.
#[test]
fn events_qlog_matches_golden_snapshot() {
    use quicsand_events::qlog::QlogWriter;
    use quicsand_live::{LiveConfig, LiveEngine};
    use quicsand_sessions::SessionConfig;
    use quicsand_telescope::GuardConfig;

    let mut records = Scenario::generate(&ScenarioConfig::test()).records;
    records.truncate(20_000);
    let guard = GuardConfig::default();
    let config = LiveConfig {
        session: SessionConfig {
            skew_tolerance: guard.reorder_tolerance,
            ..SessionConfig::default()
        },
        ..LiveConfig::default()
    };

    let (mut writer, buffer) =
        QlogWriter::to_buffer("quicsand events golden", &["scenario-test".to_string()])
            .expect("buffer-backed qlog writer");
    let mut engine = LiveEngine::new(config, guard, 2);
    for part in records.chunks(1024) {
        let _ = engine.offer_chunk_with(part, &mut writer);
    }
    let _ = engine.finish_with(&mut writer);
    let (events, _) = writer.finish().expect("finish qlog");
    assert!(events > 0, "golden trace must emit events");

    let rendered = String::from_utf8(buffer.contents()).expect("qlog is UTF-8");
    if let Err(drift) = check_text("events.qlog", &rendered) {
        panic!("{drift}");
    }
}

/// Table 1 (server resiliency replay) at the standard sub-sampled
/// scale must match its snapshot: the replay model is seeded, so any
/// drift is a behavior change in the server model, not noise.
#[test]
fn tab01_matches_golden_snapshot() {
    let report = exp::tab01::run_scaled(0.01);
    if let Err(drift) = check(&report) {
        panic!("{drift}");
    }
}
