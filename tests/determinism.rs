//! Reproducibility contract: identical seeds produce byte-identical
//! scenarios and identical analyses; different seeds differ. This is
//! what makes every number in EXPERIMENTS.md regenerable.

use quicsand_core::{Analysis, AnalysisConfig};
use quicsand_traffic::{Scenario, ScenarioConfig};

fn tiny(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        research_packets_per_scan: 300,
        request_sessions: 40,
        quic_attacks: 20,
        victim_pool: 10,
        common_attacks: 15,
        misconfig_sessions: 30,
        garbage_udp443_packets: 10,
        ..ScenarioConfig::test()
    }
}

#[test]
fn same_seed_same_world() {
    let a = Scenario::generate(&tiny(42));
    let b = Scenario::generate(&tiny(42));
    assert_eq!(a.records, b.records);
    assert_eq!(a.truth, b.truth);

    let analysis_a = Analysis::run(&a, &AnalysisConfig::default());
    let analysis_b = Analysis::run(&b, &AnalysisConfig::default());
    assert_eq!(analysis_a.quic_attacks, analysis_b.quic_attacks);
    assert_eq!(analysis_a.ingest, analysis_b.ingest);
    assert_eq!(
        analysis_a.multivector.class_counts,
        analysis_b.multivector.class_counts
    );
}

#[test]
fn different_seed_different_traffic() {
    let a = Scenario::generate(&tiny(42));
    let b = Scenario::generate(&tiny(43));
    assert_ne!(a.records, b.records);
    // Structure is stable even when the randomness differs.
    assert_eq!(a.truth.plan.quic.len(), b.truth.plan.quic.len());
    assert_eq!(a.truth.plan.victims.len(), b.truth.plan.victims.len());
}

#[test]
fn experiment_reports_are_reproducible() {
    let s1 = Scenario::generate(&tiny(7));
    let s2 = Scenario::generate(&tiny(7));
    let a1 = Analysis::run(&s1, &AnalysisConfig::default());
    let a2 = Analysis::run(&s2, &AnalysisConfig::default());
    let r1 = quicsand_core::experiments::fig07::run(&a1);
    let r2 = quicsand_core::experiments::fig07::run(&a2);
    assert_eq!(r1, r2);
    let r1 = quicsand_core::experiments::fig08::run(&a1);
    let r2 = quicsand_core::experiments::fig08::run(&a2);
    assert_eq!(r1, r2);
}

#[test]
fn table1_rows_are_reproducible() {
    let a = quicsand_core::experiments::tab01::run_row(1_000, false, 4, 20_000, 1);
    let b = quicsand_core::experiments::tab01::run_row(1_000, false, 4, 20_000, 1);
    assert_eq!(a, b);
    let c = quicsand_core::experiments::tab01::run_row(1_000, false, 4, 20_000, 2);
    // Different seed: same shape, availability within a tight band.
    assert!((a.availability - c.availability).abs() < 0.05);
}
