//! Scenario conformance suite for the post-2021 workload tier.
//!
//! Each [`ScenarioKind`] — migration abuse, evolving scanners, version
//! drift, Retry amplification — is held to the same contract as the
//! baseline scenario:
//!
//! * a **golden pin**: a compact per-scenario summary (ground-truth
//!   component counts, detected attacks, migration links, multi-vector
//!   kind counts) snapshotted under `tests/golden/` with the usual
//!   `UPDATE_GOLDEN=1` re-bless flow;
//! * **live ≡ batch**: the live engine's closed alerts equal the batch
//!   reference at {1, 2, 8} shards with rotating chunk sizes, and
//!   across a mid-run JSON checkpoint/restore;
//! * **generator invariants** as property tests: seed determinism,
//!   time-sortedness, exact `shard(n, i)` partitioning and per-scanner
//!   budget conservation for the lazy evolving-scan stream;
//! * the **classifier contract**: `classify_multivector_with` emits
//!   `VectorKind::MigrationAbuse` on the migration workload and
//!   `VectorKind::RetryAmplification` on the Retry workload.

use proptest::prelude::*;
use quicsand_core::{Analysis, AnalysisConfig};
use quicsand_dissect::Direction;
use quicsand_events::qlog::QlogWriter;
use quicsand_live::{LiveConfig, LiveEngine, LiveSnapshot};
use quicsand_net::PacketRecord;
use quicsand_sessions::dos::AttackProtocol;
use quicsand_sessions::{classify_multivector, detect_attacks, Attack, SessionConfig, Sessionizer};
use quicsand_telescope::{Admitted, GuardConfig, TelescopePipeline};
use quicsand_traffic::{
    EvolvingScanConfig, EvolvingScanStream, Scenario, ScenarioConfig, ScenarioKind,
};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Same snapshot discipline as `tests/golden.rs`: byte-for-byte
/// comparison, `UPDATE_GOLDEN=1` to re-bless.
fn check_text(name: &str, rendered: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, rendered).expect("write snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{name}: missing snapshot {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test scenarios`",
            path.display()
        )
    });
    if rendered != expected {
        let diff_line = rendered
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("first diff at line {}: got `{a}`, want `{b}`", i + 1))
            .unwrap_or_else(|| "snapshots differ in length".to_string());
        panic!(
            "{name}: drift against {} — {diff_line}\n  \
             (re-bless with `UPDATE_GOLDEN=1 cargo test --test scenarios` if intentional)",
            path.display()
        );
    }
}

/// The pinned per-scenario summary: everything in it is a pure
/// function of the seeded trace.
fn summary(kind: ScenarioKind, scenario: &Scenario, analysis: &Analysis) -> String {
    let mut kinds: Vec<(&String, &usize)> = analysis.multivector.kind_counts.iter().collect();
    kinds.sort();
    let kind_counts = if kinds.is_empty() {
        "{}".to_string()
    } else {
        let body = kinds
            .iter()
            .map(|(k, v)| format!("    \"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\n{body}\n  }}")
    };
    format!(
        "{{\n  \"scenario\": \"{kind}\",\n  \"records\": {},\n  \
         \"research_packets\": {},\n  \"request_packets\": {},\n  \
         \"response_packets\": {},\n  \"common_packets\": {},\n  \
         \"garbage_packets\": {},\n  \"quic_attacks\": {},\n  \
         \"common_attacks\": {},\n  \"request_sessions\": {},\n  \
         \"migrations\": {},\n  \"kind_counts\": {kind_counts}\n}}\n",
        scenario.records.len(),
        scenario.truth.research_packets,
        scenario.truth.request_packets,
        scenario.truth.response_packets,
        scenario.truth.common_packets,
        scenario.truth.garbage_packets,
        analysis.quic_attacks.len(),
        analysis.common_attacks.len(),
        analysis.request_sessions.len(),
        analysis.migrations.len(),
    )
}

fn analyzed(kind: ScenarioKind) -> (Scenario, Analysis) {
    let scenario = kind.generate(&ScenarioConfig::test());
    let analysis = Analysis::run(
        &scenario,
        &AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        },
    );
    analysis.verify_metrics().expect("metrics reconcile");
    (scenario, analysis)
}

// ---------------------------------------------------------------------
// Golden pins + classifier contract, one test per kind
// ---------------------------------------------------------------------

#[test]
fn migration_abuse_matches_golden_and_tags_victims() {
    let (scenario, analysis) = analyzed(ScenarioKind::MigrationAbuse);
    assert!(
        !analysis.migrations.is_empty(),
        "migration linker must fold the abusive flows"
    );
    // Every link joins two distinct addresses under one CID key.
    for link in &analysis.migrations {
        assert_ne!(link.from, link.to);
    }
    assert!(
        analysis
            .multivector
            .kind_counts
            .contains_key("migration-abuse"),
        "classifier must tag migrated-onto victims: {:?}",
        analysis.multivector.kind_counts
    );
    check_text(
        "scenario-migration-abuse.json",
        &summary(ScenarioKind::MigrationAbuse, &scenario, &analysis),
    );
}

#[test]
fn retry_amplification_matches_golden_and_tags_victims() {
    let (scenario, analysis) = analyzed(ScenarioKind::RetryAmplification);
    assert!(
        analysis
            .multivector
            .kind_counts
            .contains_key("retry-amplification"),
        "classifier must tag Retry-storm victims: {:?}",
        analysis.multivector.kind_counts
    );
    check_text(
        "scenario-retry-amplification.json",
        &summary(ScenarioKind::RetryAmplification, &scenario, &analysis),
    );
}

#[test]
fn version_drift_matches_golden() {
    let (scenario, analysis) = analyzed(ScenarioKind::VersionDrift);
    assert!(
        !analysis.request_sessions.is_empty(),
        "phased scans must sessionize"
    );
    check_text(
        "scenario-version-drift.json",
        &summary(ScenarioKind::VersionDrift, &scenario, &analysis),
    );
}

#[test]
fn evolving_scanners_matches_golden() {
    let (scenario, analysis) = analyzed(ScenarioKind::EvolvingScanners);
    assert!(
        !analysis.request_sessions.is_empty(),
        "evolving scan pool must sessionize"
    );
    check_text(
        "scenario-evolving-scanners.json",
        &summary(ScenarioKind::EvolvingScanners, &scenario, &analysis),
    );
}

// ---------------------------------------------------------------------
// Live ≡ batch equivalence per scenario kind
// ---------------------------------------------------------------------

fn live_config(guard: &GuardConfig) -> LiveConfig {
    LiveConfig {
        session: SessionConfig {
            skew_tolerance: guard.reorder_tolerance,
            ..SessionConfig::default()
        },
        ..LiveConfig::default()
    }
}

/// The offline reference the live engine must reproduce (see
/// `tests/live_equivalence.rs` for the rationale).
fn batch_reference(
    records: &[PacketRecord],
    guard: GuardConfig,
    config: &LiveConfig,
) -> (Vec<Attack>, Vec<Attack>) {
    let mut pipeline = TelescopePipeline::with_guard(guard);
    let mut responses = Sessionizer::new(config.session);
    let mut commons = Sessionizer::new(config.session);
    for record in records {
        match pipeline.admit(record) {
            Admitted::Quic(obs) => {
                if obs.direction == Direction::Response {
                    responses.offer(obs.ts, obs.src);
                }
            }
            Admitted::Baseline(record) => commons.offer(record.ts, record.src),
            Admitted::Dropped => {}
        }
    }
    let mut response_sessions = responses.finish();
    let mut common_sessions = commons.finish();
    response_sessions.sort_by_key(|s| (s.start, s.src));
    common_sessions.sort_by_key(|s| (s.start, s.src));
    let quic = detect_attacks(&response_sessions, AttackProtocol::Quic, &config.thresholds);
    let common = detect_attacks(
        &common_sessions,
        AttackProtocol::TcpIcmp,
        &config.thresholds,
    );
    // The report only matters for its side effects on verdicts, which
    // closed_quic() re-derives; computing it keeps parity honest.
    let _ = classify_multivector(&quic, &common);
    (quic, common)
}

fn assert_engine_matches(engine: &LiveEngine, quic: &[Attack], common: &[Attack], context: &str) {
    let live_quic: Vec<Attack> = engine
        .closed_quic()
        .iter()
        .map(|c| c.attack.clone())
        .collect();
    assert_eq!(live_quic, quic, "QUIC attacks diverged: {context}");
    assert_eq!(
        engine.closed_common(),
        common,
        "common attacks diverged: {context}"
    );
}

#[test]
fn every_scenario_kind_is_live_batch_equivalent() {
    for kind in ScenarioKind::all() {
        let mut records = kind.generate(&ScenarioConfig::test()).records;
        // A prefix is itself a finite trace; it keeps the matrix fast
        // while still closing alerts.
        records.truncate(60_000);
        let guard = GuardConfig::default();
        let config = live_config(&guard);
        let (batch_quic, batch_common) = batch_reference(&records, guard, &config);
        assert!(
            !batch_quic.is_empty(),
            "{kind}: trace must close QUIC alerts for parity to mean anything"
        );

        // Rotating chunk sizes across the shard ladder.
        for (shards, chunk) in [(1usize, 997usize), (2, 4_096), (8, 64)] {
            let mut engine = LiveEngine::new(config, guard, shards);
            for part in records.chunks(chunk) {
                let _ = engine.offer_chunk(part);
            }
            let _ = engine.finish();
            assert_engine_matches(
                &engine,
                &batch_quic,
                &batch_common,
                &format!("{kind} shards={shards} chunk={chunk}"),
            );
        }

        // Same stream with a JSON checkpoint/restore mid-run.
        let mut engine = LiveEngine::new(config, guard, 2);
        let mut since = 0usize;
        for part in records.chunks(1_024) {
            let _ = engine.offer_chunk(part);
            since += part.len();
            if since >= 20_000 {
                since = 0;
                let snapshot = engine.snapshot();
                let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
                let parsed: LiveSnapshot = serde_json::from_str(&json).expect("snapshot parses");
                engine = LiveEngine::restore(&parsed);
            }
        }
        let _ = engine.finish();
        assert_engine_matches(
            &engine,
            &batch_quic,
            &batch_common,
            &format!("{kind} across checkpoint/restore"),
        );
    }
}

// ---------------------------------------------------------------------
// Migration events reach the qlog stream
// ---------------------------------------------------------------------

#[test]
fn migration_events_reach_the_qlog_stream() {
    let scenario = ScenarioKind::MigrationAbuse.generate(&ScenarioConfig::test());
    let (mut writer, buffer) =
        QlogWriter::to_buffer("scenario conformance", &["migration-abuse".to_string()])
            .expect("buffer-backed qlog writer");
    let analysis = Analysis::run_with(
        &scenario,
        &AnalysisConfig {
            threads: 1,
            ..AnalysisConfig::default()
        },
        &mut writer,
    );
    let (events, _) = writer.finish().expect("finish qlog");
    assert!(events > 0, "scenario must emit events");

    let text = String::from_utf8(buffer.contents()).expect("qlog is utf-8");
    let migrated: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("quicsand:session_migrated"))
        .collect();
    assert_eq!(
        migrated.len(),
        analysis.migrations.len(),
        "one qlog event per migration link"
    );
    assert!(!migrated.is_empty(), "migration events present");
    // Pin the migration slice of the stream (JSON-SEQ framing intact).
    let mut slice = migrated.join("\n");
    slice.push('\n');
    check_text("scenario-migration-events.qlog", &slice);
}

// ---------------------------------------------------------------------
// Generator invariants as property tests
// ---------------------------------------------------------------------

/// A scenario small enough to regenerate inside a property test.
fn tiny_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        days: 1,
        request_sessions: 40,
        quic_attacks: 12,
        victim_pool: 8,
        common_attacks: 16,
        misconfig_sessions: 30,
        garbage_udp443_packets: 10,
        ..ScenarioConfig::test()
    }
}

proptest! {
    /// The lazy evolving-scan stream: deterministic per seed, globally
    /// time-sorted, memory bounded by the scanner pool, and its
    /// `shard(n, i)` restrictions partition the full stream exactly.
    #[test]
    fn prop_evolving_stream_invariants(
        seed in any::<u64>(),
        records in 100u64..2_000,
        scanners in 1u32..16,
        shards in 1u32..5,
    ) {
        let telescope = quicsand_net::ip::telescope_prefix();
        let config = EvolvingScanConfig::new(seed, records, scanners, telescope, 86_400 * 14);

        let a: Vec<PacketRecord> = EvolvingScanStream::new(&config).collect();
        let b: Vec<PacketRecord> = EvolvingScanStream::new(&config).collect();
        prop_assert_eq!(&a, &b, "same seed, same stream");
        prop_assert_eq!(a.len() as u64, records, "budget exact");
        prop_assert!(a.windows(2).all(|w| w[0].ts <= w[1].ts), "time-sorted");
        prop_assert!(a.iter().all(|r| telescope.contains(r.dst)), "dst in telescope");

        let mut stream = EvolvingScanStream::new(&config);
        let mut max_width = 0;
        while stream.next().is_some() {
            max_width = max_width.max(stream.merge_width());
        }
        prop_assert!(max_width <= scanners as usize, "O(scanners) merge state");

        let mut union: Vec<PacketRecord> = Vec::new();
        let mut budgets = 0u64;
        for index in 0..shards {
            let shard = config.shard(shards, index);
            budgets += shard.shard_records();
            let part: Vec<PacketRecord> = EvolvingScanStream::new(&shard).collect();
            prop_assert!(part.windows(2).all(|w| w[0].ts <= w[1].ts), "shard sorted");
            union.extend(part);
        }
        prop_assert_eq!(budgets, records, "shard budgets conserve the total");
        let key = |r: &PacketRecord| (r.ts.0, u32::from(r.src), r.transport.src_port());
        let mut full = a;
        union.sort_by_key(key);
        full.sort_by_key(key);
        prop_assert_eq!(union, full, "shards partition the stream exactly");
    }
}

/// Every scenario kind stays seed-deterministic, time-sorted and
/// count-conserving across a ladder of off-golden seeds (full
/// generation is too heavy for the 64-case proptest budget, so the
/// seeds are pinned but deliberately unrelated to the golden seed).
#[test]
fn scenario_kinds_hold_invariants_across_seeds() {
    for seed in [1u64, 0x5eed_cafe, 0xffff_ffff_0000_0001] {
        let config = tiny_config(seed);
        for kind in ScenarioKind::all() {
            let s = kind.generate(&config);
            assert!(!s.records.is_empty(), "{kind}@{seed:#x}: non-empty");
            assert!(
                s.records.windows(2).all(|w| w[0].ts <= w[1].ts),
                "{kind}@{seed:#x}: time-sorted"
            );
            let total = s.truth.research_packets
                + s.truth.request_packets
                + s.truth.response_packets
                + s.truth.common_packets
                + s.truth.garbage_packets;
            assert_eq!(
                total,
                s.records.len() as u64,
                "{kind}@{seed:#x}: counts add up"
            );
            assert!(
                s.records.iter().all(|r| s.world.telescope.contains(r.dst)),
                "{kind}@{seed:#x}: dst in telescope"
            );
            let again = kind.generate(&config);
            assert_eq!(
                s.records.len(),
                again.records.len(),
                "{kind}@{seed:#x}: deterministic"
            );
            assert_eq!(
                s.truth, again.truth,
                "{kind}@{seed:#x}: truth deterministic"
            );
        }
    }
}
