//! Cross-crate property tests: invariants that must hold for *any*
//! input, not just the synthesized scenarios.

use bytes::Bytes;
use proptest::prelude::*;
use quicsand_core::{Analysis, AnalysisConfig};
use quicsand_faults::{FaultPlan, FaultProfile};
use quicsand_net::{Duration, IcmpKind, PacketRecord, TcpFlags, Timestamp};
use quicsand_obs::MetricsRegistry;
use quicsand_sessions::dos::{detect_attacks, AttackProtocol, DosThresholds};
use quicsand_sessions::session::{sessionize, timeout_sweep, SessionConfig, Sessionizer};
use quicsand_telescope::{
    ingest_parallel_with, shard_of, IngestMetrics, IngestStats, TelescopePipeline,
};
use quicsand_wire::crypto::InitialSecrets;
use quicsand_wire::packet::{parse_datagram, Packet, PacketPayload};
use quicsand_wire::{ConnectionId, Frame, Version};
use std::net::Ipv4Addr;

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 77, 0, last)
}

/// The ingest accounting identity: every offered record lands in
/// exactly one bucket — a QUIC observation, the TCP/ICMP baseline, an
/// out-of-scope UDP class, or one quarantine counter.
fn assert_conservation(stats: &IngestStats) {
    assert_eq!(
        stats.total,
        stats.quic_valid
            + stats.tcp
            + stats.icmp
            + stats.other_udp
            + stats.ambiguous
            + stats.quarantine.total(),
        "records must be conserved across classification buckets: {stats:?}"
    );
}

/// Drives ≥10k records from a generated scenario through the fault
/// injector and then through 1-, 2- and 8-shard ingest. The per-kind
/// quarantine counters must equal the clean run's counters plus the
/// injector's own per-kind oracle — *exactly*, at every shard count —
/// and all shard counts must agree on every product.
#[test]
fn fault_quarantine_oracle_is_exact_across_shard_counts() {
    let scenario = quicsand_traffic::Scenario::generate(&quicsand_traffic::ScenarioConfig::test());
    let clean: Vec<PacketRecord> = scenario.records.iter().take(20_000).cloned().collect();
    assert!(clean.len() >= 10_000, "need a meaningful record volume");

    let profile = FaultProfile::standard();
    let guard = profile.guard;
    let mut plan = FaultPlan::new(profile, 0xFA57);
    let faulted = plan.apply_all(&clean);
    let summary = *plan.summary();
    assert!(summary.total_injected() > 0, "profile must inject faults");

    let (_, _, clean_stats) = ingest_parallel_with(&clean, 1, guard);
    assert_conservation(&clean_stats);

    let mut expected = clean_stats.quarantine;
    expected.merge(&summary.expected_quarantine());

    let single = ingest_parallel_with(&faulted, 1, guard);
    for threads in [1usize, 2, 8] {
        let (observations, baseline, stats) = ingest_parallel_with(&faulted, threads, guard);
        assert_conservation(&stats);
        assert_eq!(
            stats.quarantine, expected,
            "per-kind quarantine must equal clean + injected oracle at {threads} shard(s)"
        );
        assert_eq!(
            stats.total, summary.emitted_records,
            "every emitted record must be offered"
        );
        assert_eq!(
            observations, single.0,
            "observations differ at {threads} shards"
        );
        assert_eq!(baseline, single.1, "baseline differs at {threads} shards");
        assert_eq!(stats, single.2, "stats differ at {threads} shards");
    }
}

/// The metric⇄stats reconciliation invariant over a faulted ≥20k-record
/// stream: every obs counter published from `IngestStats` (and, through
/// the full pipeline, every session/attack counter) equals the
/// corresponding stats field — exactly, at 1, 2 and 8 shards — and the
/// *stable* metric subset is byte-identical across shard counts.
#[test]
fn metrics_reconcile_with_stats_across_shard_counts() {
    let mut scenario =
        quicsand_traffic::Scenario::generate(&quicsand_traffic::ScenarioConfig::test());
    let clean: Vec<PacketRecord> = scenario.records.iter().take(20_000).cloned().collect();
    let profile = FaultProfile::standard();
    let guard = profile.guard;
    let mut plan = FaultPlan::new(profile, 0xFA57);
    let faulted = plan.apply_all(&clean);
    assert!(plan.summary().total_injected() > 0, "profile must inject");

    // (a) Ingest layer: a fresh registry fed the merged stats must
    // reconcile field for field at every shard count, and the rendered
    // exposition must agree byte for byte across shard counts.
    let mut rendered: Option<String> = None;
    for threads in [1usize, 2, 8] {
        let (_, _, stats) = ingest_parallel_with(&faulted, threads, guard);
        let registry = MetricsRegistry::new();
        let metrics = IngestMetrics::register(&registry);
        metrics.add_stats(&stats);
        metrics
            .verify(&stats)
            .unwrap_or_else(|e| panic!("{threads} shard(s): {e:?}"));
        let text = registry.render_prometheus(false);
        match &rendered {
            None => rendered = Some(text),
            Some(reference) => assert_eq!(
                &text, reference,
                "ingest exposition differs at {threads} shard(s)"
            ),
        }
    }

    // (b) Whole pipeline on the faulted capture: every family
    // reconciles (`verify_metrics` is exhaustive) and the stable metric
    // subset — counters and attack histograms, not walltimes — is
    // byte-identical at any thread count.
    scenario.records = faulted;
    let run = |threads: usize| {
        Analysis::run(
            &scenario,
            &AnalysisConfig {
                threads,
                guard,
                ..AnalysisConfig::default()
            },
        )
    };
    let reference = run(1);
    reference.verify_metrics().expect("1-thread reconciliation");
    let stable = reference.registry.render_prometheus(true);
    assert!(stable.contains("quicsand_ingest_quarantined_total"));
    for threads in [2usize, 8] {
        let analysis = run(threads);
        analysis
            .verify_metrics()
            .unwrap_or_else(|e| panic!("{threads} thread(s): {e:?}"));
        assert_eq!(
            analysis.registry.render_prometheus(true),
            stable,
            "stable metrics differ at {threads} thread(s)"
        );
    }
}

proptest! {
    /// Any frame sequence we can encode, the telescope can decode —
    /// through full packet protection.
    #[test]
    fn prop_protected_frames_roundtrip(
        dcid_seed in any::<u64>(),
        pn in 0u64..100_000,
        crypto in proptest::collection::vec(any::<u8>(), 0..256),
        pings in 0usize..4,
        padding in 0usize..64,
    ) {
        let mut frames = vec![Frame::Crypto { offset: 0, data: Bytes::from(crypto) }];
        for _ in 0..pings {
            frames.push(Frame::Ping);
        }
        if padding > 0 {
            frames.push(Frame::Padding { len: padding });
        }
        let dcid = ConnectionId::from_u64(dcid_seed);
        let keys = InitialSecrets::derive(Version::V1, &dcid);
        let wire = Packet::Handshake {
            version: Version::V1,
            dcid,
            scid: ConnectionId::from_u64(dcid_seed ^ 1),
            packet_number: pn,
            payload: PacketPayload::new(frames.clone()),
        }
        .encode(Some(keys.server))
        .unwrap();
        let parsed = parse_datagram(&wire, 8).unwrap();
        let (packet, aad) = &parsed[0];
        let (got_pn, got_frames) = packet.open(keys.server, pn.checked_sub(1), aad).unwrap();
        prop_assert_eq!(got_pn, pn);
        prop_assert_eq!(got_frames, frames);
    }

    /// The dissector and the server must never panic on arbitrary
    /// bytes — the telescope's survival property.
    #[test]
    fn prop_no_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..1500)) {
        let _ = quicsand_dissect::dissect_udp_payload(&data);
        let mut server = quicsand_server::model::QuicServerSim::new(
            quicsand_server::model::ServerConfig::default(),
            1,
        );
        let _ = server.handle_datagram(Timestamp::from_secs(1), ip(1), 5000, &data);
        let mut client = quicsand_server::client::QuicClient::new(1);
        let _ = client.initial_datagram();
        let _ = client.handle_datagram(&data);
    }

    /// Sessionization is a partition: every packet lands in exactly one
    /// session, sessions of one source never overlap in time, and no
    /// intra-session gap exceeds the timeout.
    #[test]
    fn prop_sessions_partition_the_stream(
        raw in proptest::collection::vec((0u64..50_000, 0u8..8), 1..400),
        timeout_secs in 10u64..1_000,
    ) {
        let mut packets: Vec<(Timestamp, Ipv4Addr)> = raw
            .into_iter()
            .map(|(s, src)| (Timestamp::from_secs(s), ip(src)))
            .collect();
        packets.sort_by_key(|(ts, _)| *ts);
        let timeout = Duration::from_secs(timeout_secs);
        let sessions = sessionize(packets.iter().copied(), SessionConfig { timeout, skew_tolerance: Duration::ZERO });
        let total: u64 = sessions.iter().map(|s| s.packet_count).sum();
        prop_assert_eq!(total, packets.len() as u64);
        // Per-source sessions are disjoint and separated by > timeout.
        let mut by_src: std::collections::HashMap<Ipv4Addr, Vec<(Timestamp, Timestamp)>> =
            std::collections::HashMap::new();
        for s in &sessions {
            by_src.entry(s.src).or_default().push((s.start, s.end));
        }
        for intervals in by_src.values_mut() {
            intervals.sort();
            for w in intervals.windows(2) {
                prop_assert!(w[1].0.saturating_since(w[0].1) > timeout);
            }
        }
    }

    /// The fast timeout sweep agrees with brute-force sessionization at
    /// every timeout value.
    #[test]
    fn prop_sweep_equals_bruteforce(
        raw in proptest::collection::vec((0u64..20_000, 0u8..5), 1..150),
    ) {
        let mut packets: Vec<(Timestamp, Ipv4Addr)> = raw
            .into_iter()
            .map(|(s, src)| (Timestamp::from_secs(s), ip(src)))
            .collect();
        packets.sort_by_key(|(ts, _)| *ts);
        let timeouts: Vec<Duration> =
            [30u64, 120, 600, 3_600].iter().map(|s| Duration::from_secs(*s)).collect();
        let sweep = timeout_sweep(packets.iter().copied(), &timeouts);
        for (timeout, count) in sweep.counts {
            let direct =
                sessionize(packets.iter().copied(), SessionConfig { timeout, skew_tolerance: Duration::ZERO }).len() as u64;
            prop_assert_eq!(count, direct, "timeout {}", timeout);
        }
    }

    /// Sharding a stream by `hash(src) % N` and sessionizing each shard
    /// independently yields exactly the single-shard sessions, for any
    /// stream, timeout and shard count — the parallel pipeline's
    /// correctness argument as a law.
    #[test]
    fn prop_sharded_sessionize_equals_sequential(
        raw in proptest::collection::vec((0u64..50_000, 0u8..8), 1..400),
        timeout_secs in 10u64..1_000,
        shards in 1usize..9,
    ) {
        let mut packets: Vec<(Timestamp, Ipv4Addr)> = raw
            .into_iter()
            .map(|(s, src)| (Timestamp::from_secs(s), ip(src)))
            .collect();
        packets.sort_by_key(|(ts, _)| *ts);
        let config = SessionConfig { timeout: Duration::from_secs(timeout_secs), skew_tolerance: Duration::ZERO };
        let mut expected = sessionize(packets.iter().copied(), config);
        expected.sort_by_key(|s| (s.start, s.src));
        let mut sharded = Vec::new();
        for shard in 0..shards {
            let stream = packets
                .iter()
                .copied()
                .filter(|(_, src)| shard_of(*src, shards) == shard);
            sharded.extend(sessionize(stream, config));
        }
        sharded.sort_by_key(|s| (s.start, s.src));
        prop_assert_eq!(sharded, expected);
    }

    /// Interleaving watermark expiry and `drain` with the offers never
    /// loses, duplicates or reshapes sessions: packets are conserved
    /// and the final session set equals one-shot sessionization.
    #[test]
    fn prop_expire_drain_finish_conserve_packets(
        raw in proptest::collection::vec((0u64..50_000, 0u8..8), 1..400),
        timeout_secs in 10u64..1_000,
        drain_every in 1usize..50,
    ) {
        let mut packets: Vec<(Timestamp, Ipv4Addr)> = raw
            .into_iter()
            .map(|(s, src)| (Timestamp::from_secs(s), ip(src)))
            .collect();
        packets.sort_by_key(|(ts, _)| *ts);
        let config = SessionConfig { timeout: Duration::from_secs(timeout_secs), skew_tolerance: Duration::ZERO };
        let mut sessionizer = Sessionizer::new(config);
        let mut collected = Vec::new();
        for (i, (ts, src)) in packets.iter().enumerate() {
            sessionizer.offer(*ts, *src);
            if (i + 1) % drain_every == 0 {
                collected.extend(sessionizer.drain());
            }
        }
        collected.extend(sessionizer.finish());
        let total: u64 = collected.iter().map(|s| s.packet_count).sum();
        prop_assert_eq!(total, packets.len() as u64);
        let mut expected = sessionize(packets.iter().copied(), config);
        expected.sort_by_key(|s| (s.start, s.src));
        collected.sort_by_key(|s| (s.start, s.src));
        prop_assert_eq!(collected, expected);
    }

    /// Every record offered to the pipeline — however arbitrary its
    /// transport, ports, payload and timestamp — lands in exactly one
    /// classification bucket, and nothing panics. Survival and
    /// conservation as one law.
    #[test]
    fn prop_ingest_conserves_arbitrary_records(
        raw in proptest::collection::vec(
            (0u64..100_000, 0u8..6, 0u8..3, any::<u16>(), any::<u16>(),
             proptest::collection::vec(any::<u8>(), 0..64)),
            1..200,
        ),
    ) {
        let records: Vec<PacketRecord> = raw
            .into_iter()
            .map(|(micros, src, kind, sport, dport, payload)| {
                let ts = Timestamp::from_micros(micros);
                let (src, dst) = (ip(src), Ipv4Addr::new(128, 0, 0, 1));
                match kind {
                    0 => PacketRecord::udp(ts, src, dst, sport, dport, Bytes::from(payload)),
                    1 => PacketRecord::tcp(ts, src, dst, sport, dport, TcpFlags::SYN_ACK),
                    _ => PacketRecord::icmp(ts, src, dst, IcmpKind::EchoRequest),
                }
            })
            .collect();
        let mut pipeline = TelescopePipeline::new();
        pipeline.ingest_all(&records);
        let (_, _, stats) = pipeline.finish();
        prop_assert_eq!(stats.total, records.len() as u64);
        prop_assert_eq!(
            stats.total,
            stats.quic_valid + stats.tcp + stats.icmp + stats.other_udp
                + stats.ambiguous + stats.quarantine.total()
        );
    }

    /// The fault injector and the hardened pipeline survive *any*
    /// byte-mutated record stream: injection never panics, and the
    /// faulted stream still satisfies conservation at every shard
    /// count — even when the base stream violates the injector's
    /// time-ordering assumption.
    #[test]
    fn prop_faulted_arbitrary_streams_never_panic(
        raw in proptest::collection::vec(
            (0u64..100_000, 0u8..4, proptest::collection::vec(any::<u8>(), 0..48)),
            1..120,
        ),
        seed in any::<u64>(),
    ) {
        let records: Vec<PacketRecord> = raw
            .into_iter()
            .map(|(micros, src, payload)| {
                PacketRecord::udp(
                    Timestamp::from_micros(micros),
                    ip(src),
                    Ipv4Addr::new(128, 0, 0, 1),
                    40_000,
                    443,
                    Bytes::from(payload),
                )
            })
            .collect();
        let profile = FaultProfile::aggressive();
        let guard = profile.guard;
        let mut plan = FaultPlan::new(profile, seed);
        let faulted = plan.apply_all(&records);
        prop_assert_eq!(faulted.len() as u64, plan.summary().emitted_records);
        for threads in [1usize, 2] {
            let (_, _, stats) = ingest_parallel_with(&faulted, threads, guard);
            prop_assert_eq!(stats.total, faulted.len() as u64);
            prop_assert_eq!(
                stats.total,
                stats.quic_valid + stats.tcp + stats.icmp + stats.other_udp
                    + stats.ambiguous + stats.quarantine.total()
            );
        }
    }

    /// Stricter thresholds never detect more attacks (the Fig. 10
    /// monotonicity, as a law over arbitrary session populations).
    #[test]
    fn prop_threshold_monotonicity(
        raw in proptest::collection::vec((0u64..5_000, 0u8..4), 10..300),
        w1 in 0.1f64..1.0,
        w2 in 1.0f64..10.0,
    ) {
        let mut packets: Vec<(Timestamp, Ipv4Addr)> = raw
            .into_iter()
            .map(|(s, src)| (Timestamp::from_secs(s), ip(src)))
            .collect();
        packets.sort_by_key(|(ts, _)| *ts);
        let sessions = sessionize(packets.into_iter(), SessionConfig::default());
        let relaxed = detect_attacks(&sessions, AttackProtocol::Quic, &DosThresholds::weighted(w1));
        let strict = detect_attacks(&sessions, AttackProtocol::Quic, &DosThresholds::weighted(w2));
        prop_assert!(strict.len() <= relaxed.len());
        // And every strict detection is also a relaxed detection.
        for attack in &strict {
            prop_assert!(relaxed.iter().any(|a| a.victim == attack.victim && a.start == attack.start));
        }
    }
}

proptest! {
    /// The multiplexer's bounded queues: at 1, 2, and 8 sources with
    /// adversarial per-source volumes and a tiny capacity, the
    /// producer-side queue never grows past `queue_capacity`, the merge
    /// never deadlocks (the test completes), every record is conserved,
    /// and the merged output is globally time-ordered.
    #[test]
    fn prop_source_queues_are_bounded_and_conserve_records(
        raw in proptest::collection::vec((0u64..500_000, 0usize..8), 0..800),
        capacity in 1usize..24,
        source_sel in 0usize..3,
        paced in any::<bool>(),
    ) {
        use quicsand_net::multi::{memory_factory, SourceFactory, SourceSet, SourceSetConfig};

        let sources = [1usize, 2, 8][source_sel];
        let mut parts = vec![Vec::new(); sources];
        for (ts, slot) in raw {
            parts[slot % sources].push(PacketRecord::tcp(
                Timestamp::from_micros(ts),
                ip((ts % 250) as u8),
                ip(251),
                443,
                50_000,
                TcpFlags::SYN_ACK,
            ));
        }
        let total: usize = parts.iter().map(Vec::len).sum();
        for part in &mut parts {
            part.sort_by_key(|r| r.ts);
        }
        let factories: Vec<Box<dyn SourceFactory>> = parts
            .iter()
            .map(|p| Box::new(memory_factory(p.clone())) as Box<dyn SourceFactory>)
            .collect();
        let config = SourceSetConfig {
            queue_capacity: capacity,
            // Fast enough to never stall the test, real enough to
            // exercise the pacing branch.
            rate_limit: paced.then_some(2_000_000),
            ..SourceSetConfig::default()
        };

        let mut set = SourceSet::spawn(factories, &config);
        let mut merged = Vec::with_capacity(total);
        while let Some(record) = set.next_merged() {
            merged.push(record);
        }

        // Conservation: every produced record came out of the merge.
        prop_assert_eq!(merged.len(), total);
        prop_assert_eq!(set.delivered_total(), total as u64);
        // Global event-time order across all interleavings.
        prop_assert!(merged.windows(2).all(|w| w[0].ts <= w[1].ts));
        for (index, stats) in set.stats().iter().enumerate() {
            prop_assert_eq!(stats.delivered, parts[index].len() as u64);
            prop_assert!(stats.eof, "source {} must reach EOF", index);
            prop_assert!(!stats.dead, "source {} must not be abandoned", index);
            // The backpressure bound: producers block at capacity.
            prop_assert!(
                stats.queue_peak <= capacity,
                "source {} peak {} exceeds capacity {}",
                index, stats.queue_peak, capacity
            );
            prop_assert_eq!(stats.queue_depth, 0, "drained queues are empty");
        }
    }
}

proptest! {
    /// The batched run-merge contract: whatever the batch boundaries
    /// (sizes {1, 2, 7, 4096}), however tiny the queues, with a seeded
    /// flaky feed reconnect-resuming mid-stream, and across a
    /// checkpoint/restore taken mid-batch (the consumer cut at an
    /// arbitrary point, almost never a batch boundary), the multiplexer
    /// delivers exactly `merge_records` — record for record.
    #[test]
    fn prop_batched_run_merge_equals_merge_records_across_restore(
        raw in proptest::collection::vec((0u64..200_000, 0usize..3), 0..600),
        batch_sel in 0usize..4,
        capacity in 1usize..16,
        seed in any::<u64>(),
        cut in 0.0f64..1.0,
    ) {
        use quicsand_faults::source::{FlakyFactory, FlakyPlan};
        use quicsand_net::multi::{
            memory_factory, merge_records, SourceFactory, SourceSet, SourceSetConfig,
        };
        use quicsand_net::StreamSource;

        let batch = [1usize, 2, 7, 4096][batch_sel];
        let sources = 3usize;
        let mut parts = vec![Vec::new(); sources];
        for (ts, slot) in raw {
            parts[slot % sources].push(PacketRecord::tcp(
                Timestamp::from_micros(ts),
                ip((ts % 250) as u8),
                ip(251),
                443,
                50_000,
                TcpFlags::SYN_ACK,
            ));
        }
        for part in &mut parts {
            part.sort_by_key(|r| r.ts);
        }
        let expected = merge_records(&parts);
        let plan = FlakyPlan::new(seed, 3, parts[1].len() as u64);
        let config = SourceSetConfig {
            queue_capacity: capacity,
            batch_records: batch,
            // A restored flaky feed replays its schedule from open #0
            // and may burn failures during the resume skip; the budget
            // must cover the whole plan.
            max_reconnects: plan.points().len() as u32 + 8,
            ..SourceSetConfig::default()
        };
        let make_factories = || -> Vec<Box<dyn SourceFactory>> {
            vec![
                Box::new(memory_factory(parts[0].clone())),
                Box::new(FlakyFactory::new(
                    memory_factory(parts[1].clone()),
                    plan.clone(),
                )),
                Box::new(memory_factory(parts[2].clone())),
            ]
        };

        // Phase 1: pull an arbitrary prefix — lands mid-batch for any
        // batch size > 1 — then checkpoint the cursors and tear down.
        let prefix = (cut * expected.len() as f64) as usize;
        let mut set = SourceSet::spawn(make_factories(), &config);
        let mut merged = set.pull_chunk(prefix).expect("merge never errors");
        prop_assert_eq!(merged.len(), prefix.min(expected.len()));
        let cursors = set.cursors();
        prop_assert_eq!(cursors.iter().sum::<u64>(), merged.len() as u64);
        drop(set);

        // Phase 2: resume from the cursors with fresh factories (the
        // flaky feed starts its schedule over) and drain to the end.
        let mut restored = SourceSet::resume(make_factories(), &config, &cursors);
        while let Some(record) = restored.next_merged() {
            merged.push(record);
        }

        prop_assert_eq!(&merged, &expected, "batch={} capacity={}", batch, capacity);
        let stats = restored.stats();
        prop_assert!(stats.iter().all(|s| s.eof && !s.dead), "{:?}", stats);
        prop_assert!(
            stats.iter().all(|s| s.queue_peak <= capacity),
            "batched transfer must respect the record capacity: {:?}",
            stats
        );
    }
}

proptest! {
    /// The evolving-scan budget arithmetic: for any pool shape, the
    /// per-shard record budgets partition the configured total exactly
    /// — the pure-function core of the stream's shard contract.
    #[test]
    fn prop_evolving_budgets_partition_exactly(
        seed in any::<u64>(),
        records in 0u64..50_000,
        scanners in 1u32..64,
        shards in 1u32..9,
    ) {
        let telescope = quicsand_net::ip::telescope_prefix();
        let config = quicsand_traffic::EvolvingScanConfig::new(
            seed, records, scanners, telescope, 86_400 * 7,
        );
        let total: u64 = (0..shards)
            .map(|i| config.shard(shards, i).shard_records())
            .sum();
        prop_assert_eq!(total, records, "shard budgets must sum to the total");
        prop_assert_eq!(config.shard_records(), records, "unsharded budget is the total");
    }

    /// The evolving-scan stream's batch and streaming faces agree:
    /// collecting the iterator and draining the `StreamSource`
    /// interface yield the identical record sequence, with monotone
    /// timestamps, for any seed.
    #[test]
    fn prop_evolving_stream_source_equals_iterator(
        seed in any::<u64>(),
        records in 1u64..2_000,
        scanners in 1u32..12,
    ) {
        use quicsand_net::StreamSource;
        let telescope = quicsand_net::ip::telescope_prefix();
        let config = quicsand_traffic::EvolvingScanConfig::new(
            seed, records, scanners, telescope, 86_400 * 7,
        );
        let batch: Vec<PacketRecord> =
            quicsand_traffic::EvolvingScanStream::new(&config).collect();
        let mut streamed = Vec::new();
        let mut source = quicsand_traffic::EvolvingScanStream::new(&config);
        while let Some(record) = source.next_record() {
            streamed.push(record.expect("stream never errors"));
        }
        prop_assert_eq!(&streamed, &batch, "streaming face equals batch face");
        prop_assert!(
            batch.windows(2).all(|w| w[0].ts <= w[1].ts),
            "timestamps stay monotone"
        );
        prop_assert_eq!(batch.len() as u64, records, "budget honored exactly");
    }
}
