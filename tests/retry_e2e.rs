//! End-to-end RETRY defence test across `quicsand-wire` and
//! `quicsand-server`: floods, token forgery, and the legitimate-client
//! experience — the Table 1 mechanics asserted as invariants.

use quicsand_net::{Duration, Timestamp};
use quicsand_server::client::{run_handshake, QuicClient};
use quicsand_server::model::{QuicServerSim, ServerConfig};
use quicsand_server::replay::InitialStream;
use std::net::Ipv4Addr;

fn flood(server: &mut QuicServerSim, pps: u64, secs: u64, seed: u64) {
    let interval = Duration::from_micros(1_000_000 / pps);
    let mut now = Timestamp::EPOCH;
    let mut stream = InitialStream::new(seed);
    for _ in 0..pps * secs {
        let p = stream.next().unwrap();
        server.handle_datagram(now, p.src_ip, p.src_port, &p.datagram);
        now += interval;
    }
}

#[test]
fn flood_starves_legit_client_without_retry() {
    let mut server = QuicServerSim::new(
        ServerConfig {
            workers: 2,
            conns_per_worker: 128,
            ..ServerConfig::default()
        },
        1,
    );
    flood(&mut server, 200, 30, 0xF1);
    // Table saturated.
    assert_eq!(server.open_connections(), 256);
    assert!(server.stats().dropped_table > 0);
    // Legit client arrives mid-flood.
    let mut client = QuicClient::new(2);
    run_handshake(
        &mut server,
        &mut client,
        Ipv4Addr::new(203, 0, 113, 1),
        4444,
        Timestamp::from_secs(30),
    );
    assert!(!client.is_established(), "client must be starved");
}

#[test]
fn flood_is_neutralized_with_retry() {
    let mut server = QuicServerSim::new(
        ServerConfig {
            workers: 2,
            conns_per_worker: 128,
            ..ServerConfig::default()
        }
        .with_retry(true),
        1,
    );
    flood(&mut server, 200, 30, 0xF1);
    // The flood allocated nothing.
    assert_eq!(server.open_connections(), 0);
    assert_eq!(server.stats().accepted, 0);
    assert_eq!(server.stats().retries_sent, 6_000);
    // Legit client sails through with one extra RTT.
    let mut client = QuicClient::new(2);
    run_handshake(
        &mut server,
        &mut client,
        Ipv4Addr::new(203, 0, 113, 1),
        4444,
        Timestamp::from_secs(30),
    );
    assert!(client.is_established());
    assert_eq!(client.round_trips(), 2);
    assert_eq!(client.retries_seen(), 1);
}

#[test]
fn stolen_token_is_useless_elsewhere() {
    // An observer cannot reuse a victim's token from another address:
    // run a retry exchange, then replay the tokened Initial from a
    // different source.
    let mut server = QuicServerSim::new(ServerConfig::default().with_retry(true), 3);
    let mut client = QuicClient::new(9);
    let first = client.initial_datagram();
    let responses = server.handle_datagram(
        Timestamp::from_secs(1),
        Ipv4Addr::new(10, 0, 0, 1),
        1111,
        &first,
    );
    assert_eq!(server.stats().retries_sent, 1);
    // Client honours the retry and produces the tokened Initial.
    let tokened = client
        .handle_datagram(&responses[0].payload)
        .expect("client re-sends after retry");
    // Replay from a *different* address: rejected, no state.
    let replayed = server.handle_datagram(
        Timestamp::from_secs(1),
        Ipv4Addr::new(10, 9, 9, 9),
        1111,
        &tokened,
    );
    assert!(replayed.is_empty());
    assert_eq!(server.stats().dropped_bad_token, 1);
    // From the right address: accepted.
    let ok = server.handle_datagram(
        Timestamp::from_secs(1),
        Ipv4Addr::new(10, 0, 0, 1),
        1111,
        &tokened,
    );
    assert_eq!(ok.len(), 4);
    assert_eq!(server.stats().accepted, 1);
}

#[test]
fn expired_token_is_rejected() {
    let mut server = QuicServerSim::new(ServerConfig::default().with_retry(true), 4);
    let mut client = QuicClient::new(10);
    let first = client.initial_datagram();
    let responses = server.handle_datagram(
        Timestamp::from_secs(1),
        Ipv4Addr::new(10, 0, 0, 2),
        2222,
        &first,
    );
    let tokened = client.handle_datagram(&responses[0].payload).unwrap();
    // Present the token far past its lifetime.
    let late = server.handle_datagram(
        Timestamp::from_secs(1_000),
        Ipv4Addr::new(10, 0, 0, 2),
        2222,
        &tokened,
    );
    assert!(late.is_empty());
    assert_eq!(server.stats().dropped_bad_token, 1);
}

#[test]
fn established_connections_survive_the_flood() {
    // A client that completed its handshake BEFORE the flood keeps its
    // state (established connections are not evicted by new Initials).
    let mut server = QuicServerSim::new(
        ServerConfig {
            workers: 1,
            conns_per_worker: 64,
            ..ServerConfig::default()
        },
        5,
    );
    let mut client = QuicClient::new(11);
    run_handshake(
        &mut server,
        &mut client,
        Ipv4Addr::new(203, 0, 113, 7),
        7777,
        Timestamp::from_secs(0),
    );
    assert!(client.is_established());
    flood(&mut server, 100, 20, 0xF2);
    // The flood filled the table around the established connection.
    assert_eq!(server.open_connections(), 64);
    assert_eq!(server.stats().completed, 1);
}
