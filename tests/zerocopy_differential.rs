//! Differential tests: the zero-copy capture decoder must be
//! observationally identical to the legacy copying reader — same
//! records, same typed errors, same downstream quarantine accounting —
//! over both the adversarial dissection corpus and large faulted
//! streams, at every shard count.

use quicsand_dissect::corpus::{adversarial_corpus, assert_expected};
use quicsand_dissect::dissect_udp_payload;
use quicsand_faults::{FaultPlan, FaultProfile};
use quicsand_net::capture::{from_bytes, to_bytes, CaptureError};
use quicsand_net::zerocopy::ZeroCopyCaptureReader;
use quicsand_net::{PacketRecord, Timestamp};
use quicsand_telescope::{ingest_parallel_with, GuardConfig};
use std::net::Ipv4Addr;

fn decode_zero(bytes: &[u8]) -> Result<Vec<PacketRecord>, CaptureError> {
    ZeroCopyCaptureReader::from_bytes(bytes.to_vec())?.read_to_end()
}

/// One UDP record per corpus entry: a hostile payload arriving at the
/// telescope on the QUIC port, each from its own source.
fn corpus_records() -> Vec<PacketRecord> {
    adversarial_corpus()
        .into_iter()
        .enumerate()
        .map(|(i, entry)| {
            PacketRecord::udp(
                Timestamp::from_micros(1_000 + i as u64),
                Ipv4Addr::new(10, 99, (i / 256) as u8, (i % 256) as u8),
                Ipv4Addr::new(128, 0, 0, 7),
                40_000 + i as u16,
                443,
                entry.payload.into(),
            )
        })
        .collect()
}

/// The corpus replayed through the capture layer: both readers decode
/// identical records, the arena-backed payload slices dissect to the
/// exact same typed outcome as the original buffers, and sharded ingest
/// agrees on every product and counter at 1/2/8 shards.
#[test]
fn corpus_capture_is_identical_through_both_readers() {
    let records = corpus_records();
    let bytes = to_bytes(&records).unwrap();
    let legacy = from_bytes(&bytes).unwrap();
    let zero = decode_zero(&bytes).unwrap();
    assert_eq!(legacy, records);
    assert_eq!(zero, records);

    // Typed dissection outcomes over the zero-copy payload views.
    for (record, entry) in zero.iter().zip(adversarial_corpus()) {
        let payload = record.udp_payload().expect("corpus records are UDP");
        let result = dissect_udp_payload(payload);
        assert_expected(entry.name, entry.expect, &result);
    }

    // Downstream quarantine accounting must not depend on which reader
    // produced the records.
    let guard = GuardConfig::default();
    for threads in [1usize, 2, 8] {
        let (obs_l, base_l, stats_l) = ingest_parallel_with(&legacy, threads, guard);
        let (obs_z, base_z, stats_z) = ingest_parallel_with(&zero, threads, guard);
        assert_eq!(obs_l, obs_z, "observations differ at {threads} shard(s)");
        assert_eq!(base_l, base_z, "baseline differs at {threads} shard(s)");
        assert_eq!(stats_l, stats_z, "stats differ at {threads} shard(s)");
    }
}

/// A 20k-record faulted stream round-trips byte-identically through
/// both readers and produces identical quarantine counters at every
/// shard count.
#[test]
fn faulted_20k_stream_is_identical_through_both_readers() {
    let scenario = quicsand_traffic::Scenario::generate(&quicsand_traffic::ScenarioConfig::test());
    let clean: Vec<PacketRecord> = scenario.records.into_iter().take(20_000).collect();
    assert!(clean.len() >= 20_000, "need the full record volume");

    let profile = FaultProfile::standard();
    let guard = profile.guard;
    let mut plan = FaultPlan::new(profile, 0xD1FF);
    let faulted = plan.apply_all(&clean);

    let bytes = to_bytes(&faulted).unwrap();
    let legacy = from_bytes(&bytes).unwrap();
    let zero = decode_zero(&bytes).unwrap();
    assert_eq!(legacy, faulted, "legacy reader must round-trip the stream");
    assert_eq!(zero, faulted, "zero-copy reader must round-trip the stream");

    let single = ingest_parallel_with(&legacy, 1, guard);
    for threads in [1usize, 2, 8] {
        let (obs_l, base_l, stats_l) = ingest_parallel_with(&legacy, threads, guard);
        let (obs_z, base_z, stats_z) = ingest_parallel_with(&zero, threads, guard);
        assert_eq!(obs_l, obs_z, "observations differ at {threads} shard(s)");
        assert_eq!(base_l, base_z, "baseline differs at {threads} shard(s)");
        assert_eq!(
            stats_l.quarantine, stats_z.quarantine,
            "quarantine counters differ at {threads} shard(s)"
        );
        assert_eq!(stats_l, stats_z, "stats differ at {threads} shard(s)");
        // And both agree with the single-shard reference.
        assert_eq!(obs_l, single.0, "N-shard ≡ 1-shard broken at {threads}");
    }

    // Typed-error equivalence: cut the faulted capture at a spread of
    // offsets; the two readers must fail (or cleanly stop) identically.
    for cut in [9, 100, 1_001, bytes.len() / 2, bytes.len() - 1] {
        let legacy = from_bytes(&bytes[..cut]);
        let zero = decode_zero(&bytes[..cut]);
        match (&legacy, &zero) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "clean-prefix records differ at cut {cut}"),
            (Err(CaptureError::Truncated), Err(CaptureError::Truncated)) => {}
            other => panic!("readers disagree at cut {cut}: {other:?}"),
        }
    }
}
