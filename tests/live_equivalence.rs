//! Online ≡ offline: on any finite trace the live engine's closed
//! alerts must equal the batch pipeline's `detect_attacks` +
//! `classify_multivector` output for the same thresholds — at any shard
//! count, any chunk size, and across a JSON snapshot/restore
//! checkpoint. The only sanctioned divergence is memory-pressure
//! eviction, which is exercised (and bounded) separately below.

use quicsand_dissect::Direction;
use quicsand_live::{LiveConfig, LiveEngine, LiveEvent, LiveEventKind, LiveSnapshot};
use quicsand_net::{Duration, PacketRecord, TcpFlags, Timestamp};
use quicsand_obs::{Histogram, MetricsRegistry};
use quicsand_sessions::dos::AttackProtocol;
use quicsand_sessions::{
    classify_multivector, detect_attacks, Attack, DosMetrics, MultiVectorClass, SessionConfig,
    Sessionizer,
};
use quicsand_telescope::{Admitted, GuardConfig, TelescopePipeline};
use quicsand_traffic::{Scenario, ScenarioConfig};
use std::net::Ipv4Addr;

/// One QUIC attack's multi-vector verdict: (class, overlap share, gap).
type Verdict = (MultiVectorClass, Option<f64>, Option<Duration>);

/// The deterministic fig06-style scenario trace (capture order).
fn scenario_records() -> Vec<PacketRecord> {
    Scenario::generate(&ScenarioConfig::test()).records
}

/// The live configuration under test, mirroring the batch pipeline's
/// convention that sessionization tolerates exactly the reordering the
/// ingest guard admits.
fn live_config(guard: &GuardConfig) -> LiveConfig {
    LiveConfig {
        session: SessionConfig {
            skew_tolerance: guard.reorder_tolerance,
            ..SessionConfig::default()
        },
        ..LiveConfig::default()
    }
}

/// The offline reference: raw ingest guard → sessionize the Response
/// and baseline channels → threshold detection → multi-vector
/// classification, exactly as the batch analysis does (minus the
/// two-pass research-scanner filter, which is inherently offline).
fn batch_reference(
    records: &[PacketRecord],
    guard: GuardConfig,
    config: &LiveConfig,
) -> (Vec<Attack>, Vec<Attack>, Vec<Verdict>) {
    let mut pipeline = TelescopePipeline::with_guard(guard);
    let mut responses = Sessionizer::new(config.session);
    let mut commons = Sessionizer::new(config.session);
    for record in records {
        match pipeline.admit(record) {
            Admitted::Quic(obs) => {
                if obs.direction == Direction::Response {
                    responses.offer(obs.ts, obs.src);
                }
            }
            Admitted::Baseline(record) => commons.offer(record.ts, record.src),
            Admitted::Dropped => {}
        }
    }
    let mut response_sessions = responses.finish();
    let mut common_sessions = commons.finish();
    response_sessions.sort_by_key(|s| (s.start, s.src));
    common_sessions.sort_by_key(|s| (s.start, s.src));
    let quic = detect_attacks(&response_sessions, AttackProtocol::Quic, &config.thresholds);
    let common = detect_attacks(
        &common_sessions,
        AttackProtocol::TcpIcmp,
        &config.thresholds,
    );
    let report = classify_multivector(&quic, &common);
    let verdicts = report
        .attacks
        .iter()
        .map(|c| (c.class, c.overlap_share, c.gap))
        .collect();
    (quic, common, verdicts)
}

/// Streams the trace through a fresh engine in `chunk`-sized batches.
fn live_run(
    records: &[PacketRecord],
    guard: GuardConfig,
    config: LiveConfig,
    shards: usize,
    chunk: usize,
) -> (Vec<LiveEvent>, LiveEngine) {
    let mut engine = LiveEngine::new(config, guard, shards);
    let mut events = Vec::new();
    for part in records.chunks(chunk) {
        events.extend(engine.offer_chunk(part));
    }
    events.extend(engine.finish());
    (events, engine)
}

/// Asserts the engine's final state against the batch reference:
/// closed attack sets exactly equal, verdict triples (class, overlap
/// share, gap) bitwise equal element by element.
fn assert_matches_batch(
    engine: &LiveEngine,
    batch_quic: &[Attack],
    batch_common: &[Attack],
    batch_verdicts: &[Verdict],
    context: &str,
) {
    let closed = engine.closed_quic();
    let live_quic: Vec<Attack> = closed.iter().map(|c| c.attack.clone()).collect();
    assert_eq!(live_quic, batch_quic, "QUIC attacks diverged: {context}");
    assert_eq!(
        engine.closed_common(),
        batch_common,
        "common attacks diverged: {context}"
    );
    let live_verdicts: Vec<_> = closed.iter().map(|c| c.verdict()).collect();
    assert_eq!(
        live_verdicts, batch_verdicts,
        "multi-vector verdicts diverged: {context}"
    );
}

#[test]
fn closed_alerts_equal_batch_detection_at_any_chunk_and_shard_count() {
    let mut records = scenario_records();
    // A prefix is itself a finite trace; it keeps the 12-combination
    // matrix fast while still closing floods on both channels.
    records.truncate(60_000);
    let guard = GuardConfig::default();
    let config = live_config(&guard);
    let (batch_quic, batch_common, batch_verdicts) = batch_reference(&records, guard, &config);
    assert!(
        !batch_quic.is_empty() && !batch_common.is_empty(),
        "trace must contain attacks on both channels for the test to mean anything \
         ({} quic, {} common)",
        batch_quic.len(),
        batch_common.len()
    );

    for shards in [1usize, 2, 8] {
        for chunk in [1usize, 7, 1024, usize::MAX] {
            let (_, engine) = live_run(&records, guard, config, shards, chunk);
            assert_eq!(
                engine.live_stats().evictions,
                0,
                "default cap must not evict"
            );
            assert_matches_batch(
                &engine,
                &batch_quic,
                &batch_common,
                &batch_verdicts,
                &format!("shards={shards} chunk={chunk}"),
            );
        }
    }
}

#[test]
fn full_scenario_trace_matches_batch() {
    let records = scenario_records();
    let guard = GuardConfig::default();
    let config = live_config(&guard);
    let (batch_quic, batch_common, batch_verdicts) = batch_reference(&records, guard, &config);
    let (events, engine) = live_run(&records, guard, config, 4, 4096);
    assert_matches_batch(
        &engine,
        &batch_quic,
        &batch_common,
        &batch_verdicts,
        "full trace, shards=4 chunk=4096",
    );
    // Every batch attack surfaced as a Closed event, and lifecycle
    // ordering held per victim (no Closed before its Opened).
    let closes = events
        .iter()
        .filter(|e| e.kind == LiveEventKind::Closed)
        .count();
    assert_eq!(closes, batch_quic.len() + batch_common.len());
    let opens = events
        .iter()
        .filter(|e| e.kind == LiveEventKind::Opened)
        .count();
    assert_eq!(opens, closes, "every alert that opened also closed");
}

#[test]
fn json_checkpoint_resume_emits_identical_alerts() {
    let mut records = scenario_records();
    records.truncate(40_000);
    let guard = GuardConfig::default();
    let config = live_config(&guard);

    let (straight_events, straight) = live_run(&records, guard, config, 2, 1024);

    // Same stream, but the engine is serialized to JSON, dropped, and
    // rebuilt from the parsed snapshot every 15k records.
    let mut engine = LiveEngine::new(config, guard, 2);
    let mut events = Vec::new();
    let mut since = 0usize;
    for part in records.chunks(1024) {
        events.extend(engine.offer_chunk(part));
        since += part.len();
        if since >= 15_000 {
            since = 0;
            let snapshot = engine.snapshot();
            let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
            let parsed: LiveSnapshot = serde_json::from_str(&json).expect("snapshot parses");
            assert_eq!(parsed, snapshot, "JSON round trip is lossless");
            engine = LiveEngine::restore(&parsed);
        }
    }
    events.extend(engine.finish());

    assert_eq!(
        events, straight_events,
        "event log diverged across checkpoints"
    );
    assert_eq!(engine.closed_quic(), straight.closed_quic());
    assert_eq!(engine.closed_common(), straight.closed_common());
    assert_eq!(engine.live_stats(), straight.live_stats());
    assert_eq!(engine.ingest_stats(), straight.ingest_stats());
}

/// Asserts a live/batch histogram pair agrees on its full distribution
/// state: observation count, sum, and every bucket count.
fn assert_hist_eq(live: &Histogram, batch: &Histogram, name: &str, context: &str) {
    assert_eq!(
        live.count(),
        batch.count(),
        "{name} count diverged: {context}"
    );
    assert_eq!(live.sum(), batch.sum(), "{name} sum diverged: {context}");
    assert_eq!(
        live.bucket_counts(),
        batch.bucket_counts(),
        "{name} buckets diverged: {context}"
    );
}

/// Asserts the engine's exported metrics equal the batch reference's:
/// the closed-alert counter matches the batch attack count, and every
/// `DosMetrics` series (counters and histograms, both protocol labels)
/// is identical to a registry fed the batch detection output. Also
/// re-checks the engine's own reconciliation invariant first, so a
/// divergence here is live-vs-batch, not counter drift.
fn assert_metrics_match_batch(
    engine: &mut LiveEngine,
    batch_quic: &[Attack],
    batch_common: &[Attack],
    context: &str,
) {
    engine.verify_metrics().unwrap_or_else(|errors| {
        panic!(
            "metrics reconciliation failed ({context}): {}",
            errors.join("; ")
        )
    });
    let expected_closed = (batch_quic.len() + batch_common.len()) as u64;
    assert_eq!(
        engine.metrics().closed.get(),
        expected_closed,
        "closed-alert counter diverged from batch attack count: {context}"
    );

    let registry = MetricsRegistry::new();
    let reference = DosMetrics::register(&registry);
    reference.observe_attacks(batch_quic);
    reference.observe_attacks(batch_common);
    let live = &engine.metrics().dos;
    assert_eq!(
        live.attacks_quic.get(),
        reference.attacks_quic.get(),
        "quic attack counter diverged: {context}"
    );
    assert_eq!(
        live.attacks_common.get(),
        reference.attacks_common.get(),
        "common attack counter diverged: {context}"
    );
    assert_hist_eq(
        &live.duration_quic,
        &reference.duration_quic,
        "attack_duration{protocol=quic}",
        context,
    );
    assert_hist_eq(
        &live.duration_common,
        &reference.duration_common,
        "attack_duration{protocol=tcp_icmp}",
        context,
    );
    assert_hist_eq(
        &live.packets_quic,
        &reference.packets_quic,
        "attack_packets{protocol=quic}",
        context,
    );
    assert_hist_eq(
        &live.packets_common,
        &reference.packets_common,
        "attack_packets{protocol=tcp_icmp}",
        context,
    );
}

/// Live and batch share the `quicsand_detect_attacks_total` /
/// `quicsand_attack_*` metric families, so their exported values must
/// be *identical* for the same trace — counter for counter, bucket for
/// bucket — at any shard count, and equally after the engine has been
/// serialized, dropped, and rebuilt from JSON checkpoints mid-stream
/// (restore re-seeds its fresh registry from the snapshot's closed
/// sets, so stable metrics land exactly where an uninterrupted run's
/// would).
#[test]
fn live_metrics_equal_batch_metrics_including_across_checkpoints() {
    let mut records = scenario_records();
    records.truncate(60_000);
    let guard = GuardConfig::default();
    let config = live_config(&guard);
    let (batch_quic, batch_common, _) = batch_reference(&records, guard, &config);
    assert!(
        !batch_quic.is_empty() && !batch_common.is_empty(),
        "trace must close attacks on both channels"
    );

    for shards in [1usize, 2] {
        let (_, mut engine) = live_run(&records, guard, config, shards, 1024);
        assert_metrics_match_batch(
            &mut engine,
            &batch_quic,
            &batch_common,
            &format!("straight run, shards={shards}"),
        );
    }

    // Same stream with a JSON checkpoint/restore cycle every 15k
    // records, mirroring the `quicsand live --checkpoint-every` flow.
    let mut engine = LiveEngine::new(config, guard, 2);
    let mut since = 0usize;
    for part in records.chunks(1024) {
        let _ = engine.offer_chunk(part);
        since += part.len();
        if since >= 15_000 {
            since = 0;
            let json = serde_json::to_string(&engine.snapshot()).expect("snapshot serializes");
            let parsed: LiveSnapshot = serde_json::from_str(&json).expect("snapshot parses");
            engine = LiveEngine::restore(&parsed);
            engine.record_checkpoint(json.len() as u64);
        }
    }
    let _ = engine.finish();
    assert!(
        engine.metrics().checkpoints_total.get() > 0,
        "checkpoint cadence never fired"
    );
    assert_metrics_match_batch(
        &mut engine,
        &batch_quic,
        &batch_common,
        "checkpoint/restore every 15k records",
    );
}

#[test]
fn victim_cap_bounds_memory_and_counts_evictions() {
    // 40 victims flooding simultaneously against a 6-victim cap: the
    // engine must stay bounded, keep counting, and flag every forced
    // close as an eviction.
    let cap = 6usize;
    let victims: Vec<Ipv4Addr> = (0..40).map(|i| Ipv4Addr::new(198, 51, 100, i)).collect();
    let mut records = Vec::new();
    for tick in 0..240u64 {
        for (i, v) in victims.iter().enumerate() {
            records.push(PacketRecord::tcp(
                Timestamp::from_micros(tick * 1_000_000 + i as u64),
                *v,
                Ipv4Addr::new(10, 0, 0, 9),
                443,
                50_000,
                TcpFlags::SYN_ACK,
            ));
        }
    }
    let guard = GuardConfig::default();
    let config = LiveConfig {
        max_victims: cap,
        ..live_config(&guard)
    };
    let (events, engine) = live_run(&records, guard, config, 1, 2048);

    let stats = engine.live_stats();
    assert!(stats.evictions > 0, "cap never triggered: {stats:?}");
    assert!(
        stats.peak_tracked <= cap,
        "victim cap violated: peak {} > {}",
        stats.peak_tracked,
        cap
    );
    // An eviction only surfaces as an event when the victim had an open
    // alert (below-threshold victims vanish silently, exactly as their
    // sessions would in batch detection) — so the flagged closes are a
    // subset of the counted evictions, and nothing but closes may carry
    // the flag.
    assert!(events
        .iter()
        .all(|e| !e.evicted || e.kind == LiveEventKind::Closed));
    let evicted_closes = events.iter().filter(|e| e.evicted).count() as u64;
    assert!(
        evicted_closes <= stats.evictions,
        "{evicted_closes} flagged closes > {} evictions",
        stats.evictions
    );
}
