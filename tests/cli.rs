//! End-to-end test of the `quicsand` CLI binary: generate → analyze →
//! replay, via real subprocesses and a real capture file.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_quicsand")
}

#[test]
fn generate_then_analyze_roundtrip() {
    let dir = std::env::temp_dir().join("quicsand-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let capture = dir.join("cli.qscp");

    let generate = Command::new(bin())
        .args([
            "generate",
            "--out",
            capture.to_str().unwrap(),
            "--scale",
            "test",
        ])
        .output()
        .expect("run generate");
    assert!(
        generate.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&generate.stderr)
    );
    let stdout = String::from_utf8_lossy(&generate.stdout);
    assert!(stdout.contains("wrote"), "stdout: {stdout}");
    assert!(capture.exists());

    let pcap = dir.join("cli.pcap");
    let export = Command::new(bin())
        .args([
            "export",
            capture.to_str().unwrap(),
            "--pcap",
            pcap.to_str().unwrap(),
        ])
        .output()
        .expect("run export");
    assert!(
        export.status.success(),
        "export failed: {}",
        String::from_utf8_lossy(&export.stderr)
    );
    let pcap_bytes = std::fs::read(&pcap).unwrap();
    assert_eq!(
        &pcap_bytes[0..4],
        &0xa1b2_c3d4u32.to_le_bytes(),
        "pcap magic"
    );
    std::fs::remove_file(&pcap).unwrap();

    let analyze = Command::new(bin())
        .args(["analyze", capture.to_str().unwrap(), "--threads", "2"])
        .output()
        .expect("run analyze");
    assert!(
        analyze.status.success(),
        "analyze failed: {}",
        String::from_utf8_lossy(&analyze.stderr)
    );
    let stdout = String::from_utf8_lossy(&analyze.stdout);
    assert!(stdout.contains("QUIC floods:"), "stdout: {stdout}");
    assert!(stdout.contains("multi-vector:"), "stdout: {stdout}");
    assert!(stdout.contains("pipeline: 2 thread(s)"), "stdout: {stdout}");

    // The analysis products must not depend on the thread count: the
    // deterministic report lines (everything except the walltime
    // `pipeline:` line) are byte-identical across --threads values.
    let strip = |out: &[u8]| -> String {
        String::from_utf8_lossy(out)
            .lines()
            .filter(|l| !l.starts_with("pipeline:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    for threads in ["1", "8"] {
        let rerun = Command::new(bin())
            .args(["analyze", capture.to_str().unwrap(), "--threads", threads])
            .output()
            .expect("run analyze");
        assert!(rerun.status.success());
        assert_eq!(
            strip(&rerun.stdout),
            strip(&analyze.stdout),
            "--threads {threads} changed the analysis output"
        );
    }

    std::fs::remove_file(&capture).unwrap();
}

#[test]
fn flag_followed_by_flag_is_rejected() {
    // `--out --scale` used to write a capture file literally named
    // `--scale`.
    let output = Command::new(bin())
        .args(["generate", "--out", "--scale", "test"])
        .output()
        .expect("run generate");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--out") && stderr.contains("expects a value"),
        "stderr: {stderr}"
    );
    assert!(!std::path::Path::new("--scale").exists());
}

#[test]
fn flag_missing_value_is_rejected() {
    let output = Command::new(bin())
        .args(["generate", "--out"])
        .output()
        .expect("run generate");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("missing its value"), "stderr: {stderr}");
}

#[test]
fn invalid_threads_is_rejected() {
    let output = Command::new(bin())
        .args(["analyze", "whatever.qscp", "--threads", "0"])
        .output()
        .expect("run analyze");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--threads"), "stderr: {stderr}");
}

#[test]
fn replay_reports_availability() {
    let output = Command::new(bin())
        .args(["replay", "--pps", "1000", "--requests", "20000", "--retry"])
        .output()
        .expect("run replay");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("availability 100%"), "stdout: {stdout}");
    assert!(stdout.contains("extra-rtt yes"), "stdout: {stdout}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let output = Command::new(bin())
        .arg("frobnicate")
        .output()
        .expect("run binary");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("USAGE"), "stderr: {stderr}");
}

#[test]
fn help_prints_usage() {
    let output = Command::new(bin()).arg("--help").output().expect("run");
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("USAGE"));
}

#[test]
fn missing_required_flag_fails() {
    let output = Command::new(bin()).arg("generate").output().expect("run");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--out"));
}
