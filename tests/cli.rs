//! End-to-end test of the `quicsand` CLI binary: generate → analyze →
//! replay, via real subprocesses and a real capture file.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_quicsand")
}

#[test]
fn generate_then_analyze_roundtrip() {
    let dir = std::env::temp_dir().join("quicsand-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let capture = dir.join("cli.qscp");

    let generate = Command::new(bin())
        .args([
            "generate",
            "--out",
            capture.to_str().unwrap(),
            "--scale",
            "test",
        ])
        .output()
        .expect("run generate");
    assert!(
        generate.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&generate.stderr)
    );
    let stdout = String::from_utf8_lossy(&generate.stdout);
    assert!(stdout.contains("wrote"), "stdout: {stdout}");
    assert!(capture.exists());

    let pcap = dir.join("cli.pcap");
    let export = Command::new(bin())
        .args([
            "export",
            capture.to_str().unwrap(),
            "--pcap",
            pcap.to_str().unwrap(),
        ])
        .output()
        .expect("run export");
    assert!(
        export.status.success(),
        "export failed: {}",
        String::from_utf8_lossy(&export.stderr)
    );
    let pcap_bytes = std::fs::read(&pcap).unwrap();
    assert_eq!(
        &pcap_bytes[0..4],
        &0xa1b2_c3d4u32.to_le_bytes(),
        "pcap magic"
    );
    std::fs::remove_file(&pcap).unwrap();

    let analyze = Command::new(bin())
        .args(["analyze", capture.to_str().unwrap(), "--threads", "2"])
        .output()
        .expect("run analyze");
    assert!(
        analyze.status.success(),
        "analyze failed: {}",
        String::from_utf8_lossy(&analyze.stderr)
    );
    let stdout = String::from_utf8_lossy(&analyze.stdout);
    assert!(stdout.contains("QUIC floods:"), "stdout: {stdout}");
    assert!(stdout.contains("multi-vector:"), "stdout: {stdout}");
    assert!(stdout.contains("pipeline: 2 thread(s)"), "stdout: {stdout}");

    // The analysis products must not depend on the thread count: the
    // deterministic report lines (everything except the walltime
    // `pipeline:` line) are byte-identical across --threads values.
    let strip = |out: &[u8]| -> String {
        String::from_utf8_lossy(out)
            .lines()
            .filter(|l| !l.starts_with("pipeline:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    for threads in ["1", "8"] {
        let rerun = Command::new(bin())
            .args(["analyze", capture.to_str().unwrap(), "--threads", threads])
            .output()
            .expect("run analyze");
        assert!(rerun.status.success());
        assert_eq!(
            strip(&rerun.stdout),
            strip(&analyze.stdout),
            "--threads {threads} changed the analysis output"
        );
    }

    std::fs::remove_file(&capture).unwrap();
}

#[test]
fn flag_followed_by_flag_is_rejected() {
    // `--out --scale` used to write a capture file literally named
    // `--scale`.
    let output = Command::new(bin())
        .args(["generate", "--out", "--scale", "test"])
        .output()
        .expect("run generate");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--out") && stderr.contains("expects a value"),
        "stderr: {stderr}"
    );
    assert!(!std::path::Path::new("--scale").exists());
}

#[test]
fn flag_missing_value_is_rejected() {
    let output = Command::new(bin())
        .args(["generate", "--out"])
        .output()
        .expect("run generate");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("missing its value"), "stderr: {stderr}");
}

#[test]
fn invalid_threads_is_rejected() {
    let output = Command::new(bin())
        .args(["analyze", "whatever.qscp", "--threads", "0"])
        .output()
        .expect("run analyze");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--threads"), "stderr: {stderr}");
}

#[test]
fn replay_reports_availability() {
    let output = Command::new(bin())
        .args(["replay", "--pps", "1000", "--requests", "20000", "--retry"])
        .output()
        .expect("run replay");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("availability 100%"), "stdout: {stdout}");
    assert!(stdout.contains("extra-rtt yes"), "stdout: {stdout}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let output = Command::new(bin())
        .arg("frobnicate")
        .output()
        .expect("run binary");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("USAGE"), "stderr: {stderr}");
}

#[test]
fn help_prints_usage() {
    let output = Command::new(bin()).arg("--help").output().expect("run");
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("USAGE"));
}

#[test]
fn missing_required_flag_fails() {
    let output = Command::new(bin()).arg("generate").output().expect("run");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--out"));
}

/// Regression: `live` on an empty (0-byte) capture used to hard-fail
/// with a truncation error; an empty feed must be tolerated — drained,
/// counted, and reported as zero records.
#[test]
fn live_tolerates_empty_captures_standalone_and_in_a_set() {
    let dir = std::env::temp_dir().join("quicsand-cli-live-empty");
    std::fs::create_dir_all(&dir).unwrap();
    let capture = dir.join("live.qscp");
    let empty = dir.join("empty.qscp");
    std::fs::write(&empty, b"").unwrap();

    let generate = Command::new(bin())
        .args([
            "generate",
            "--out",
            capture.to_str().unwrap(),
            "--scale",
            "test",
            "--seed",
            "11",
        ])
        .output()
        .expect("run generate");
    assert!(
        generate.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&generate.stderr)
    );

    // Standalone empty capture: exits 0 with zero records, no alerts.
    let alone = Command::new(bin())
        .args(["live", empty.to_str().unwrap()])
        .output()
        .expect("run live on empty capture");
    assert!(
        alone.status.success(),
        "live on an empty capture must succeed: {}",
        String::from_utf8_lossy(&alone.stderr)
    );
    let stdout = String::from_utf8_lossy(&alone.stdout);
    assert!(stdout.contains("0 records in"), "stdout: {stdout}");
    assert!(
        stdout.contains("sources: 1 feed(s)") && stdout.contains("1 empty"),
        "stdout: {stdout}"
    );

    // A real feed plus an empty feed: alert lines byte-identical to the
    // single-source run, with the empty feed surfaced in the summary.
    let single = Command::new(bin())
        .args(["live", capture.to_str().unwrap(), "--shards", "2"])
        .output()
        .expect("run single-source live");
    assert!(single.status.success());
    let multi = Command::new(bin())
        .args([
            "live",
            "--input",
            capture.to_str().unwrap(),
            "--input",
            empty.to_str().unwrap(),
            "--shards",
            "2",
        ])
        .output()
        .expect("run multi-source live");
    assert!(
        multi.status.success(),
        "multi-source live failed: {}",
        String::from_utf8_lossy(&multi.stderr)
    );
    let pick_alerts = |out: &[u8]| -> String {
        String::from_utf8_lossy(out)
            .lines()
            .filter(|l| l.starts_with("live:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        pick_alerts(&single.stdout),
        pick_alerts(&multi.stdout),
        "an empty extra feed must not change any alert"
    );
    let stdout = String::from_utf8_lossy(&multi.stdout);
    assert!(
        stdout.contains("sources: 2 feed(s)") && stdout.contains("1 empty"),
        "stdout: {stdout}"
    );

    std::fs::remove_file(&capture).ok();
    std::fs::remove_file(&empty).ok();
}

/// A zero-event run still writes a *valid* qlog file: header record
/// only, correct RFC 7464 framing — consumers must never special-case
/// "no events".
#[test]
fn events_out_on_a_zero_event_run_is_a_valid_header_only_qlog() {
    let dir = std::env::temp_dir().join("quicsand-cli-events-empty");
    std::fs::create_dir_all(&dir).unwrap();
    let empty = dir.join("empty.qscp");
    let qlog = dir.join("empty.qlog");
    std::fs::write(&empty, b"").unwrap();

    let live = Command::new(bin())
        .args([
            "live",
            empty.to_str().unwrap(),
            "--events-out",
            qlog.to_str().unwrap(),
        ])
        .output()
        .expect("run live with events-out");
    assert!(
        live.status.success(),
        "live failed: {}",
        String::from_utf8_lossy(&live.stderr)
    );
    let bytes = std::fs::read(&qlog).unwrap();
    assert_eq!(bytes.first(), Some(&0x1Eu8), "RFC 7464 record separator");
    assert_eq!(bytes.last(), Some(&b'\n'), "record terminator");

    let check = Command::new(bin())
        .args(["forensics", "check", qlog.to_str().unwrap()])
        .output()
        .expect("run forensics check");
    assert!(
        check.status.success(),
        "forensics check rejected a header-only qlog: {}",
        String::from_utf8_lossy(&check.stderr)
    );
    let stdout = String::from_utf8_lossy(&check.stdout);
    assert!(
        stdout.contains("1 record(s), 0 event(s)"),
        "stdout: {stdout}"
    );

    std::fs::remove_file(&empty).ok();
    std::fs::remove_file(&qlog).ok();
}

/// `--events-out` pointing at an unwritable path fails up front — before
/// any feed is opened or a single record is pumped.
#[test]
fn events_out_unwritable_path_fails_up_front() {
    let dir = std::env::temp_dir().join("quicsand-cli-events-unwritable");
    std::fs::create_dir_all(&dir).unwrap();
    let empty = dir.join("empty.qscp");
    std::fs::write(&empty, b"").unwrap();

    for command in [
        vec!["live", empty.to_str().unwrap()],
        vec!["analyze", empty.to_str().unwrap()],
    ] {
        let output = Command::new(bin())
            .args(&command)
            .args(["--events-out", "/nonexistent-dir/out.qlog"])
            .output()
            .expect("run with unwritable events-out");
        assert!(
            !output.status.success(),
            "{} must fail on an unwritable --events-out",
            command[0]
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("events-out") && stderr.contains("cannot create"),
            "{} stderr: {stderr}",
            command[0]
        );
    }
    std::fs::remove_file(&empty).ok();
}

/// `--evidence-ring` validates its value like every other numeric flag.
#[test]
fn invalid_evidence_ring_is_rejected() {
    let output = Command::new(bin())
        .args(["live", "whatever.qscp", "--evidence-ring", "0"])
        .output()
        .expect("run live");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--evidence-ring"), "stderr: {stderr}");
}

/// `live` with no capture path at all still fails loudly.
#[test]
fn live_without_any_input_is_rejected() {
    let output = Command::new(bin())
        .args(["live"])
        .output()
        .expect("run live without inputs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--input"), "stderr: {stderr}");
}
