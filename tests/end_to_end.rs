//! Cross-crate end-to-end test: scenario generation → telescope
//! pipeline → sessionization → DoS inference → multi-vector
//! correlation → every experiment runner.

use quicsand_core::experiments as exp;
use quicsand_core::{Analysis, AnalysisConfig};
use quicsand_sessions::multivector::MultiVectorClass;
use quicsand_traffic::{Scenario, ScenarioConfig};
use std::sync::OnceLock;

fn fixtures() -> &'static (Scenario, Analysis) {
    static CELL: OnceLock<(Scenario, Analysis)> = OnceLock::new();
    CELL.get_or_init(|| {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        (scenario, analysis)
    })
}

#[test]
fn every_experiment_produces_a_report() {
    let (scenario, analysis) = fixtures();
    let reports = vec![
        exp::fig02::run(scenario, analysis),
        exp::fig03::run(scenario, analysis),
        exp::fig04::run(analysis),
        exp::fig05::run(scenario, analysis),
        exp::fig06::run(analysis),
        exp::fig07::run(analysis),
        exp::fig08::run(analysis),
        exp::fig09::run(scenario, analysis),
        exp::fig10::run(scenario, analysis),
        exp::fig11::run(analysis),
        exp::fig12::run(analysis),
        exp::fig13::run(analysis),
        exp::msgmix::run(analysis),
    ];
    for report in &reports {
        assert!(!report.findings.is_empty(), "{} has findings", report.id);
        let text = report.render();
        assert!(text.contains(&report.id));
        // JSON serialization works for downstream tooling.
        let json = report.to_json().unwrap();
        assert!(json.contains(&report.id));
    }
    // All 13 scenario-driven artifacts have distinct ids.
    let ids: std::collections::HashSet<_> = reports.iter().map(|r| r.id.clone()).collect();
    assert_eq!(ids.len(), 13);
}

#[test]
fn headline_findings_reproduce() {
    let (_, analysis) = fixtures();
    // Four floods per hour territory (test preset plants ~60 over 2 days
    // => ~1.2/h; the invariant checked here is detection, not rate).
    assert!(analysis.quic_attacks.len() >= 40);
    // Multi-vector ordering: concurrent > sequential > isolated.
    let c = analysis.multivector.share(MultiVectorClass::Concurrent);
    let s = analysis.multivector.share(MultiVectorClass::Sequential);
    let i = analysis.multivector.share(MultiVectorClass::Isolated);
    assert!(c > s && s > i, "shares {c:.2}/{s:.2}/{i:.2}");
    // QUIC floods shorter than common floods in the median.
    let median = |attacks: &[quicsand_sessions::Attack]| {
        let mut d: Vec<f64> = attacks.iter().map(|a| a.duration().as_secs_f64()).collect();
        d.sort_by(|x, y| x.partial_cmp(y).unwrap());
        d[d.len() / 2]
    };
    assert!(median(&analysis.common_attacks) > median(&analysis.quic_attacks));
}

#[test]
fn planted_and_detected_agree_on_victim_set() {
    let (scenario, analysis) = fixtures();
    let planted: std::collections::HashSet<_> =
        scenario.truth.plan.victims.iter().copied().collect();
    let detected = analysis.victims();
    assert!(detected.is_subset(&planted));
    // Most planted victims are rediscovered.
    assert!(
        detected.len() as f64 >= 0.6 * planted.len() as f64,
        "{} of {} victims detected",
        detected.len(),
        planted.len()
    );
}

#[test]
fn ingest_accounts_for_every_record() {
    let (scenario, analysis) = fixtures();
    let s = &analysis.ingest;
    assert_eq!(s.total, scenario.records.len() as u64);
    assert_eq!(
        s.quic_candidates + s.tcp + s.icmp + s.other_udp + s.ambiguous,
        s.total
    );
    assert_eq!(s.quic_valid + s.quic_false_positives, s.quic_candidates);
    assert_eq!(s.ambiguous, 0, "no packet has both ports 443 (§4.1)");
}

#[test]
fn analysis_is_deterministic() {
    let (scenario, analysis) = fixtures();
    let again = Analysis::run(scenario, &AnalysisConfig::default());
    assert_eq!(again.quic_attacks, analysis.quic_attacks);
    assert_eq!(again.common_attacks.len(), analysis.common_attacks.len());
    assert_eq!(
        again.multivector.class_counts,
        analysis.multivector.class_counts
    );
}
