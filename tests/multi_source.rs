//! Multi-source ≡ single-merged-source: feeding the live engine from N
//! concurrent feeds through the [`SourceSet`] multiplexer must be
//! indistinguishable from feeding it the event-time merge of those
//! feeds directly — identical events, identical closed alerts, and a
//! byte-identical stable metrics exposition — at any source count, any
//! shard count, and any chunk size. The contract must survive seeded
//! mid-stream source failures (reconnect-with-resume), a schema-v2
//! checkpoint/restore taken while a feed is flaky, and sources that are
//! empty or hit EOF instantly.

use quicsand_faults::source::{FlakyFactory, FlakyPlan};
use quicsand_live::{parse_checkpoint, LiveConfig, LiveEngine, LiveEvent, MultiSourceLive};
use quicsand_net::multi::{
    capture_file_factory, memory_factory, merge_records, SourceFactory, SourceSet, SourceSetConfig,
};
use quicsand_net::PacketRecord;
use quicsand_telescope::GuardConfig;
use quicsand_traffic::{Scenario, ScenarioConfig};

/// A prefix of the deterministic scenario trace: long enough to close
/// floods on both channels, short enough to keep the matrix fast.
fn scenario_records() -> Vec<PacketRecord> {
    let mut records = Scenario::generate(&ScenarioConfig::test()).records;
    records.truncate(40_000);
    records
}

/// Round-robin split of a capture-order trace into `n` feeds. Each
/// part inherits the trace's timestamp order, so the event-time merge
/// reconstructs the original interleaving exactly.
fn splits(records: &[PacketRecord], n: usize) -> Vec<Vec<PacketRecord>> {
    let mut parts = vec![Vec::new(); n];
    for (i, record) in records.iter().enumerate() {
        parts[i % n].push(record.clone());
    }
    parts
}

fn factories(parts: &[Vec<PacketRecord>]) -> Vec<Box<dyn SourceFactory>> {
    parts
        .iter()
        .map(|p| Box::new(memory_factory(p.clone())) as Box<dyn SourceFactory>)
        .collect()
}

/// The reference: a plain engine over the pre-merged trace.
fn reference_run(
    merged: &[PacketRecord],
    shards: usize,
    chunk: usize,
) -> (Vec<LiveEvent>, LiveEngine) {
    let mut engine = LiveEngine::new(LiveConfig::default(), GuardConfig::default(), shards);
    let mut events = Vec::new();
    for part in merged.chunks(chunk) {
        events.extend(engine.offer_chunk(part));
    }
    events.extend(engine.finish());
    (events, engine)
}

/// The system under test: the same engine behind the multiplexer.
fn multi_run(
    factories: Vec<Box<dyn SourceFactory>>,
    config: &SourceSetConfig,
    shards: usize,
    chunk: usize,
) -> (Vec<LiveEvent>, MultiSourceLive) {
    let set = SourceSet::spawn(factories, config);
    let mut live = MultiSourceLive::new(LiveConfig::default(), GuardConfig::default(), shards, set);
    let mut events = Vec::new();
    while let Some(batch) = live.pump(chunk) {
        events.extend(batch);
    }
    events.extend(live.finish());
    (events, live)
}

/// Full-strength equivalence assertion between a multi-source run and
/// its single-merged-source reference.
fn assert_equivalent(
    (multi_events, live): &mut (Vec<LiveEvent>, MultiSourceLive),
    (want_events, reference): &mut (Vec<LiveEvent>, LiveEngine),
    context: &str,
) {
    assert_eq!(multi_events, want_events, "event log diverged: {context}");
    assert_eq!(
        live.engine().closed_quic(),
        reference.closed_quic(),
        "closed QUIC alerts diverged: {context}"
    );
    assert_eq!(
        live.engine().closed_common(),
        reference.closed_common(),
        "closed TCP/ICMP alerts diverged: {context}"
    );
    assert_eq!(
        live.live_stats(),
        reference.live_stats(),
        "detector stats diverged: {context}"
    );
    assert_eq!(
        live.ingest_stats(),
        reference.ingest_stats(),
        "ingest stats diverged: {context}"
    );
    // Per-source series are Volatile by design, so the stable
    // exposition must not betray how the trace was split into feeds.
    assert_eq!(
        live.engine().registry().render_prometheus(true),
        reference.registry().render_prometheus(true),
        "stable Prometheus exposition diverged: {context}"
    );
    live.verify_metrics()
        .unwrap_or_else(|e| panic!("reconciliation failed ({context}): {}", e.join("; ")));
    reference.verify_metrics().unwrap_or_else(|e| {
        panic!(
            "reference reconciliation failed ({context}): {}",
            e.join("; ")
        )
    });
}

#[test]
fn multi_source_equals_single_merged_source_across_the_matrix() {
    let records = scenario_records();
    // Chunk sizes rotate through the matrix so every source count and
    // every shard count is exercised at more than one chunk size
    // without cubing the combination count.
    let chunks = [1usize, 257, 4096];
    let mut combo = 0usize;
    for sources in [1usize, 2, 4] {
        let parts = splits(&records, sources);
        let merged = merge_records(&parts);
        assert_eq!(merged.len(), records.len(), "split conserves records");
        for shards in [1usize, 2, 8] {
            let chunk = chunks[combo % chunks.len()];
            combo += 1;
            let context = format!("sources={sources} shards={shards} chunk={chunk}");
            let mut want = reference_run(&merged, shards, chunk);
            assert!(
                !want.1.closed_quic().is_empty() && !want.1.closed_common().is_empty(),
                "trace must close alerts on both channels ({context})"
            );
            let mut got = multi_run(
                factories(&parts),
                &SourceSetConfig::default(),
                shards,
                chunk,
            );
            assert_equivalent(&mut got, &mut want, &context);
            let delivered: u64 = got.1.source_stats().iter().map(|s| s.delivered).sum();
            assert_eq!(delivered, records.len() as u64, "conservation: {context}");
        }
    }
}

#[test]
fn seeded_source_failures_are_invisible_end_to_end() {
    let records = scenario_records();
    let parts = splits(&records, 3);
    let merged = merge_records(&parts);
    let plan = FlakyPlan::new(0xC0FFEE, 5, parts[1].len() as u64);
    assert_eq!(plan.points().len(), 5, "plan fits inside the feed");

    let mut want = reference_run(&merged, 2, 1024);
    let flaky: Vec<Box<dyn SourceFactory>> = vec![
        Box::new(memory_factory(parts[0].clone())),
        Box::new(FlakyFactory::new(
            memory_factory(parts[1].clone()),
            plan.clone(),
        )),
        Box::new(memory_factory(parts[2].clone())),
    ];
    let mut got = multi_run(flaky, &SourceSetConfig::default(), 2, 1024);
    assert_equivalent(&mut got, &mut want, "3 sources, 5 seeded failures");

    let stats = got.1.source_stats();
    assert_eq!(stats[1].reconnects, 5, "every planned failure fired");
    assert_eq!(stats[1].drops, 5, "each failure dropped one record read");
    assert!(stats[1].eof && !stats[1].dead, "the flaky feed recovered");
    assert_eq!(stats[0].reconnects + stats[2].reconnects, 0);
}

#[test]
fn checkpoint_restore_across_a_source_failure_is_lossless() {
    let records = scenario_records();
    let parts = splits(&records, 2);
    let merged = merge_records(&parts);
    let plan = FlakyPlan::new(11, 3, parts[0].len() as u64);
    // A restored FlakyFactory replays its schedule from open #0 while
    // the multiplexer fast-forwards to the cursor, so the skip phase
    // may burn several failures without delivering progress; the
    // reconnect budget must cover the whole plan.
    let config = SourceSetConfig {
        max_reconnects: (plan.points().len() as u32).max(8),
        ..SourceSetConfig::default()
    };
    let make_flaky = |plan: &FlakyPlan| -> Vec<Box<dyn SourceFactory>> {
        vec![
            Box::new(FlakyFactory::new(
                memory_factory(parts[0].clone()),
                plan.clone(),
            )),
            Box::new(memory_factory(parts[1].clone())),
        ]
    };

    // Phase 1: pump a prefix through a flaky set, checkpoint mid-run.
    let set = SourceSet::spawn(make_flaky(&plan), &config);
    let mut live = MultiSourceLive::new(LiveConfig::default(), GuardConfig::default(), 2, set);
    let mut events = Vec::new();
    for _ in 0..12 {
        events.extend(live.pump(1024).expect("prefix fits the trace"));
    }
    let json = serde_json::to_string(&live.snapshot()).expect("checkpoint serializes");
    drop(live);

    // Phase 2: restore from the JSON with fresh (still flaky)
    // factories and run to completion.
    let snapshot = parse_checkpoint(&json).expect("v2 checkpoint parses");
    assert_eq!(snapshot.version, 2);
    assert_eq!(snapshot.cursors.len(), 2);
    assert_eq!(
        snapshot.cursors.iter().sum::<u64>(),
        snapshot.engine.offered,
        "checkpoint itself conserves records"
    );
    let mut restored =
        MultiSourceLive::restore(&snapshot, make_flaky(&plan), &config).expect("restore");
    while let Some(batch) = restored.pump(1024) {
        events.extend(batch);
    }
    events.extend(restored.finish());
    restored
        .verify_metrics()
        .unwrap_or_else(|e| panic!("restored run fails reconciliation: {}", e.join("; ")));

    // The spliced run equals an uninterrupted, failure-free reference.
    let (want_events, mut reference) = reference_run(&merged, 2, 1024);
    assert_eq!(events, want_events, "events diverged across the restore");
    assert_eq!(restored.engine().closed_quic(), reference.closed_quic());
    assert_eq!(restored.engine().closed_common(), reference.closed_common());
    assert_eq!(
        restored.engine().registry().render_prometheus(true),
        reference.registry().render_prometheus(true),
        "stable exposition diverged across the restore"
    );
    reference.verify_metrics().expect("reference reconciles");
}

#[test]
fn empty_and_instantly_eof_sources_are_tolerated() {
    let records = scenario_records();
    let merged = records.clone();

    let dir = std::env::temp_dir().join("quicsand-multi-source-test");
    std::fs::create_dir_all(&dir).unwrap();
    let empty_file = dir.join("empty.qscp");
    std::fs::write(&empty_file, b"").unwrap();

    let mut want = reference_run(&merged, 2, 2048);
    let feeds: Vec<Box<dyn SourceFactory>> = vec![
        Box::new(memory_factory(records.clone())),
        Box::new(memory_factory(Vec::new())),
        Box::new(capture_file_factory(empty_file.clone())),
    ];
    let mut got = multi_run(feeds, &SourceSetConfig::default(), 2, 2048);
    assert_equivalent(&mut got, &mut want, "1 live feed + 2 empty feeds");

    let stats = got.1.source_stats();
    assert_eq!(stats[0].delivered, records.len() as u64);
    for (i, empty) in stats.iter().enumerate().skip(1) {
        assert_eq!(empty.delivered, 0, "source {i} delivered nothing");
        assert!(empty.eof, "source {i} reached EOF");
        assert!(!empty.dead, "source {i} was drained, not abandoned");
    }
    std::fs::remove_file(&empty_file).ok();
}
