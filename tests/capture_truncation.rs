//! Truncation regression tests: a capture cut at *any* byte offset must
//! be reported as [`CaptureError::Truncated`] by both the legacy
//! streaming reader and the zero-copy decoder — never silently accepted
//! as a shorter capture.
//!
//! The pre-fix `CaptureReader::read_record` mapped every `UnexpectedEof`
//! on the timestamp read to a clean end of stream, so a file cut 1–7
//! bytes into a record's timestamp silently dropped those trailing
//! bytes. The exhaustive sweeps below fail on those semantics and pin
//! the corrected contract for both readers:
//!
//! * fewer than 8 header bytes → `Truncated`;
//! * a cut exactly at a record boundary → clean end of stream, with
//!   every preceding record decoded;
//! * a cut anywhere inside a record — including mid-timestamp —
//!   → `Truncated`.

use bytes::Bytes;
use quicsand_net::capture::{from_bytes, to_bytes, CaptureError};
use quicsand_net::zerocopy::ZeroCopyCaptureReader;
use quicsand_net::{IcmpKind, PacketRecord, TcpFlags, Timestamp};
use std::net::Ipv4Addr;

/// One record of every transport, so the sweep crosses every field kind
/// (timestamp, addresses, tag, ports, length, payload, flags, icmp).
fn samples() -> Vec<PacketRecord> {
    vec![
        PacketRecord::udp(
            Timestamp::from_micros(111),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(128, 0, 0, 1),
            40000,
            443,
            Bytes::from_static(b"payload bytes"),
        ),
        PacketRecord::tcp(
            Timestamp::from_micros(222),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(128, 0, 0, 2),
            443,
            55555,
            TcpFlags::SYN_ACK,
        ),
        PacketRecord::icmp(
            Timestamp::from_micros(333),
            Ipv4Addr::new(10, 0, 0, 3),
            Ipv4Addr::new(128, 0, 0, 3),
            IcmpKind::TtlExceeded,
        ),
        PacketRecord::udp(
            Timestamp::from_micros(444),
            Ipv4Addr::new(10, 0, 0, 4),
            Ipv4Addr::new(128, 0, 0, 4),
            443,
            2,
            Bytes::new(),
        ),
    ]
}

/// Byte offsets (into the serialized capture) at which each record ends.
/// A cut exactly here is a clean end of stream; anywhere else is not.
fn record_boundaries(records: &[PacketRecord]) -> Vec<usize> {
    let mut boundaries = vec![8]; // after the file header
    for record in records {
        let one = to_bytes(std::slice::from_ref(record)).unwrap();
        boundaries.push(boundaries.last().unwrap() + (one.len() - 8));
    }
    boundaries
}

fn decode_zero(bytes: &[u8]) -> Result<Vec<PacketRecord>, CaptureError> {
    ZeroCopyCaptureReader::from_bytes(bytes.to_vec())?.read_to_end()
}

#[test]
fn truncation_at_every_byte_offset_is_detected_by_both_readers() {
    let records = samples();
    let bytes = to_bytes(&records).unwrap();
    let boundaries = record_boundaries(&records);
    assert_eq!(*boundaries.last().unwrap(), bytes.len());

    for cut in 0..=bytes.len() {
        let cut_bytes = &bytes[..cut];
        let legacy = from_bytes(cut_bytes);
        let zero = decode_zero(cut_bytes);
        if let Some(complete) = boundaries.iter().position(|&b| b == cut) {
            // Clean prefix: both readers decode exactly the records
            // that fit.
            let want = &records[..complete];
            assert_eq!(
                legacy.as_deref().expect("legacy reader, boundary cut"),
                want,
                "legacy reader at boundary {cut}"
            );
            assert_eq!(
                zero.as_deref().expect("zero-copy reader, boundary cut"),
                want,
                "zero-copy reader at boundary {cut}"
            );
        } else {
            // Mid-header or mid-record: both readers must say so.
            assert!(
                matches!(legacy, Err(CaptureError::Truncated)),
                "legacy reader must report the cut at byte {cut}, got {legacy:?}"
            );
            assert!(
                matches!(zero, Err(CaptureError::Truncated)),
                "zero-copy reader must report the cut at byte {cut}, got {zero:?}"
            );
        }
    }
}

/// The specific pre-fix bug: 1–7 trailing bytes of a timestamp were
/// swallowed as a clean end of stream, silently dropping data.
#[test]
fn mid_timestamp_truncation_is_not_a_clean_eof() {
    let records = samples();
    let bytes = to_bytes(&records).unwrap();
    let boundaries = record_boundaries(&records);
    // Cut inside the timestamp of every record in turn.
    for &boundary in &boundaries[..boundaries.len() - 1] {
        for extra in 1..8 {
            let cut = boundary + extra;
            let legacy = from_bytes(&bytes[..cut]);
            assert!(
                matches!(legacy, Err(CaptureError::Truncated)),
                "cut {extra} bytes into a timestamp (offset {cut}) must be \
                 Truncated, got {legacy:?}"
            );
            let zero = decode_zero(&bytes[..cut]);
            assert!(
                matches!(zero, Err(CaptureError::Truncated)),
                "zero-copy decoder at offset {cut}: got {zero:?}"
            );
        }
    }
}

/// Records decoded *before* the cut are still delivered by the
/// streaming interface, so a consumer sees the valid prefix and then
/// the typed error — not a silently shortened capture.
#[test]
fn valid_prefix_is_delivered_before_the_truncation_error() {
    let records = samples();
    let bytes = to_bytes(&records).unwrap();
    let boundaries = record_boundaries(&records);
    let cut = boundaries[2] + 3; // inside the third record
    let mut legacy = quicsand_net::capture::CaptureReader::new(&bytes[..cut]).unwrap();
    let mut zero = ZeroCopyCaptureReader::from_bytes(bytes[..cut].to_vec()).unwrap();
    for want in &records[..2] {
        assert_eq!(legacy.next().unwrap().unwrap(), *want);
        assert_eq!(zero.read_record().unwrap().unwrap(), *want);
    }
    assert!(matches!(legacy.next(), Some(Err(CaptureError::Truncated))));
    assert!(matches!(zero.read_record(), Err(CaptureError::Truncated)));
}
