//! Event-stream determinism and the forensic replay contract.
//!
//! The typed event stream is a *product* of the run, so it obeys the
//! same online ≡ offline discipline as the alerts themselves: the
//! record-tied subsequence is byte-identical at any shard count, the
//! alert lifecycle agrees on everything the paper counts (attack
//! measures, per-victim order, the converged multi-vector verdict),
//! and the whole stream survives a mid-run JSON checkpoint/restore
//! byte for byte. And every closed QUIC alert's exported qlog slice
//! must be self-contained — feeding it back through a fresh detector
//! reproduces the same attack and multi-vector verdict.

use quicsand_events::{Event, VecSubscriber};
use quicsand_live::{parse_slice_qlog, replay_slice, LiveConfig, LiveEngine, LiveSnapshot};
use quicsand_net::PacketRecord;
use quicsand_sessions::SessionConfig;
use quicsand_telescope::GuardConfig;
use quicsand_traffic::{Scenario, ScenarioConfig};

/// The deterministic fig06-style scenario trace (capture order).
fn scenario_records() -> Vec<PacketRecord> {
    Scenario::generate(&ScenarioConfig::test()).records
}

/// Live configuration mirroring the batch pipeline's skew convention.
fn live_config(guard: &GuardConfig) -> LiveConfig {
    LiveConfig {
        session: SessionConfig {
            skew_tolerance: guard.reorder_tolerance,
            ..SessionConfig::default()
        },
        ..LiveConfig::default()
    }
}

/// Streams the trace through a fresh engine, collecting every typed
/// event in merged (record-index) order.
fn collect_events(
    records: &[PacketRecord],
    guard: GuardConfig,
    config: LiveConfig,
    shards: usize,
    chunk: usize,
) -> VecSubscriber {
    let mut engine = LiveEngine::new(config, guard, shards);
    let mut subscriber = VecSubscriber::new();
    for part in records.chunks(chunk) {
        let _ = engine.offer_chunk_with(part, &mut subscriber);
    }
    let _ = engine.finish_with(&mut subscriber);
    subscriber
}

/// Counts events in a collection whose qlog name matches `name`.
fn count(subscriber: &VecSubscriber, name: &str) -> usize {
    subscriber
        .events
        .iter()
        .filter(|(_, e)| e.name() == name)
        .count()
}

/// The lifecycle subsequence (events with no record index), in
/// stream order.
fn lifecycle(subscriber: &VecSubscriber) -> Vec<Event> {
    subscriber
        .events
        .iter()
        .filter(|(meta, _)| meta.record_index.is_none())
        .map(|(_, e)| e.clone())
        .collect()
}

/// The attack-core of a close: every field except the
/// verdict-so-far (`class` / `overlap_share` / `gap_secs`), which is
/// legitimately sweep-cadence-dependent and converges via
/// reclassification.
fn close_core(e: &quicsand_events::AlertClosed) -> String {
    format!(
        "{} {} at={:?} start={:?} packets={} max_pps={:?} evicted={}",
        e.victim, e.protocol, e.at, e.start, e.packet_count, e.max_pps, e.evicted
    )
}

/// Asserts the honest lifecycle contract between two runs of the same
/// trace at different sweep cadences (shard count or chunk size):
/// open/escalate payloads match payload for payload, every close
/// agrees on its attack-core, the open/escalate/close skeleton
/// unfolds per `(victim, protocol)` in the same order, and the final
/// multi-vector verdict per `(victim, protocol)` converges to the
/// same answer. Only the verdict-so-far carried *on* a close — and
/// the reclassify traffic that converges it — may differ, because
/// idle sweeps ride each shard's local watermark and can close an
/// alert before or after a correlated flood lands.
fn assert_lifecycle_equivalent(run: &[Event], baseline: &[Event], label: &str) {
    let payload_multiset = |events: &[Event]| {
        let mut all: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                Event::AlertOpened(e) => Some(format!("{e:?}")),
                Event::AlertEscalated(e) => Some(format!("{e:?}")),
                _ => None,
            })
            .collect();
        all.sort();
        all
    };
    assert_eq!(
        payload_multiset(run),
        payload_multiset(baseline),
        "open/escalate payloads diverged at {label}"
    );

    let close_multiset = |events: &[Event]| {
        let mut all: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                Event::AlertClosed(e) => Some(close_core(e)),
                _ => None,
            })
            .collect();
        all.sort();
        all
    };
    assert_eq!(
        close_multiset(run),
        close_multiset(baseline),
        "close attack-cores diverged at {label}"
    );

    // The open/escalate/close skeleton per (victim, protocol), in
    // stream order, reclassifies excluded.
    let per_victim = |events: &[Event]| {
        let mut by_victim: std::collections::BTreeMap<_, Vec<String>> =
            std::collections::BTreeMap::new();
        for event in events {
            let (key, step) = match event {
                Event::AlertOpened(e) => ((e.victim, e.protocol.clone()), format!("{e:?}")),
                Event::AlertEscalated(e) => ((e.victim, e.protocol.clone()), format!("{e:?}")),
                Event::AlertClosed(e) => ((e.victim, e.protocol.clone()), close_core(e)),
                _ => continue,
            };
            by_victim.entry(key).or_default().push(step);
        }
        by_victim
    };
    assert_eq!(
        per_victim(run),
        per_victim(baseline),
        "per-victim lifecycle order diverged at {label}"
    );

    // The verdict each (victim, protocol) settles on — the last
    // close-or-reclassify in stream order — must converge.
    let final_verdict = |events: &[Event]| {
        let mut verdicts: std::collections::BTreeMap<_, String> = std::collections::BTreeMap::new();
        for event in events {
            let (key, verdict) = match event {
                Event::AlertClosed(e) => (
                    (e.victim, e.protocol.clone()),
                    format!("{:?} {:?} {:?}", e.class, e.overlap_share, e.gap_secs),
                ),
                Event::AlertReclassified(e) => (
                    (e.victim, e.protocol.clone()),
                    format!("{:?} {:?} {:?}", e.class, e.overlap_share, e.gap_secs),
                ),
                _ => continue,
            };
            verdicts.insert(key, verdict);
        }
        verdicts
    };
    assert_eq!(
        final_verdict(run),
        final_verdict(baseline),
        "converged verdicts diverged at {label}"
    );
}

/// Shard count is pure parallelism for everything the paper counts:
/// the record-tied subsequence is byte-identical (merged by absolute
/// record index), and the alert lifecycle satisfies
/// `assert_lifecycle_equivalent` — same opens/escalates, same close
/// attack-cores, same per-victim order, same converged verdicts.
#[test]
fn event_stream_is_shard_invariant_in_payload_and_per_victim_order() {
    let mut records = scenario_records();
    records.truncate(40_000);
    let guard = GuardConfig::default();
    let config = live_config(&guard);

    let baseline = collect_events(&records, guard, config, 1, 1024);
    // The live path emits dissect rejections and the full alert
    // lifecycle (session open/widen/expire events are an analyze-path
    // product); all of them must be present for the test to bite.
    assert!(
        count(&baseline, "quicsand:alert_opened") > 0
            && count(&baseline, "quicsand:alert_closed") > 0
            && count(&baseline, "quicsand:alert_reclassified") > 0
            && count(&baseline, "quicsand:wire_rejected") > 0,
        "trace must exercise the wire and alert lifecycles for the \
         test to mean anything"
    );

    let record_tied = |s: &VecSubscriber| -> Vec<(quicsand_events::EventMeta, Event)> {
        s.events
            .iter()
            .filter(|(meta, _)| meta.record_index.is_some())
            .cloned()
            .collect()
    };
    let baseline_records = record_tied(&baseline);
    let baseline_lifecycle = lifecycle(&baseline);

    for shards in [2usize, 8] {
        let run = collect_events(&records, guard, config, shards, 1024);
        assert_eq!(
            record_tied(&run),
            baseline_records,
            "record-tied stream diverged at shards={shards}"
        );
        assert_lifecycle_equivalent(
            &lifecycle(&run),
            &baseline_lifecycle,
            &format!("shards={shards}"),
        );
    }
}

/// Chunk size moves sweep cadence exactly like shard count does
/// (idle sweeps run at chunk boundaries): the record-tied
/// subsequence is byte-identical at any chunk size, and the
/// lifecycle satisfies the same equivalence contract.
#[test]
fn record_and_lifecycle_projections_are_chunk_invariant() {
    let mut records = scenario_records();
    records.truncate(40_000);
    let guard = GuardConfig::default();
    let config = live_config(&guard);

    let record_tied = |subscriber: &VecSubscriber| -> Vec<(quicsand_events::EventMeta, Event)> {
        subscriber
            .events
            .iter()
            .filter(|(meta, _)| meta.record_index.is_some())
            .cloned()
            .collect()
    };

    let baseline = collect_events(&records, guard, config, 2, 1024);
    let baseline_records = record_tied(&baseline);
    let baseline_lifecycle = lifecycle(&baseline);
    assert!(!baseline_records.is_empty() && !baseline_lifecycle.is_empty());
    for chunk in [7usize, 4096, usize::MAX] {
        let run = collect_events(&records, guard, config, 2, chunk);
        assert_eq!(
            record_tied(&run),
            baseline_records,
            "record-tied events diverged at chunk={chunk}"
        );
        assert_lifecycle_equivalent(
            &lifecycle(&run),
            &baseline_lifecycle,
            &format!("chunk={chunk}"),
        );
    }
}

#[test]
fn event_stream_survives_mid_run_checkpoint_restore() {
    let mut records = scenario_records();
    records.truncate(40_000);
    let guard = GuardConfig::default();
    let config = live_config(&guard);

    let straight = collect_events(&records, guard, config, 2, 1024);

    // Same stream, but the engine is serialized to JSON, dropped, and
    // rebuilt from the parsed snapshot every 15k records. Record
    // indices are absolute (the restored engine resumes its offered
    // count), so the merged event order must not move.
    let mut engine = LiveEngine::new(config, guard, 2);
    let mut subscriber = VecSubscriber::new();
    let mut since = 0usize;
    for part in records.chunks(1024) {
        let _ = engine.offer_chunk_with(part, &mut subscriber);
        since += part.len();
        if since >= 15_000 {
            since = 0;
            let json = serde_json::to_string(&engine.snapshot()).expect("snapshot serializes");
            let parsed: LiveSnapshot = serde_json::from_str(&json).expect("snapshot parses");
            engine = LiveEngine::restore(&parsed);
        }
    }
    let _ = engine.finish_with(&mut subscriber);

    assert_eq!(
        subscriber.events, straight.events,
        "event stream diverged across checkpoint/restore"
    );
    // Each close fires exactly once even though the detector's open
    // alerts crossed a restore boundary.
    let closes = subscriber
        .events
        .iter()
        .filter(|(_, e)| matches!(e, Event::AlertClosed(_)))
        .count();
    assert_eq!(closes, count(&straight, "quicsand:alert_closed"));
}

/// The replay contract: every closed QUIC alert in the trace exports
/// as a qlog slice that round-trips (bytes → parse → replay) back to
/// the same attack and `classify_multivector` verdict.
#[test]
fn every_closed_alert_replays_from_its_exported_slice() {
    let mut records = scenario_records();
    records.truncate(60_000);
    let guard = GuardConfig::default();
    let config = live_config(&guard);
    let mut engine = LiveEngine::new(config, guard, 2);
    for part in records.chunks(4096) {
        let _ = engine.offer_chunk(part);
    }
    let _ = engine.finish();

    let slices = engine.alert_slices();
    assert!(
        !slices.is_empty(),
        "trace must close at least one QUIC alert"
    );
    for slice in &slices {
        let bytes = slice
            .to_qlog()
            .unwrap_or_else(|e| panic!("slice #{} export failed: {e}", slice.alert_index));
        let (parsed, packets) = parse_slice_qlog(&bytes)
            .unwrap_or_else(|e| panic!("slice #{} parse failed: {e}", slice.alert_index));
        assert_eq!(&parsed, slice, "slice #{} round trip", slice.alert_index);
        let outcome = replay_slice(&parsed, &packets).unwrap_or_else(|e| {
            panic!(
                "replay contract violated for slice #{} (victim {}): {e}",
                slice.alert_index, slice.victim
            )
        });
        assert_eq!(outcome.class, slice.class, "slice #{}", slice.alert_index);
        assert_eq!(
            outcome.overlap_share, slice.overlap_share,
            "slice #{}",
            slice.alert_index
        );
        assert_eq!(
            outcome.gap_secs, slice.gap_secs,
            "slice #{}",
            slice.alert_index
        );
    }
}
