#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint.
#
#   scripts/ci.sh           # everything (what a PR must pass)
#   scripts/ci.sh --quick   # skip the release build, run debug tests only
#
# The repo vendors all third-party dependencies (vendor/), so this runs
# without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all --check

if [[ $quick -eq 0 ]]; then
  echo "==> cargo build --release --workspace"
  cargo build --release --workspace
  echo "==> cargo test -q --release --workspace"
  cargo test -q --release --workspace
else
  echo "==> cargo test -q --workspace"
  cargo test -q --workspace
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
