#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint.
#
#   scripts/ci.sh              # everything (what a PR must pass)
#   scripts/ci.sh --quick      # skip the release build, run debug tests only
#   scripts/ci.sh bench-smoke  # only the benchmark-regression gate
#   scripts/ci.sh scale-smoke  # only the medium-tier streaming ladder gate
#   scripts/ci.sh scale-smoke-large
#                              # opt-in large tier (10M records); no-op
#                              # unless QUICSAND_BENCH_SCALE=large
#   scripts/ci.sh events-smoke # only the qlog export + forensic replay gate
#   scripts/ci.sh scenario-smoke
#                              # only the post-2021 scenario-tier gate
#
# The repo vendors all third-party dependencies (vendor/), so this runs
# without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

bench_smoke() {
  # Benchmark-regression gate: run the two bench binaries on the small
  # deterministic workload, validate the schema of the fresh
  # BENCH_*.json reports, and compare them against the committed
  # baselines (default tolerance 20%; QUICSAND_BENCH_TOLERANCE
  # overrides, QUICSAND_BENCH_SKIP_COMPARE=1 validates schema only —
  # for hosts not comparable to the baseline machine).
  echo "==> bench-smoke: BENCH_*.json regression gate"
  local bench_dir
  bench_dir="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "rm -rf '$bench_dir'" RETURN
  for bench in shard_scaling live_throughput multi_source; do
    # shard_scaling additionally carries an absolute ingest-stage floor
    # (records / median ingest walltime at 1 thread): the zero-copy
    # decode path must stay >= 3x the pre-zero-copy baseline of ~785k
    # rec/s, regardless of the relative tolerance.
    floor_args=()
    [[ "$bench" == "shard_scaling" ]] && floor_args=(--ingest-floor-rps 2360000)
    # The multi_source report comes from the multi_source_throughput
    # bin (4-source/1-shard reference configuration).
    bin="$bench"
    [[ "$bench" == "multi_source" ]] && bin="multi_source_throughput"
    # Up to 3 attempts: on a shared single-core runner one run can be
    # inflated severalfold by unrelated load, so a gate failure is only
    # real if no attempt passes.
    attempts=3
    for attempt in $(seq 1 $attempts); do
      QUICSAND_SCALE=test QUICSAND_BENCH_DIR="$bench_dir" \
        cargo run -q --release -p quicsand-bench --bin "$bin" >/dev/null
      cargo run -q --release -p quicsand-bench --bin bench_compare -- \
        --validate "BENCH_$bench.json" "$bench_dir/BENCH_$bench.json"
      if [[ "${QUICSAND_BENCH_SKIP_COMPARE:-0}" == "1" ]]; then
        break
      fi
      if cargo run -q --release -p quicsand-bench --bin bench_compare -- \
        --baseline "BENCH_$bench.json" --current "$bench_dir/BENCH_$bench.json" \
        "${floor_args[@]}"; then
        break
      elif [[ "$attempt" -eq "$attempts" ]]; then
        echo "bench-smoke: $bench failed the gate on all $attempts attempts" >&2
        exit 1
      else
        echo "bench-smoke: $bench attempt $attempt failed; retrying (noisy runner?)" >&2
      fi
    done
  done
  echo "bench-smoke: baselines validated, no regression beyond tolerance — OK"
}

scale_tier() {
  # Streaming scale-ladder gate at one tier (records generated lazily —
  # the trace is never materialized, so memory stays constant) through
  # multi_source_throughput and shard_scaling. The multi-source run
  # additionally asserts the fan-in tax: 4-source wall time must stay
  # within 1.5x of single-source. Fresh per-tier reports are
  # schema-validated and gated against the committed
  # BENCH_<name>@<tier>.json baselines (same tolerance/skip knobs as
  # bench-smoke).
  local tier="$1" label="$2"
  echo "==> scale-smoke: $tier-tier streaming ladder ($label)"
  local scale_dir
  scale_dir="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "rm -rf '$scale_dir'" RETURN
  for bench in multi_source shard_scaling; do
    bin="$bench"
    [[ "$bench" == "multi_source" ]] && bin="multi_source_throughput"
    ratio_env=()
    [[ "$bench" == "multi_source" ]] && ratio_env=(QUICSAND_MULTI_RATIO_MAX=1.5)
    attempts=3
    for attempt in $(seq 1 $attempts); do
      # The ratio assertion lives inside the bin, so a noisy-runner
      # violation also lands in the retry loop instead of hard-failing.
      if ! env "${ratio_env[@]}" QUICSAND_BENCH_SCALE="$tier" \
        QUICSAND_BENCH_DIR="$scale_dir" \
        cargo run -q --release -p quicsand-bench --bin "$bin" >/dev/null; then
        if [[ "$attempt" -eq "$attempts" ]]; then
          echo "scale-smoke: $bench run failed on all $attempts attempts" >&2
          exit 1
        fi
        echo "scale-smoke: $bench attempt $attempt failed; retrying (noisy runner?)" >&2
        continue
      fi
      cargo run -q --release -p quicsand-bench --bin bench_compare -- \
        --validate "BENCH_$bench@$tier.json" "$scale_dir/BENCH_$bench@$tier.json"
      if [[ "${QUICSAND_BENCH_SKIP_COMPARE:-0}" == "1" ]]; then
        break
      fi
      if cargo run -q --release -p quicsand-bench --bin bench_compare -- \
        --baseline "BENCH_$bench@$tier.json" \
        --current "$scale_dir/BENCH_$bench@$tier.json"; then
        break
      elif [[ "$attempt" -eq "$attempts" ]]; then
        echo "scale-smoke: $bench failed the gate on all $attempts attempts" >&2
        exit 1
      else
        echo "scale-smoke: $bench attempt $attempt failed; retrying (noisy runner?)" >&2
      fi
    done
  done
  echo "scale-smoke: $tier tier streamed in constant memory, fan-in ratio <= 1.5x — OK"
}

scale_smoke() {
  scale_tier medium "1M records"
}

scale_smoke_large() {
  # The large rung (10M records) is opt-in: it takes long enough that
  # it only runs when the environment explicitly asks for it.
  if [[ "${QUICSAND_BENCH_SCALE:-}" != "large" ]]; then
    echo "scale-smoke-large: skipped (set QUICSAND_BENCH_SCALE=large to opt in)"
    return 0
  fi
  scale_tier large "10M records"
}

events_smoke() {
  # Typed-event export gate: emit the qlog event stream on a reference
  # trace, validate the RFC 7464 JSON-SEQ framing, then export every
  # closed alert as a forensic slice and replay each through a fresh
  # detector (--replay hard-fails on any verdict divergence). The
  # bench lanes gate the complementary claim: the no-subscriber path
  # the bench bins run must stay within bench_compare tolerances, so
  # event emission costs nothing when nobody listens.
  echo "==> events-smoke: qlog export + forensic replay gate"
  local events_dir profile
  profile="${profile_flag---release}"
  events_dir="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "rm -rf '$events_dir'" RETURN
  cargo run -q $profile -- generate --out "$events_dir/ref.qscp" --scale test --seed 7
  events_out="$(cargo run -q $profile -- live "$events_dir/ref.qscp" \
    --shards 2 --events-out "$events_dir/ref.qlog" 2>&1)"
  echo "$events_out" | grep -qE '^events: [1-9][0-9]* event\(s\)' || {
    echo "events-smoke: live --events-out reported no events" >&2
    echo "$events_out" | tail -5 >&2
    exit 1
  }
  cargo run -q $profile -- forensics check "$events_dir/ref.qlog" \
    | grep -q 'valid qlog JSON-SEQ' || {
    echo "events-smoke: exported qlog failed framing validation" >&2
    exit 1
  }
  forensics_out="$(cargo run -q $profile -- forensics "$events_dir/ref.qscp" \
    --out "$events_dir/slices" --replay 2>&1)"
  echo "$forensics_out" | grep -qE '^forensics: [1-9][0-9]* alert slice\(s\) exported' || {
    echo "events-smoke: no alert slices exported" >&2
    echo "$forensics_out" | tail -5 >&2
    exit 1
  }
  echo "$forensics_out" | grep -qE '[1-9][0-9]* replay\(s\) verified' || {
    echo "events-smoke: replays did not verify" >&2
    echo "$forensics_out" | tail -5 >&2
    exit 1
  }
  # One slice is itself a valid JSON-SEQ document.
  first_slice="$(find "$events_dir/slices" -name 'alert-*.qlog' | sort | head -1)"
  cargo run -q $profile -- forensics check "$first_slice" >/dev/null
  echo "events-smoke: qlog framing valid, every closed alert replayed — OK"
}

scenario_smoke() {
  # Post-2021 scenario-tier gate: every ScenarioKind must generate,
  # analyze, stream shard-invariantly through the live engine, and
  # export a framing-valid qlog event stream — the CLI face of the
  # conformance suite in tests/scenarios.rs (which pins the goldens
  # and the full {1,2,8}-shard alert equivalence).
  echo "==> scenario-smoke: post-2021 scenario tier end-to-end gate"
  local scenario_dir profile kind one two
  profile="${profile_flag---release}"
  scenario_dir="$(mktemp -d)"
  # shellcheck disable=SC2064
  trap "rm -rf '$scenario_dir'" RETURN
  for kind in migration-abuse evolving-scanners version-drift retry-amplification; do
    echo "==> scenario-smoke: $kind"
    cargo run -q $profile -- generate --out "$scenario_dir/$kind.qscp" \
      --scale test --seed 7 --scenario "$kind"
    cargo run -q $profile -- analyze "$scenario_dir/$kind.qscp" \
      >"$scenario_dir/$kind.analyze"
    grep -qE '^QUIC floods: [1-9]' "$scenario_dir/$kind.analyze" || {
      echo "scenario-smoke: $kind analysis reported no QUIC floods" >&2
      tail -5 "$scenario_dir/$kind.analyze" >&2
      exit 1
    }
    one="$(cargo run -q $profile -- live "$scenario_dir/$kind.qscp" --shards 1 \
      | grep -E '^live: [0-9]+ QUIC flood')"
    two="$(cargo run -q $profile -- live "$scenario_dir/$kind.qscp" --shards 2 \
      --events-out "$scenario_dir/$kind.qlog" 2>/dev/null \
      | grep -E '^live: [0-9]+ QUIC flood')"
    [[ "$one" == "$two" ]] || {
      echo "scenario-smoke: $kind live summary diverges across shard counts" >&2
      echo "  shards=1: $one" >&2
      echo "  shards=2: $two" >&2
      exit 1
    }
    cargo run -q $profile -- forensics check "$scenario_dir/$kind.qlog" \
      | grep -q 'valid qlog JSON-SEQ' || {
      echo "scenario-smoke: $kind exported qlog failed framing validation" >&2
      exit 1
    }
  done
  echo "scenario-smoke: all 4 kinds generate, analyze, stream shard-invariantly, export valid qlog — OK"
}

if [[ "${1:-}" == "bench-smoke" ]]; then
  bench_smoke
  exit 0
fi

if [[ "${1:-}" == "scale-smoke" ]]; then
  scale_smoke
  exit 0
fi

if [[ "${1:-}" == "scale-smoke-large" ]]; then
  scale_smoke_large
  exit 0
fi

if [[ "${1:-}" == "events-smoke" ]]; then
  events_smoke
  exit 0
fi

if [[ "${1:-}" == "scenario-smoke" ]]; then
  scenario_smoke
  exit 0
fi

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all --check

if [[ $quick -eq 0 ]]; then
  echo "==> cargo build --release --workspace"
  cargo build --release --workspace
  echo "==> cargo test -q --release --workspace"
  cargo test -q --release --workspace
else
  echo "==> cargo test -q --workspace"
  cargo test -q --workspace
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (ingest crates, zero-copy strict lane)"
# The capture/dissect path is the zero-copy hot loop: a reintroduced
# clone or by-value pass is a silent perf regression, so those lints
# are hard errors here.
cargo clippy -p quicsand-net -p quicsand-dissect --all-targets -- \
  -D warnings -D clippy::redundant_clone -D clippy::needless_pass_by_value

echo "==> golden-figure regression suite"
if [[ $quick -eq 0 ]]; then
  cargo test -q --release --test golden
else
  cargo test -q --test golden
fi

echo "==> faulted-smoke: CLI under the standard fault profile"
# The pipeline must survive a seeded adversarial fault mix (exit 0) and
# visibly quarantine it (nonzero per-kind counters in the breakdown).
profile_flag=""
[[ $quick -eq 0 ]] && profile_flag="--release"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run -q $profile_flag -- generate --out "$smoke_dir/smoke.qscp" --scale test --seed 7
smoke_out="$(cargo run -q $profile_flag -- analyze "$smoke_dir/smoke.qscp" \
  --scale test --seed 7 --fault-profile standard --fault-seed 7 2>&1)"
echo "$smoke_out" | grep -E '^quarantine: ' || {
  echo "faulted-smoke: no quarantine breakdown in output" >&2
  echo "$smoke_out" >&2
  exit 1
}
quarantined="$(echo "$smoke_out" | sed -n 's/.* \([0-9][0-9]*\) quarantined$/\1/p')"
if [[ -z "$quarantined" || "$quarantined" -eq 0 ]]; then
  echo "faulted-smoke: expected nonzero quarantine count, got '${quarantined:-none}'" >&2
  exit 1
fi
echo "faulted-smoke: $quarantined records quarantined, exit 0 — OK"

echo "==> live-smoke: streaming engine over the same capture"
# The live engine must stream the capture cleanly (exit 0), emit at
# least one closed alert, and self-verify a mid-stream JSON checkpoint.
live_out="$(cargo run -q $profile_flag -- live "$smoke_dir/smoke.qscp" \
  --shards 2 --chunk 2048 --checkpoint-every 100000 2>&1)"
echo "$live_out" | grep -q ' CLOSE ' || {
  echo "live-smoke: no CLOSE alert in output" >&2
  echo "$live_out" | tail -20 >&2
  exit 1
}
echo "$live_out" | grep -E '^live: .* checkpoint\(s\) verified$' | grep -qv ' 0 checkpoint(s)' || {
  echo "live-smoke: checkpoint self-verification did not run" >&2
  echo "$live_out" | tail -5 >&2
  exit 1
}
closes="$(echo "$live_out" | grep -c ' CLOSE ')"
echo "live-smoke: $closes closed alert(s), checkpoints verified, exit 0 — OK"

echo "==> multi-source-smoke: the same capture through the multiplexer"
# Splitting the ingest across feeds must be invisible: the same capture
# plus an empty feed yields exactly the live-smoke alert count, the
# per-feed summary reports both feeds (one empty), and the v2
# checkpoint still self-verifies.
: > "$smoke_dir/empty.qscp"
multi_out="$(cargo run -q $profile_flag -- live \
  --input "$smoke_dir/smoke.qscp" --input "$smoke_dir/empty.qscp" \
  --shards 2 --chunk 2048 --checkpoint-every 100000 2>&1)"
multi_closes="$(echo "$multi_out" | grep -c ' CLOSE ')"
if [[ "$multi_closes" -ne "$closes" ]]; then
  echo "multi-source-smoke: $multi_closes closed alert(s), expected $closes" >&2
  echo "$multi_out" | tail -5 >&2
  exit 1
fi
echo "$multi_out" | grep -q '^sources: 2 feed' || {
  echo "multi-source-smoke: per-feed summary missing" >&2
  echo "$multi_out" | tail -5 >&2
  exit 1
}
echo "$multi_out" | grep -E '^live: .* checkpoint\(s\) verified$' | grep -qv ' 0 checkpoint(s)' || {
  echo "multi-source-smoke: checkpoint self-verification did not run" >&2
  echo "$multi_out" | tail -5 >&2
  exit 1
}
echo "multi-source-smoke: $multi_closes closed alert(s) across 2 feeds, checkpoints verified — OK"

echo "==> metrics-smoke: exposition + reconciliation on the same capture"
# `quicsand metrics` re-runs the pipeline with the exported counters
# verified against the stats structs (a mismatch exits nonzero), and
# the Prometheus rendering must carry the core families.
metrics_out="$(cargo run -q $profile_flag -- metrics "$smoke_dir/smoke.qscp" \
  --scale test --seed 7 --threads 2 2>/dev/null)"
for family in quicsand_ingest_records_total quicsand_detect_attacks_total \
              quicsand_sessions_opened_total quicsand_stage_walltime_micros; do
  echo "$metrics_out" | grep -q "^$family" || {
    echo "metrics-smoke: family $family missing from exposition" >&2
    exit 1
  }
done
echo "metrics-smoke: exposition complete, counters reconcile, exit 0 — OK"

events_smoke

if [[ $quick -eq 0 ]]; then
  bench_smoke
  scale_smoke
  scale_smoke_large
else
  echo "==> bench-smoke skipped (--quick)"
  echo "==> scale-smoke skipped (--quick)"
fi

echo "CI green."
