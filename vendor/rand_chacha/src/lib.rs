//! Vendored ChaCha-based RNGs for the offline build.
//!
//! Implements the real ChaCha block function (RFC 8439 quarter-rounds)
//! at 8, 12 and 20 rounds. Seeded streams are stable across runs and
//! platforms — the reproducibility contract `tests/determinism.rs`
//! checks — but are not bit-compatible with upstream `rand_chacha`
//! (nothing in the workspace requires that).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, rounds: usize, out: &mut [u32; 16]) {
    let mut state = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = state[i].wrapping_add(initial[i]);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            /// Next unread word in `buffer`; 16 = exhausted.
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                let mut out = [0u32; 16];
                chacha_block(&self.key, self.counter, $rounds, &mut out);
                self.counter = self.counter.wrapping_add(1);
                self.buffer = out;
                self.index = 0;
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name))
                    .field("counter", &self.counter)
                    .finish_non_exhaustive()
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    key[i] = u32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
                }
                $name {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let v = self.buffer[self.index];
                self.index += 1;
                v
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(4) {
                    let bytes = self.next_u32().to_le_bytes();
                    chunk.copy_from_slice(&bytes[..chunk.len()]);
                }
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds (rand's default).");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rfc8439_block_function() {
        // RFC 8439 §2.3.2 test vector (20 rounds, adapted: our nonce is
        // fixed zero and the counter is 64-bit, so check the keystream
        // structure instead: same key + counter => same block, counter
        // increments change it).
        let key = [1u32, 2, 3, 4, 5, 6, 7, 8];
        let mut a = [0u32; 16];
        let mut b = [0u32; 16];
        chacha_block(&key, 0, 20, &mut a);
        chacha_block(&key, 0, 20, &mut b);
        assert_eq!(a, b);
        chacha_block(&key, 1, 20, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn seeded_streams_reproducible() {
        let mut a = ChaCha12Rng::seed_from_u64(0xFEED);
        let mut b = ChaCha12Rng::seed_from_u64(0xFEED);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha12Rng::seed_from_u64(0xFEEE);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn bytes_match_words() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        let mut b = ChaCha12Rng::seed_from_u64(9);
        let mut bytes = [0u8; 16];
        a.fill_bytes(&mut bytes);
        let words: Vec<u32> = (0..4).map(|_| b.next_u32()).collect();
        for (i, w) in words.iter().enumerate() {
            assert_eq!(&bytes[i * 4..i * 4 + 4], &w.to_le_bytes());
        }
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha12Rng::seed_from_u64(1234);
        let mut buckets = [0u32; 16];
        for _ in 0..160_000 {
            buckets[rng.gen_range(0usize..16)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b}");
        }
    }
}
