//! Vendored `#[derive(Serialize, Deserialize)]` for the vendored serde.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote —
//! the offline build has no crates.io access). Supports the shapes the
//! workspace actually uses:
//!
//! * structs with named fields (including `#[serde(with = "module")]`
//!   field attributes), tuple structs, unit structs;
//! * enums with unit, tuple and struct variants (externally tagged,
//!   like real serde: `"Variant"` / `{"Variant": ...}`);
//! * no generics (a clear compile error is emitted if encountered).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    with: Option<String>,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes leading outer attributes, returning any
    /// `#[serde(with = "path")]` payload found among them.
    fn skip_attributes(&mut self) -> Option<String> {
        let mut with = None;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next(); // '#'
            if let Some(TokenTree::Group(group)) = self.next() {
                if with.is_none() {
                    with = extract_serde_with(group.stream());
                }
            }
        }
        with
    }

    /// Consumes `pub` / `pub(crate)` style visibility if present.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected {what}, found {other:?}")),
        }
    }
}

/// Scans an attribute body for `serde(with = "path")`.
fn extract_serde_with(stream: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            match inner.as_slice() {
                [TokenTree::Ident(key), TokenTree::Punct(eq), TokenTree::Literal(lit)]
                    if key.to_string() == "with" && eq.as_char() == '=' =>
                {
                    let text = lit.to_string();
                    Some(text.trim_matches('"').to_string())
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cursor = Cursor::new(input);
    cursor.skip_attributes();
    cursor.skip_visibility();
    let kind = cursor.expect_ident("`struct` or `enum`")?;
    let name = cursor.expect_ident("item name")?;
    if matches!(cursor.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generics (on `{name}`)"
        ));
    }
    match kind.as_str() {
        "struct" => {
            let fields = match cursor.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                other => return Err(format!("unexpected token after struct name: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match cursor.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Counts comma-separated entries at angle-bracket depth zero.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cursor.at_end() {
        let with = cursor.skip_attributes();
        if cursor.at_end() {
            break;
        }
        cursor.skip_visibility();
        let name = cursor.expect_ident("field name")?;
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&mut cursor);
        fields.push(Field { name, with });
    }
    Ok(fields)
}

/// Skips a type up to (and including) the next comma at angle depth 0.
fn skip_type(cursor: &mut Cursor) {
    let mut angle_depth = 0i32;
    while let Some(token) = cursor.peek() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                cursor.next();
                return;
            }
            _ => {}
        }
        cursor.next();
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cursor.at_end() {
        cursor.skip_attributes();
        if cursor.at_end() {
            break;
        }
        let name = cursor.expect_ident("variant name")?;
        let fields = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                cursor.next();
                Fields::Named(parse_named_fields(body)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body = g.stream();
                cursor.next();
                Fields::Tuple(count_top_level_fields(body))
            }
            _ => Fields::Unit,
        };
        // Skip to the comma separating variants (covers discriminants).
        while let Some(token) = cursor.peek() {
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                cursor.next();
                break;
            }
            cursor.next();
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

/// `entries.push(("name", <value expr>))` for one named field.
fn ser_named_field(field: &Field, access: &str) -> String {
    let name = &field.name;
    match &field.with {
        Some(path) => format!(
            "entries.push((::std::string::String::from({name:?}), \
             {path}::serialize(&{access}, ::serde::ValueSerializer).map_err(S::Error::from)?));"
        ),
        None => format!(
            "entries.push((::std::string::String::from({name:?}), \
             ::serde::to_value(&{access}).map_err(S::Error::from)?));"
        ),
    }
}

fn de_named_field(field: &Field, source: &str, context: &str) -> String {
    let name = &field.name;
    let fetch = format!(
        "{source}.get({name:?}).cloned().ok_or_else(|| \
         ::serde::Error::custom(concat!(\"missing field `\", {name:?}, \"` in \", {context:?})))?"
    );
    match &field.with {
        Some(path) => {
            format!("{name}: {path}::deserialize(::serde::ValueDeserializer::new({fetch}))?,")
        }
        None => format!("{name}: ::serde::from_value({fetch})?,"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let mut code = String::from(
                        "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                    );
                    for field in fields {
                        code.push_str(&ser_named_field(field, &format!("self.{}", field.name)));
                        code.push('\n');
                    }
                    code.push_str("serializer.collect_value(::serde::Value::Map(entries))");
                    code
                }
                Fields::Tuple(1) => {
                    "let inner = ::serde::to_value(&self.0).map_err(S::Error::from)?;\n\
                     serializer.collect_value(inner)"
                        .to_string()
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::to_value(&self.{i}).map_err(S::Error::from)?"))
                        .collect();
                    format!(
                        "serializer.collect_value(::serde::Value::Seq(::std::vec![{}]))",
                        items.join(", ")
                    )
                }
                Fields::Unit => "serializer.collect_value(::serde::Value::Null)".to_string(),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                 fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
                 -> ::std::result::Result<S::Ok, S::Error> {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serializer.collect_value(\
                         ::serde::Value::Str(::std::string::String::from({vname:?}))),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => {{\n\
                         let inner = ::serde::to_value(__f0).map_err(S::Error::from)?;\n\
                         serializer.collect_value(::serde::Value::Map(::std::vec![\
                         (::std::string::String::from({vname:?}), inner)]))\n}}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::to_value({b}).map_err(S::Error::from)?"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let inner = ::serde::Value::Seq(::std::vec![{}]);\n\
                             serializer.collect_value(::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({vname:?}), inner)]))\n}}\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for field in fields {
                            pushes.push_str(&ser_named_field(field, &field.name));
                            pushes.push('\n');
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             serializer.collect_value(::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({vname:?}), ::serde::Value::Map(entries))]))\n}}\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                 fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
                 -> ::std::result::Result<S::Ok, S::Error> {{\n\
                 match self {{\n{arms}}}\n}}\n}}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let context = format!("struct {name}");
                    let mut inits = String::new();
                    for field in fields {
                        inits.push_str(&de_named_field(field, "value", &context));
                        inits.push('\n');
                    }
                    format!(
                        "if value.as_map().is_none() {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                         concat!(\"expected map for \", {context:?})));\n}}\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})"
                    )
                }
                Fields::Tuple(1) => {
                    format!("::std::result::Result::Ok({name}(::serde::from_value(value)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "::serde::from_value(seq.get({i}).cloned().ok_or_else(|| \
                                 ::serde::Error::custom(\"tuple struct too short\"))?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let seq = value.as_seq().ok_or_else(|| \
                         ::serde::Error::custom(\"expected sequence for tuple struct\"))?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok(\
                         {name}::{vname}(::serde::from_value(inner.clone())?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::from_value(seq.get({i}).cloned().ok_or_else(|| \
                                     ::serde::Error::custom(\"variant tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let seq = inner.as_seq().ok_or_else(|| \
                             ::serde::Error::custom(\"expected sequence for tuple variant\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let context = format!("variant {name}::{vname}");
                        let mut inits = String::new();
                        for field in fields {
                            inits.push_str(&de_named_field(field, "inner", &context));
                            inits.push('\n');
                        }
                        tagged_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            let body = format!(
                "match &value {{\n\
                 ::serde::Value::Str(variant_name) => match variant_name.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown unit variant `{{other}}` for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (variant_name, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match variant_name.as_str() {{\n\
                 {tagged_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n}}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"invalid enum representation for {name}: {{}}\", other.kind()))),\n\
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
         -> ::std::result::Result<Self, D::Error> {{\n\
         let value = deserializer.take_value()?;\n\
         let result = (|| -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}})();\n\
         result.map_err(D::Error::from)\n\
         }}\n}}"
    )
}
