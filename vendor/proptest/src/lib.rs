//! Vendored minimal property-testing harness for the offline build.
//!
//! Provides the subset of the `proptest` API the workspace uses:
//! `proptest! { #[test] fn name(x in strategy, ...) { ... } }`,
//! `prop_assert!` / `prop_assert_eq!`, `any::<T>()`, integer and float
//! range strategies, tuple strategies, `collection::vec`, `option::of`,
//! and `&str`-as-regex string strategies.
//!
//! Each generated test runs a fixed number of cases (default 64,
//! override with `PROPTEST_CASES`) from a ChaCha stream seeded from the
//! test name, so failures are reproducible run-to-run.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error carried out of a failing property-test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Number of cases each property test runs (see `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

pub mod test_runner {
    use super::*;

    /// Deterministic per-test RNG.
    pub struct TestRng {
        inner: rand_chacha::ChaCha12Rng,
    }

    impl TestRng {
        /// Seed from the test name so every test has an independent but
        /// stable stream.
        pub fn deterministic(name: &str) -> Self {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            // DefaultHasher::new() is stable across runs (fixed keys).
            name.hash(&mut hasher);
            0x51C5_AB5E_u64.hash(&mut hasher);
            TestRng {
                inner: rand_chacha::ChaCha12Rng::seed_from_u64(hasher.finish()),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.inner.fill_bytes(dest)
        }
    }
}

use test_runner::TestRng;

/// A value generator. The subset of `proptest::Strategy` we need:
/// generation only, no shrinking.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

// --- Integer / float ranges -----------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

// --- any::<T>() ------------------------------------------------------------

/// Strategy producing uniformly random values of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — any value of `T`.
pub fn any<T>() -> Any<T>
where
    T: rand::StandardSample,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T> Strategy for Any<T>
where
    T: rand::StandardSample,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

// --- Tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
);

// --- Collections -----------------------------------------------------------

/// Length specification for `collection::vec`.
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end.saturating_sub(1),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `collection::vec(element, len)` — vectors whose length is drawn
    /// from `len` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.max <= self.size.min {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::*;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `option::of(inner)` — `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// --- Regex string strategy --------------------------------------------------

/// A `&str` is interpreted as a (small) regex describing strings to
/// generate. Supported syntax: literal characters, `\x` escapes,
/// character classes `[a-z0-9_]`, and `{m}` / `{m,n}` quantifiers on the
/// preceding atom. This covers the patterns used in the workspace.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();

    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                let escaped = chars.next().unwrap_or('\\');
                atoms.push((Atom::Literal(escaped), 1, 1));
            }
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                for cc in chars.by_ref() {
                    match cc {
                        ']' => break,
                        '-' => {
                            // Range: prev already pushed; next char closes it.
                            prev = prev.or(Some('-'));
                            if prev == Some('-') && class.is_empty() {
                                class.push('-');
                                prev = None;
                            } else {
                                // Mark pending range with sentinel.
                                class.push('\u{0}');
                            }
                        }
                        cc => {
                            if class.last() == Some(&'\u{0}') {
                                class.pop();
                                let lo = prev.unwrap_or(cc);
                                for r in (lo as u32)..=(cc as u32) {
                                    if let Some(ch) = char::from_u32(r) {
                                        if !class.contains(&ch) {
                                            class.push(ch);
                                        }
                                    }
                                }
                                prev = None;
                            } else {
                                class.push(cc);
                                prev = Some(cc);
                            }
                        }
                    }
                }
                if class.is_empty() {
                    class.push('?');
                }
                atoms.push((Atom::Class(class), 1, 1));
            }
            '{' => {
                // Quantifier on the previous atom.
                let mut spec = String::new();
                for cc in chars.by_ref() {
                    if cc == '}' {
                        break;
                    }
                    spec.push(cc);
                }
                let (min, max) = parse_quantifier(&spec);
                if let Some(last) = atoms.last_mut() {
                    last.1 = min;
                    last.2 = max;
                }
            }
            '.' => atoms.push((Atom::Class(('a'..='z').collect()), 1, 1)),
            c => atoms.push((Atom::Literal(c), 1, 1)),
        }
    }

    for (atom, min, max) in atoms {
        let reps = if max <= min {
            min
        } else {
            rng.gen_range(min..=max)
        };
        for _ in 0..reps {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(class) => {
                    let idx = rng.gen_range(0..class.len());
                    out.push(class[idx]);
                }
            }
        }
    }
    out
}

fn parse_quantifier(spec: &str) -> (usize, usize) {
    if let Some((lo, hi)) = spec.split_once(',') {
        let lo = lo.trim().parse().unwrap_or(0);
        let hi = hi.trim().parse().unwrap_or(lo);
        (lo, hi)
    } else {
        let n = spec.trim().parse().unwrap_or(1);
        (n, n)
    }
}

// --- Macros ----------------------------------------------------------------

/// Define property tests. Each `fn` becomes a `#[test]` running
/// [`cases()`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let __cases = $crate::cases();
                for __case in 0..__cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("property '{}' failed at case {}/{}: {}",
                               stringify!($name), __case + 1, __cases, e);
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a
/// message instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn regex_pattern_generates_expected_shape() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..100 {
            let s = generate_from_pattern("[a-z]{1,20}\\.[a-z]{2,5}", &mut rng);
            let (host, tld) = s.split_once('.').expect("dot present");
            assert!((1..=20).contains(&host.len()), "host {host:?}");
            assert!((2..=5).contains(&tld.len()), "tld {tld:?}");
            assert!(host.chars().all(|c| c.is_ascii_lowercase()));
            assert!(tld.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn deterministic_rng_reproducible() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(TestRng::deterministic("x").next_u64(), c.next_u64());
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let strat = collection::vec(any::<u8>(), 3..7);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let strat = option::of(0u8..10);
        let mut rng = TestRng::deterministic("opt");
        let values: Vec<_> = (0..200).map(|_| strat.generate(&mut rng)).collect();
        assert!(values.iter().any(|v| v.is_none()));
        assert!(values.iter().any(|v| v.is_some()));
    }

    proptest! {
        #[test]
        fn macro_smoke(a in 0u32..100, b in any::<u16>(), pair in (0u64..5, 0u8..3)) {
            prop_assert!(a < 100);
            let _ = b;
            prop_assert!(pair.0 < 5 && pair.1 < 3);
            prop_assert_eq!(a + 1, a + 1);
        }

        #[test]
        fn inclusive_ranges(len in 0u8..=32, v in 0..=10u64) {
            prop_assert!(len <= 32);
            prop_assert!(v <= 10);
        }
    }
}
