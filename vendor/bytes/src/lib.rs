//! Vendored minimal stand-in for the `bytes` crate.
//!
//! The build environment has no network access and no crates.io cache,
//! so the workspace vendors the small API surface it actually uses:
//! [`Bytes`] (a cheaply cloneable, immutable byte buffer), [`Buf`]
//! (big-endian cursor reads) and [`BufMut`] (big-endian appends).
//!
//! Semantics follow the real crate for every method provided: `get_*`
//! and `put_*` are big-endian, `get_*`/`advance`/`copy_to_bytes` panic
//! when the buffer is too short, and `Bytes::clone` is O(1).

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous byte buffer.
///
/// Internally an `Arc<[u8]>` plus a `[start, end)` window, so `clone`
/// and `slice` never copy data.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Creates `Bytes` from a static slice (copies once; the real crate
    /// borrows, but no caller relies on zero-copy statics).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::from_vec(slice.to_vec())
    }

    /// Copies `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from_vec(slice.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end: len,
        }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view without copying.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The view as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from_vec(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Read cursor over a byte source. All multi-byte reads are big-endian,
/// matching the real `bytes` crate (and the QUIC wire format).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte. Panics when empty.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Copies `dst.len()` bytes out. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copies the next `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Append-only write target. Multi-byte writes are big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.put_slice(&vec![val; cnt]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_clone_is_view() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.slice(1..3).as_slice(), &[2, 3]);
    }

    #[test]
    fn buf_reads_big_endian() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07];
        let mut buf = &data[..];
        assert_eq!(buf.get_u16(), 0x0102);
        assert_eq!(buf.get_u32(), 0x0304_0506);
        assert_eq!(buf.remaining(), 1);
        assert_eq!(buf.get_u8(), 0x07);
        assert!(!buf.has_remaining());
    }

    #[test]
    fn bufmut_writes_big_endian() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u16(0x0102);
        out.put_u8(0xff);
        out.put_slice(&[9, 9]);
        assert_eq!(out, vec![0x01, 0x02, 0xff, 9, 9]);
    }

    #[test]
    fn copy_to_bytes_advances() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let mut buf = b.clone();
        let head = buf.copy_to_bytes(2);
        assert_eq!(head.as_slice(), &[1, 2]);
        assert_eq!(buf.chunk(), &[3, 4]);
    }
}
