//! Vendored minimal stand-in for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API the workspace uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill`),
//! [`SeedableRng`] (`from_seed`, `seed_from_u64`) and
//! [`seq::SliceRandom::choose`]. Statistical quality matches the intent
//! of the original (unbiased bounded sampling via 128-bit widening
//! multiplication with rejection); bit-streams are **not** compatible
//! with upstream rand, which is fine because every consumer in this
//! workspace only relies on *self*-reproducibility of seeded runs.

#![forbid(unsafe_code)]

/// Low-level uniform bit source. Object-safe.
pub trait RngCore {
    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of real rand, folded into one trait).
pub trait StandardSample {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64, usize => next_u64,
                   isize => next_u64, u128 => next_u64, i128 => next_u64);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> StandardSample for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Marker for types [`Rng::gen_range`] can produce. Mirrors rand's
/// `SampleUniform`; its job here is purely to anchor type inference
/// (without it, `x_f64 * rng.gen_range(0.1..0.9)` is ambiguous between
/// `T = f64` and `T = &f64`).
pub trait SampleUniform {}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$( impl SampleUniform for $t {} )*};
}
impl_sample_uniform!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via widening multiply with
/// rejection (Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return <$t as StandardSample>::sample(rng);
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of any [`StandardSample`] type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Fills a byte slice with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNG constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and constructs.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence helpers (`rand::seq`).
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Uniformly picks one element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// `rand::rngs` namespace for API compatibility.
pub mod rngs {
    pub use super::SmallRng;
}

/// A small fast xorshift-based RNG (stand-in for `rngs::SmallRng`).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 step: passes statistical smoke tests, tiny state.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 8];
    fn from_seed(seed: Self::Seed) -> Self {
        SmallRng {
            state: u64::from_le_bytes(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SmallRng::seed_from_u64(9);
        let items = [1, 2, 3];
        assert!(items.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn standard_array_sampling() {
        let mut rng = SmallRng::seed_from_u64(11);
        let a: [u8; 32] = rng.gen();
        let b: [u8; 32] = rng.gen();
        assert_ne!(a, b);
    }
}
