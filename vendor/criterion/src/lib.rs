//! Vendored minimal benchmarking harness with a criterion-compatible
//! API for the offline build.
//!
//! Implements the subset the workspace benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, `Throughput`, `black_box`,
//! `criterion_group!`, `criterion_main!`.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed
//! over a few fixed-duration passes; the per-iteration median pass is
//! reported along with derived throughput. No statistics beyond that —
//! the goal is honest relative numbers (e.g. 1-shard vs 8-shard
//! pipelines), not criterion's full analysis.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier — delegates to `std::hint::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How per-iteration setup output is batched in `iter_batched`.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle.
pub struct Criterion {
    /// Target measurement time per benchmark pass.
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("QUICK_BENCH").is_ok();
        Criterion {
            measurement: if quick {
                Duration::from_millis(200)
            } else {
                Duration::from_millis(800)
            },
            warm_up: if quick {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(200)
            },
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Convenience single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function("default", f);
        group.finish();
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            per_iter: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        report(&self.name, id, &bencher, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    per_iter: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly; the return value is black-boxed.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and iteration-count calibration.
        let warm_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter_est = if calib_iters > 0 {
            warm_start.elapsed() / calib_iters as u32
        } else {
            Duration::from_nanos(1)
        };
        let target_iters = (self.measurement.as_nanos() / per_iter_est.as_nanos().max(1))
            .clamp(1, 50_000_000) as u64;

        // Measured passes: take the best of 3 to damp scheduler noise.
        let mut best = Duration::MAX;
        for _ in 0..3 {
            let start = Instant::now();
            for _ in 0..target_iters {
                black_box(routine());
            }
            let elapsed = start.elapsed() / target_iters as u32;
            if elapsed < best {
                best = elapsed;
            }
        }
        self.per_iter = best;
        self.iters = target_iters * 3;
    }

    /// Time `routine` over values produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate with a few runs.
        let mut calib_total = Duration::ZERO;
        let calib_runs = 3u32;
        for _ in 0..calib_runs {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            calib_total += start.elapsed();
        }
        let per_iter_est = calib_total / calib_runs;
        let target_iters =
            (self.measurement.as_nanos() / per_iter_est.as_nanos().max(1)).clamp(1, 10_000) as u64;

        let mut total = Duration::ZERO;
        for _ in 0..target_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.per_iter = total / target_iters as u32;
        self.iters = target_iters + calib_runs as u64;
    }
}

fn report(group: &str, id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let nanos = bencher.per_iter.as_nanos() as f64;
    let time = format_time(nanos);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if nanos > 0.0 => {
            format!("  {:.3} Melem/s", n as f64 / nanos * 1e3)
        }
        Some(Throughput::Bytes(n)) if nanos > 0.0 => {
            format!("  {:.3} MiB/s", n as f64 / nanos * 1e9 / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{group}/{id}: {time}/iter ({} iters){rate}", bencher.iters);
}

fn format_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Define a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running all the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test` runs the
            // binary without it (smoke mode — just exit cleanly).
            if !std::env::args().any(|a| a == "--bench") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
            per_iter: Duration::ZERO,
            iters: 0,
        };
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(b.iters > 0);
        assert!(b.per_iter > Duration::ZERO);
    }

    #[test]
    fn iter_batched_measures_something() {
        let mut b = Bencher {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            per_iter: Duration::ZERO,
            iters: 0,
        };
        b.iter_batched(
            || vec![1u8; 1024],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::LargeInput,
        );
        assert!(b.iters > 0);
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(12.0).contains("ns"));
        assert!(format_time(12_000.0).contains("µs"));
        assert!(format_time(12_000_000.0).contains("ms"));
        assert!(format_time(12_000_000_000.0).contains('s'));
    }
}
