//! Vendored minimal `serde_json` stand-in for the offline build.
//!
//! Serializes via the vendored `serde::Value` tree to a deterministic
//! JSON text form (maps already sorted by the serde layer), and parses
//! JSON back into a `Value` for deserialization. Only the surface the
//! workspace uses is provided: `to_string`, `to_string_pretty`,
//! `from_str`, `Result`, `Error`.

#![forbid(unsafe_code)]

use serde::{de::DeserializeOwned, Serialize, Value};
use std::fmt;

/// JSON error type.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error::new(err.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    write_value(&v, None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let v = serde::to_value(value)?;
    let mut out = String::new();
    write_value(&v, Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(serde::from_value(value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Bytes(b) => {
            // Bytes render as an array of numbers (matches how the real
            // serde_json handles `serialize_bytes` for formats without a
            // native byte type).
            let seq: Vec<Value> = b.iter().map(|&x| Value::U64(x as u64)).collect();
            write_value(&Value::Seq(seq), indent, depth, out);
        }
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_nan() || f.is_infinite() {
        // JSON has no NaN/Inf; real serde_json writes null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing `.0` so the value round-trips as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        match self.bump() {
            Some(b) if b == byte => Ok(()),
            Some(b) => Err(Error::new(format!(
                "expected '{}', found '{}' at offset {}",
                byte as char,
                b as char,
                self.pos - 1
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character '{}' at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Handle surrogate pairs for completeness.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                                .ok_or_else(|| Error::new("invalid surrogate pair"))?
                        } else {
                            char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode multibyte UTF-8 starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| Error::new("invalid float"))?;
            Ok(Value::F64(f))
        } else if text.starts_with('-') {
            let i: i64 = text.parse().map_err(|_| Error::new("invalid integer"))?;
            Ok(Value::I64(i))
        } else {
            let u: u64 = text.parse().map_err(|_| Error::new("invalid integer"))?;
            Ok(Value::U64(u))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let v: u64 = from_str(&to_string(&42u64).unwrap()).unwrap();
        assert_eq!(v, 42);
        let v: i64 = from_str(&to_string(&-7i64).unwrap()).unwrap();
        assert_eq!(v, -7);
        let v: f64 = from_str(&to_string(&1.5f64).unwrap()).unwrap();
        assert_eq!(v, 1.5);
        let v: bool = from_str(&to_string(&true).unwrap()).unwrap();
        assert!(v);
        let v: String = from_str(&to_string(&"hi \"there\"\n".to_string()).unwrap()).unwrap();
        assert_eq!(v, "hi \"there\"\n");
    }

    #[test]
    fn roundtrip_collections() {
        let xs = vec![1u64, 2, 3];
        let s = to_string(&xs).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, xs);

        let mut map = std::collections::BTreeMap::new();
        map.insert("b".to_string(), 2u64);
        map.insert("a".to_string(), 1u64);
        let s = to_string(&map).unwrap();
        assert_eq!(s, "{\"a\":1,\"b\":2}");
        let back: std::collections::BTreeMap<String, u64> = from_str(&s).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn pretty_output_indents() {
        let xs = vec![1u64, 2];
        let s = to_string_pretty(&xs).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn float_integral_keeps_point() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let r: Result<u64> = from_str("42 garbage");
        assert!(r.is_err());
    }

    #[test]
    fn parses_nested() {
        let v: Vec<Vec<u64>> = from_str("[[1],[2,3],[]]").unwrap();
        assert_eq!(v, vec![vec![1], vec![2, 3], vec![]]);
    }

    #[test]
    fn unicode_escapes() {
        let v: String = from_str("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v, "Aé");
    }
}
