//! Vendored minimal stand-in for `serde`.
//!
//! The offline build cannot fetch real serde, so this crate provides a
//! compatible *surface* over a much simpler core: every value
//! serializes into a self-describing [`Value`] tree, and serializers /
//! deserializers exchange whole `Value`s instead of driving the visitor
//! state machine. `#[derive(Serialize, Deserialize)]` comes from the
//! sibling `serde_derive` crate and targets exactly this model.
//!
//! Guarantees kept from real serde that callers rely on:
//! * derived structs/enums round-trip through `serde_json`;
//! * `#[serde(with = "module")]` field attributes work;
//! * map/set serialization is deterministic (sorted) so identical data
//!   always renders identical JSON.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::net::Ipv4Addr;

pub use serde_derive::{Deserialize, Serialize};

/// Derive-macro re-export namespace (`serde::de`, `serde::ser`).
pub mod ser {
    pub use super::{Error, Serialize, Serializer};
}

/// Deserialization half of the API surface.
pub mod de {
    pub use super::{Deserialize, Deserializer};
    /// Marker mirroring serde's `DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}

    /// Subset of serde's `de::Error` trait, blanket-implemented for
    /// every error type that can absorb the core [`super::Error`] —
    /// which `Deserializer::Error` is bound to do.
    pub trait Error: Sized {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;

        fn invalid_length(len: usize, expected: &dyn std::fmt::Display) -> Self {
            Self::custom(format!("invalid length {len}, expected {expected}"))
        }

        fn invalid_value(
            unexpected: &dyn std::fmt::Display,
            expected: &dyn std::fmt::Display,
        ) -> Self {
            Self::custom(format!("invalid value {unexpected}, expected {expected}"))
        }
    }

    impl<T: From<super::Error>> Error for T {
        fn custom<M: std::fmt::Display>(msg: M) -> Self {
            T::from(super::Error::custom(msg))
        }
    }
}

/// Self-describing value tree — the single interchange format of this
/// serde stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Raw bytes (serialized as an array of numbers in JSON).
    Bytes(Vec<u8>),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map / struct: ordered key–value pairs with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// A short type label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "u64",
            Value::I64(_) => "i64",
            Value::F64(_) => "f64",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Total order over values (floats via `total_cmp`) — used to sort
    /// unordered collections for deterministic output.
    pub fn canonical_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                U64(_) => 2,
                I64(_) => 3,
                F64(_) => 4,
                Str(_) => 5,
                Bytes(_) => 6,
                Seq(_) => 7,
                Map(_) => 8,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (U64(a), U64(b)) => a.cmp(b),
            (I64(a), I64(b)) => a.cmp(b),
            (F64(a), F64(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (Seq(a), Seq(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.canonical_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Map(a), Map(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.cmp(kb).then_with(|| va.canonical_cmp(vb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

fn type_error(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {}", got.kind()))
}

/// A type that can render itself as a [`Value`] through any
/// [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Sink for one serialized value.
pub trait Serializer: Sized {
    /// Success type.
    type Ok;
    /// Error type (must absorb core [`Error`]s).
    type Error: From<Error>;

    /// Accepts a fully built value tree.
    fn collect_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes raw bytes (used by `#[serde(with = ...)]` shims).
    fn serialize_bytes(self, bytes: &[u8]) -> Result<Self::Ok, Self::Error> {
        self.collect_value(Value::Bytes(bytes.to_vec()))
    }

    /// Serializes a string.
    fn serialize_str(self, s: &str) -> Result<Self::Ok, Self::Error> {
        self.collect_value(Value::Str(s.to_string()))
    }
}

/// Source of one value tree.
pub trait Deserializer<'de>: Sized {
    /// Error type (must absorb core [`Error`]s).
    type Error: From<Error>;

    /// Yields the underlying value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type reconstructable from a [`Value`] through any
/// [`Deserializer`]. The derive macro of the same name lives in the
/// macro namespace, exactly as in real serde.
pub trait Deserialize<'de>: Sized {
    /// Deserializes from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Serializer that materializes the [`Value`] tree itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    fn collect_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// Deserializer over an owned [`Value`] tree.
pub struct ValueDeserializer(pub Value);

impl ValueDeserializer {
    /// Wraps a value.
    pub fn new(value: Value) -> Self {
        ValueDeserializer(value)
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;
    fn take_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

/// Serializes any value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Reconstructs a value from a [`Value`] tree.
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer(value))
}

// ---------------------------------------------------------------------
// Serialize / Deserialize implementations for std types.
// ---------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.collect_value(Value::U64(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n: u64 = match &v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| D::Error::from(type_error("integer string", &v)))?,
                    other => return Err(D::Error::from(type_error("unsigned integer", other))),
                };
                <$t>::try_from(n)
                    .map_err(|_| D::Error::from(Error::custom(concat!("integer out of range for ", stringify!($t)))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    s.collect_value(Value::U64(v as u64))
                } else {
                    s.collect_value(Value::I64(v))
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n: i64 = match &v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| D::Error::from(Error::custom("integer overflow")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    Value::Str(s) => s
                        .parse()
                        .map_err(|_| D::Error::from(type_error("integer string", &v)))?,
                    other => return Err(D::Error::from(type_error("integer", other))),
                };
                <$t>::try_from(n)
                    .map_err(|_| D::Error::from(Error::custom(concat!("integer out of range for ", stringify!($t)))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.collect_value(Value::F64(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_value()? {
                    Value::F64(f) => Ok(f as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    Value::Str(s) if s == "NaN" => Ok(<$t>::NAN),
                    other => Err(D::Error::from(type_error("float", &other))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_value(Value::Bool(*self))
    }
}
impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::from(type_error("bool", &other))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}
impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}
/// Deserializing to `&'static str` is supported by interning: real
/// serde hands out borrows of the input buffer, but this stand-in's
/// value tree owns its strings, so distinct string values are leaked
/// once into a process-wide intern table (bounded by the number of
/// *distinct* strings, e.g. country codes).
impl<'de> Deserialize<'de> for &'static str {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(intern_str(s)),
            other => Err(D::Error::from(type_error("string", &other))),
        }
    }
}

fn intern_str(s: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("intern table lock");
    if let Some(existing) = set.get(s.as_str()) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.into_boxed_str());
    set.insert(leaked);
    leaked
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::from(type_error("string", &other))),
        }
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_value(Value::Str(self.to_string()))
    }
}
impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(D::Error::from(type_error("single-char string", &other))),
        }
    }
}

impl Serialize for Ipv4Addr {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_value(Value::Str(self.to_string()))
    }
}
impl<'de> Deserialize<'de> for Ipv4Addr {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match &v {
            Value::Str(s) => s
                .parse()
                .map_err(|_| D::Error::from(type_error("IPv4 address", &v))),
            other => Err(D::Error::from(type_error("IPv4 address string", other))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.collect_value(Value::Null),
            Some(v) => {
                let inner = to_value(v).map_err(S::Error::from)?;
                s.collect_value(inner)
            }
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            other => Ok(Some(from_value(other).map_err(D::Error::from)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}
impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(to_value(item).map_err(S::Error::from)?);
        }
        s.collect_value(Value::Seq(items))
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(D::Error::from))
                .collect(),
            Value::Bytes(bytes) => bytes
                .into_iter()
                .map(|b| from_value(Value::U64(b as u64)).map_err(D::Error::from))
                .collect(),
            other => Err(D::Error::from(type_error("sequence", &other))),
        }
    }
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(d)?;
        items
            .try_into()
            .map_err(|_| D::Error::from(Error::custom("wrong array length")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(to_value(&self.$idx).map_err(S::Error::from)?),+];
                s.collect_value(Value::Seq(items))
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                match d.take_value()? {
                    Value::Seq(items) => {
                        let mut it = items.into_iter();
                        Ok(($({
                            let _ = $idx;
                            let item = it
                                .next()
                                .ok_or_else(|| __D::Error::from(Error::custom("tuple too short")))?;
                            from_value::<$name>(item).map_err(__D::Error::from)?
                        },)+))
                    }
                    other => Err(__D::Error::from(type_error("tuple sequence", &other))),
                }
            }
        }
    )+};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Turns a serialized key value into a deterministic string key.
fn key_to_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        Value::F64(f) => Ok(f.to_string()),
        other => Err(Error::custom(format!(
            "map key must be scalar, got {}",
            other.kind()
        ))),
    }
}

fn serialize_map_entries<'a, K, V, I, S>(iter: I, s: S) -> Result<S::Ok, S::Error>
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
    S: Serializer,
{
    let mut entries: Vec<(String, Value)> = Vec::new();
    for (k, v) in iter {
        let key = key_to_string(&to_value(k).map_err(S::Error::from)?).map_err(S::Error::from)?;
        entries.push((key, to_value(v).map_err(S::Error::from)?));
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    s.collect_value(Value::Map(entries))
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_map_entries(self.iter(), s)
    }
}
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_map_entries(self.iter(), s)
    }
}

fn deserialize_map_entries<'de, K, V, D>(d: D) -> Result<Vec<(K, V)>, D::Error>
where
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    D: Deserializer<'de>,
{
    match d.take_value()? {
        Value::Map(entries) => entries
            .into_iter()
            .map(|(k, v)| {
                let key = from_value::<K>(Value::Str(k)).map_err(D::Error::from)?;
                let value = from_value::<V>(v).map_err(D::Error::from)?;
                Ok((key, value))
            })
            .collect(),
        other => Err(D::Error::from(type_error("map", &other))),
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(deserialize_map_entries::<K, V, D>(d)?.into_iter().collect())
    }
}
impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(deserialize_map_entries::<K, V, D>(d)?.into_iter().collect())
    }
}

fn serialize_set_entries<'a, T, I, S>(iter: I, s: S) -> Result<S::Ok, S::Error>
where
    T: Serialize + 'a,
    I: Iterator<Item = &'a T>,
    S: Serializer,
{
    let mut items: Vec<Value> = Vec::new();
    for item in iter {
        items.push(to_value(item).map_err(S::Error::from)?);
    }
    items.sort_by(|a, b| a.canonical_cmp(b));
    s.collect_value(Value::Seq(items))
}

impl<T: Serialize, H> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_set_entries(self.iter(), s)
    }
}
impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_set_entries(self.iter(), s)
    }
}
impl<'de, T, H> Deserialize<'de> for HashSet<T, H>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_iter().collect())
    }
}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_value(self.clone())
    }
}
impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_value(Value::Null)
    }
}
impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let _ = d.take_value()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(from_value::<u64>(to_value(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_value::<i32>(to_value(&-7i32).unwrap()).unwrap(), -7);
        assert!(from_value::<bool>(to_value(&true).unwrap()).unwrap());
        let s: String = from_value(to_value("hi").unwrap()).unwrap();
        assert_eq!(s, "hi");
        let ip: Ipv4Addr = from_value(to_value(&Ipv4Addr::new(10, 0, 0, 1)).unwrap()).unwrap();
        assert_eq!(ip, Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(from_value::<Vec<u64>>(to_value(&v).unwrap()).unwrap(), v);

        let mut m = HashMap::new();
        m.insert(42u64, 7u64);
        m.insert(1u64, 9u64);
        let back: HashMap<u64, u64> = from_value(to_value(&m).unwrap()).unwrap();
        assert_eq!(back, m);

        let t = (1u32, "x".to_string());
        let back: (u32, String) = from_value(to_value(&t).unwrap()).unwrap();
        assert_eq!(back, t);

        let o: Option<u8> = None;
        assert_eq!(from_value::<Option<u8>>(to_value(&o).unwrap()).unwrap(), o);
    }

    #[test]
    fn map_serialization_is_sorted() {
        let mut m = HashMap::new();
        for i in 0..20u64 {
            m.insert(i, i);
        }
        let a = to_value(&m).unwrap();
        let b = to_value(&m.clone()).unwrap();
        assert_eq!(a, b);
        if let Value::Map(entries) = &a {
            let keys: Vec<&String> = entries.iter().map(|(k, _)| k).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted);
        } else {
            panic!("expected map");
        }
    }
}
