//! Vendored minimal `parking_lot`-compatible wrappers for the offline
//! build. Backed by `std::sync` primitives; the parking_lot API
//! difference that matters to callers is preserved: `lock()` / `read()`
//! / `write()` return guards directly (no `Result`, poisoning is
//! ignored by taking the inner value from a poisoned lock).

#![forbid(unsafe_code)]

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
