//! Vendored minimal `crossbeam` shim for the offline build.
//!
//! Only the scoped-thread API the workspace uses is provided, layered
//! over `std::thread::scope` (stable since Rust 1.63). The signatures
//! mirror crossbeam 0.8: `thread::scope` returns a
//! `thread::Result<R>`, and `ScopedJoinHandle::join` returns a
//! `Result` so call sites port directly to/from the real crate.

#![forbid(unsafe_code)]

pub mod thread {
    use std::any::Any;

    /// Result of a scope or join: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to a thread spawned inside a [`scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam 0.8, the closure
        /// receives the scope again so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowing, non-'static threads may
    /// be spawned; all are joined before `scope` returns.
    ///
    /// Unlike `std::thread::scope`, a panic in a spawned thread is
    /// reported through the returned `Result` (crossbeam semantics)
    /// rather than resuming the unwind — callers decide.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = thread::scope(|s| s.spawn(|_| panic!("boom")).join().is_err());
        assert!(r.unwrap());
    }
}
