//! Seeded source-level fault injection: feeds that die mid-stream.
//!
//! The record-level injectors in the crate root malform *records*; this
//! module malforms the *transport*. A [`FlakyFactory`] wraps any
//! [`SourceFactory`] and makes each opened session fail (an injected
//! `ConnectionReset`) once it crosses the next planned absolute stream
//! position. Fail positions are seeded, sorted, and strictly
//! increasing, so:
//!
//! * every reconnect makes forward progress past the previous death
//!   point (the multiplexer's no-progress abandonment never triggers),
//! * the failure budget is finite — after the last planned position the
//!   feed runs to EOF, and
//! * the whole schedule is a pure function of `(seed, failures, span)`,
//!   reproducible run to run.
//!
//! Because the multiplexer resumes a reopened feed past the records it
//! already delivered, a flaky feed delivers exactly the same record
//! sequence as an unbroken one — the equivalence
//! `tests/multi_source.rs` proves end to end.

use quicsand_net::capture::CaptureError;
use quicsand_net::multi::{DynSource, SourceFactory};
use quicsand_net::{PacketRecord, StreamSource};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

/// A seeded schedule of absolute stream positions at which a feed dies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlakyPlan {
    points: Vec<u64>,
}

impl FlakyPlan {
    /// Plans `failures` distinct death positions within `1..span`
    /// (positions past the stream's end simply never fire).
    pub fn new(seed: u64, failures: u32, span: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED_F10D);
        let mut points = BTreeSet::new();
        let span = span.max(2);
        while points.len() < failures as usize && (points.len() as u64) < span - 1 {
            points.insert(rng.gen_range(1..span));
        }
        FlakyPlan {
            points: points.into_iter().collect(),
        }
    }

    /// The planned death positions, ascending.
    pub fn points(&self) -> &[u64] {
        &self.points
    }
}

/// Wraps a factory so the `k`-th opened session dies at the plan's
/// `k`-th position; sessions beyond the plan run undisturbed.
pub struct FlakyFactory<F> {
    inner: F,
    plan: FlakyPlan,
    opens: usize,
}

impl<F: SourceFactory> FlakyFactory<F> {
    /// Couples `inner` to a failure `plan`.
    pub fn new(inner: F, plan: FlakyPlan) -> Self {
        FlakyFactory {
            inner,
            plan,
            opens: 0,
        }
    }

    /// Sessions opened so far (1 + reconnects observed).
    pub fn opens(&self) -> usize {
        self.opens
    }
}

impl<F: SourceFactory> SourceFactory for FlakyFactory<F> {
    fn open(&mut self) -> Result<DynSource, CaptureError> {
        let fail_at = self.plan.points.get(self.opens).copied();
        self.opens += 1;
        let inner = self.inner.open()?;
        Ok(Box::new(FlakySource {
            inner,
            fail_at,
            position: 0,
            dead: false,
        }))
    }
}

/// A session that reports an injected I/O failure when it reaches its
/// planned absolute position, then stays dead.
struct FlakySource {
    inner: DynSource,
    fail_at: Option<u64>,
    position: u64,
    dead: bool,
}

impl StreamSource for FlakySource {
    fn next_record(&mut self) -> Option<Result<PacketRecord, CaptureError>> {
        if self.dead {
            return None;
        }
        if self.fail_at == Some(self.position) {
            self.dead = true;
            return Some(Err(CaptureError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected source failure",
            ))));
        }
        let next = self.inner.next_record();
        if matches!(next, Some(Ok(_))) {
            self.position += 1;
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_net::multi::{memory_factory, merge_records, SourceSet, SourceSetConfig};
    use quicsand_net::{TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    fn record(ts: u64) -> PacketRecord {
        PacketRecord::tcp(
            Timestamp::from_micros(ts),
            Ipv4Addr::new(10, 1, (ts >> 8) as u8, ts as u8),
            Ipv4Addr::new(192, 0, 2, 9),
            443,
            6000,
            TcpFlags::SYN_ACK,
        )
    }

    #[test]
    fn plan_is_seeded_sorted_and_strictly_increasing() {
        let plan = FlakyPlan::new(42, 5, 10_000);
        assert_eq!(plan, FlakyPlan::new(42, 5, 10_000));
        assert_ne!(plan, FlakyPlan::new(43, 5, 10_000));
        assert_eq!(plan.points().len(), 5);
        assert!(plan.points().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn flaky_source_dies_at_the_planned_position_then_stays_dead() {
        let records: Vec<_> = (0..100).map(record).collect();
        let plan = FlakyPlan {
            points: vec![7, 30],
        };
        let mut factory = FlakyFactory::new(memory_factory(records), plan);
        let mut session = factory.open().unwrap();
        for _ in 0..7 {
            assert!(matches!(session.next_record(), Some(Ok(_))));
        }
        assert!(matches!(session.next_record(), Some(Err(_))));
        assert!(session.next_record().is_none(), "stays dead");
        // The next session dies strictly later: guaranteed progress.
        let mut session = factory.open().unwrap();
        for _ in 0..30 {
            assert!(matches!(session.next_record(), Some(Ok(_))));
        }
        assert!(matches!(session.next_record(), Some(Err(_))));
        // Past the plan, sessions run clean to EOF.
        let mut session = factory.open().unwrap();
        let mut n = 0;
        while let Some(r) = session.next_record() {
            r.unwrap();
            n += 1;
        }
        assert_eq!(n, 100);
        assert_eq!(factory.opens(), 3);
    }

    #[test]
    fn flaky_feed_delivers_the_unbroken_sequence_through_a_source_set() {
        let all: Vec<_> = (0..400).map(record).collect();
        let splits = vec![
            all.iter().step_by(2).cloned().collect::<Vec<_>>(),
            all.iter().skip(1).step_by(2).cloned().collect::<Vec<_>>(),
        ];
        let reference = merge_records(&splits);
        let plan = FlakyPlan::new(7, 4, splits[0].len() as u64);
        assert!(!plan.points().is_empty());
        let factories: Vec<Box<dyn SourceFactory>> = vec![
            Box::new(FlakyFactory::new(memory_factory(splits[0].clone()), plan)),
            Box::new(memory_factory(splits[1].clone())),
        ];
        let mut set = SourceSet::spawn(factories, &SourceSetConfig::default());
        let mut merged = Vec::new();
        while let Some(r) = set.next_merged() {
            merged.push(r);
        }
        assert_eq!(merged, reference, "failures are invisible to the merge");
        let stats = set.stats();
        assert_eq!(stats[0].reconnects, 4);
        assert_eq!(stats[0].drops, 4);
        assert!(stats[0].eof && !stats[0].dead);
        assert_eq!(stats[1].reconnects, 0);
    }
}
