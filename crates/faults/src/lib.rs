//! # quicsand-faults
//!
//! Deterministic fault injection for telescope captures.
//!
//! A `/9` darknet receives hostile, protocol-violating traffic as a
//! matter of course: truncated snaplen captures, garbage version
//! fields, replayed frames, reordered batches and skewed clocks
//! (QUICsand §3; aggressive scanners routinely emit malformed probes).
//! The analysis pipeline must *degrade gracefully* under all of it —
//! and the only way to prove that is to generate such traffic on
//! demand, reproducibly.
//!
//! [`FaultPlan`] wraps any [`PacketRecord`] stream and injects a
//! seeded, configurable mix of faults. Every fault is tagged with a
//! [`FaultKind`] that maps onto exactly one quarantine counter of the
//! hardened ingest pipeline
//! ([`quicsand_telescope::QuarantineStats`]), so tests can assert not
//! just "nothing panicked" but *which defense caught each fault*:
//!
//! | [`FaultKind`]       | injected malformation                    | quarantined as |
//! |---------------------|------------------------------------------|----------------|
//! | `Truncate`          | payload cut inside the header            | `truncated` |
//! | `CorruptVersion`    | long-header version := `0xdeadbeef`      | `bad_version` |
//! | `OversizedCid`      | DCID length byte := `0xff` (> 20)        | `bad_cid` |
//! | `ZeroPayload`       | payload := empty                         | `empty_payload` |
//! | `Garbage`           | extra record of random non-QUIC bytes    | `not_quic` |
//! | `Duplicate`         | byte-identical copy appended             | `duplicate` |
//! | `Jitter`            | timestamp −δ, δ ≤ reorder tolerance      | *admitted* |
//! | `Reorder`           | timestamp −δ, tolerance < δ ≤ horizon    | `reordered` |
//! | `ClockSkew`         | timestamp −δ, δ > skew horizon           | `clock_skew` |
//!
//! The plan mirrors the ingest guard's per-source high-water
//! timestamps, so the backwards deltas it picks are computed against
//! exactly the state the guard will hold when the record arrives —
//! which is what makes [`FaultSummary::expected_quarantine`] an exact
//! oracle, not an approximation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bytes::Bytes;
use quicsand_net::{PacketRecord, Timestamp, Transport};
use quicsand_telescope::{GuardConfig, QuarantineStats};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

pub mod source;

/// The kinds of fault the injector can apply to a record stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Cut a QUIC candidate payload inside the packet header.
    Truncate,
    /// Overwrite a long-header version field with garbage.
    CorruptVersion,
    /// Overwrite the DCID length byte with an out-of-range value.
    OversizedCid,
    /// Replace the payload with a zero-length datagram.
    ZeroPayload,
    /// Insert an extra record of random non-QUIC bytes on port 443.
    Garbage,
    /// Append a byte-identical copy of the record (replay).
    Duplicate,
    /// Nudge the timestamp backwards *within* the reorder tolerance —
    /// the one fault the pipeline must *admit*, not quarantine.
    Jitter,
    /// Move the timestamp backwards past the reorder tolerance but
    /// within the skew horizon.
    Reorder,
    /// Move the timestamp backwards past the skew horizon.
    ClockSkew,
}

impl FaultKind {
    /// All kinds, in weight-vector order.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::Truncate,
        FaultKind::CorruptVersion,
        FaultKind::OversizedCid,
        FaultKind::ZeroPayload,
        FaultKind::Garbage,
        FaultKind::Duplicate,
        FaultKind::Jitter,
        FaultKind::Reorder,
        FaultKind::ClockSkew,
    ];

    /// Stable label (matches the quarantine table labels where a
    /// quarantine kind exists).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Truncate => "truncate",
            FaultKind::CorruptVersion => "corrupt-version",
            FaultKind::OversizedCid => "oversized-cid",
            FaultKind::ZeroPayload => "zero-payload",
            FaultKind::Garbage => "garbage",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Jitter => "jitter",
            FaultKind::Reorder => "reorder",
            FaultKind::ClockSkew => "clock-skew",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How often and with which mix faults are injected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability that any given input record is faulted.
    pub rate: f64,
    /// Relative weights per [`FaultKind`], in [`FaultKind::ALL`] order.
    /// All-zero weights disable injection regardless of `rate`.
    pub weights: [u32; 9],
    /// Guard thresholds the timestamp faults are calibrated against.
    /// Must match the pipeline's [`GuardConfig`] for the quarantine
    /// oracle to be exact.
    pub guard: GuardConfig,
}

impl FaultProfile {
    /// No faults at all (the identity plan).
    pub fn none() -> Self {
        FaultProfile {
            rate: 0.0,
            weights: [0; 9],
            guard: GuardConfig::default(),
        }
    }

    /// The standard CI mix: ~5 % of records faulted, every kind
    /// represented.
    pub fn standard() -> Self {
        FaultProfile {
            rate: 0.05,
            weights: [3, 2, 2, 2, 3, 3, 3, 2, 1],
            guard: GuardConfig::default(),
        }
    }

    /// A hostile mix: a quarter of all records faulted.
    pub fn aggressive() -> Self {
        FaultProfile {
            rate: 0.25,
            weights: [4, 3, 3, 3, 4, 4, 3, 3, 2],
            guard: GuardConfig::default(),
        }
    }

    /// A profile injecting only `kind`, at `rate`.
    pub fn only(kind: FaultKind, rate: f64) -> Self {
        let mut weights = [0u32; 9];
        let index = FaultKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL");
        weights[index] = 1;
        FaultProfile {
            rate,
            weights,
            guard: GuardConfig::default(),
        }
    }

    fn total_weight(&self) -> u64 {
        self.weights.iter().map(|w| u64::from(*w)).sum()
    }
}

impl FromStr for FaultProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(FaultProfile::none()),
            "standard" => Ok(FaultProfile::standard()),
            "aggressive" => Ok(FaultProfile::aggressive()),
            other => Err(format!(
                "unknown fault profile {other:?} (expected none|standard|aggressive)"
            )),
        }
    }
}

/// Per-kind injection counts — the test oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Records read from the wrapped stream.
    pub input_records: u64,
    /// Records emitted (inputs + inserted garbage/duplicates).
    pub emitted_records: u64,
    /// Injected fault counts, in [`FaultKind::ALL`] order.
    pub injected: [u64; 9],
}

impl FaultSummary {
    /// Count of faults injected for one kind.
    pub fn count(&self, kind: FaultKind) -> u64 {
        let index = FaultKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL");
        self.injected[index]
    }

    /// Total faults injected, all kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Faults the pipeline must *quarantine* (everything except
    /// tolerated jitter).
    pub fn quarantinable(&self) -> u64 {
        self.total_injected() - self.count(FaultKind::Jitter)
    }

    /// The exact additional quarantine counters a hardened pipeline
    /// (with the plan's [`GuardConfig`]) must report on the faulted
    /// stream, relative to the same pipeline over the clean stream.
    pub fn expected_quarantine(&self) -> QuarantineStats {
        QuarantineStats {
            truncated: self.count(FaultKind::Truncate),
            bad_version: self.count(FaultKind::CorruptVersion),
            bad_cid: self.count(FaultKind::OversizedCid),
            not_quic: self.count(FaultKind::Garbage),
            empty_payload: self.count(FaultKind::ZeroPayload),
            duplicate: self.count(FaultKind::Duplicate),
            reordered: self.count(FaultKind::Reorder),
            clock_skew: self.count(FaultKind::ClockSkew),
            transport_mismatch: 0,
        }
    }

    /// `(label, count)` rows for CLI/reporting.
    pub fn as_table(&self) -> [(&'static str, u64); 9] {
        let mut rows = [("", 0u64); 9];
        for (slot, (kind, count)) in rows
            .iter_mut()
            .zip(FaultKind::ALL.iter().zip(self.injected))
        {
            *slot = (kind.label(), count);
        }
        rows
    }
}

/// A seeded fault plan: deterministic given `(profile, seed)` and the
/// input stream.
#[derive(Debug)]
pub struct FaultPlan {
    profile: FaultProfile,
    seed: u64,
    rng: ChaCha8Rng,
    /// Mirror of the ingest guard's per-source high-water timestamps
    /// over the *emitted* stream (guard state advances even for
    /// quarantined records, and so does this mirror).
    src_max: HashMap<Ipv4Addr, Timestamp>,
    summary: FaultSummary,
}

impl FaultPlan {
    /// Creates a plan from a profile and seed.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultPlan {
            profile,
            seed,
            rng: ChaCha8Rng::seed_from_u64(seed),
            src_max: HashMap::new(),
            summary: FaultSummary::default(),
        }
    }

    /// The seed the plan was built with (for `--fault-seed` replay).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The profile the plan was built with.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Injection counts so far.
    pub fn summary(&self) -> &FaultSummary {
        &self.summary
    }

    /// Processes one input record into one or two output records,
    /// possibly mutated. Appends to `out`.
    pub fn corrupt_into(&mut self, record: &PacketRecord, out: &mut Vec<PacketRecord>) {
        self.summary.input_records += 1;
        let total_weight = self.profile.total_weight();
        let faulted = total_weight > 0 && self.rng.gen_bool(self.profile.rate.clamp(0.0, 1.0));
        if !faulted {
            self.emit(record.clone(), out);
            return;
        }
        let kind = self.pick_kind(total_weight);
        let kind = self.applicable_or_fallback(kind, record);
        self.apply(kind, record, out);
    }

    /// Applies the plan to a whole capture.
    pub fn apply_all(&mut self, records: &[PacketRecord]) -> Vec<PacketRecord> {
        let mut out = Vec::with_capacity(records.len() + records.len() / 8);
        for record in records {
            self.corrupt_into(record, &mut out);
        }
        out
    }

    /// Wraps a record iterator; the injector yields the faulted stream.
    pub fn wrap<I: IntoIterator<Item = PacketRecord>>(
        self,
        records: I,
    ) -> FaultInjector<I::IntoIter> {
        FaultInjector {
            plan: self,
            inner: records.into_iter(),
            queue: VecDeque::new(),
        }
    }

    fn emit(&mut self, record: PacketRecord, out: &mut Vec<PacketRecord>) {
        self.note_emitted(&record);
        out.push(record);
    }

    /// Advances the guard-state mirror for an emitted record.
    fn note_emitted(&mut self, record: &PacketRecord) {
        self.summary.emitted_records += 1;
        let slot = self.src_max.entry(record.src).or_insert(record.ts);
        if record.ts > *slot {
            *slot = record.ts;
        }
    }

    fn count(&mut self, kind: FaultKind) {
        let index = FaultKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL");
        self.summary.injected[index] += 1;
    }

    fn pick_kind(&mut self, total_weight: u64) -> FaultKind {
        let mut ticket = self.rng.gen_range(0..total_weight);
        for (kind, weight) in FaultKind::ALL.iter().zip(self.profile.weights) {
            let weight = u64::from(weight);
            if ticket < weight {
                return *kind;
            }
            ticket -= weight;
        }
        unreachable!("ticket below total weight")
    }

    /// The payload of a QUIC-candidate UDP record (exactly one port is
    /// 443 — same disjunction the port filter uses).
    fn quic_candidate_payload(record: &PacketRecord) -> Option<&Bytes> {
        match &record.transport {
            Transport::Udp {
                src_port,
                dst_port,
                payload,
            } if (*src_port == 443) != (*dst_port == 443) => Some(payload),
            _ => None,
        }
    }

    /// Checks whether `kind` can be injected on `record` such that the
    /// quarantine outcome is certain; falls back to [`FaultKind::Duplicate`]
    /// (always applicable, always quarantined) otherwise.
    fn applicable_or_fallback(&self, kind: FaultKind, record: &PacketRecord) -> FaultKind {
        let payload = Self::quic_candidate_payload(record);
        let guard = &self.profile.guard;
        let applicable = match kind {
            // Cutting to ≤ 6 bytes always yields UnexpectedEnd provided
            // the fixed bit survives (a minimal parseable packet needs
            // ≥ 7 bytes in every header form).
            FaultKind::Truncate => payload.is_some_and(|p| p.len() >= 2 && p[0] & 0x40 != 0),
            // Needs a long header (form+fixed bits) and a version field
            // that is not Negotiation (zero), so the packet's structure
            // parses identically and only the version registry lookup
            // fails.
            FaultKind::CorruptVersion => payload
                .is_some_and(|p| p.len() >= 5 && p[0] & 0xc0 == 0xc0 && p[1..5] != [0, 0, 0, 0]),
            // Needs a long header with a DCID length byte to clobber.
            FaultKind::OversizedCid => payload.is_some_and(|p| p.len() >= 6 && p[0] & 0xc0 == 0xc0),
            FaultKind::ZeroPayload => payload.is_some_and(|p| !p.is_empty()),
            FaultKind::Garbage | FaultKind::Duplicate => true,
            FaultKind::Jitter => true,
            // Backwards moves need headroom: the source must have been
            // seen, and its watermark must sit far enough from zero for
            // the delta to exist.
            FaultKind::Reorder => self
                .src_max
                .get(&record.src)
                .is_some_and(|max| max.as_micros() > guard.reorder_tolerance.as_micros() + 1),
            FaultKind::ClockSkew => self
                .src_max
                .get(&record.src)
                .is_some_and(|max| max.as_micros() > guard.skew_horizon.as_micros() + 1),
        };
        if applicable {
            kind
        } else {
            FaultKind::Duplicate
        }
    }

    fn apply(&mut self, kind: FaultKind, record: &PacketRecord, out: &mut Vec<PacketRecord>) {
        let guard = self.profile.guard;
        match kind {
            FaultKind::Truncate => {
                let payload = Self::quic_candidate_payload(record).expect("applicability");
                // Applicability guarantees len >= 2, so the upper bound
                // is always >= 1.
                let cut_max = payload.len().saturating_sub(1).clamp(1, 6);
                let cut = self.rng.gen_range(1..=cut_max);
                let mut mutated = record.clone();
                set_udp_payload(&mut mutated, payload.slice(..cut));
                self.count(kind);
                self.emit(mutated, out);
            }
            FaultKind::CorruptVersion => {
                let payload = Self::quic_candidate_payload(record).expect("applicability");
                let mut bytes = payload.to_vec();
                bytes[1..5].copy_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
                let mut mutated = record.clone();
                set_udp_payload(&mut mutated, Bytes::from(bytes));
                self.count(kind);
                self.emit(mutated, out);
            }
            FaultKind::OversizedCid => {
                let payload = Self::quic_candidate_payload(record).expect("applicability");
                let mut bytes = payload.to_vec();
                bytes[5] = 0xff;
                let mut mutated = record.clone();
                set_udp_payload(&mut mutated, Bytes::from(bytes));
                self.count(kind);
                self.emit(mutated, out);
            }
            FaultKind::ZeroPayload => {
                let mut mutated = record.clone();
                set_udp_payload(&mut mutated, Bytes::new());
                self.count(kind);
                self.emit(mutated, out);
            }
            FaultKind::Garbage => {
                // The original record passes through untouched; a fresh
                // record of structural garbage rides in after it, from
                // the same source and instant so the guard's timestamp
                // checks cannot fire — only the dissector can reject it.
                self.emit(record.clone(), out);
                let len = self.rng.gen_range(30usize..=64);
                let mut bytes = vec![0u8; len];
                self.rng.fill(&mut bytes[..]);
                bytes[0] &= 0x3f; // clear form + fixed bits → never QUIC
                let garbage = PacketRecord::udp(
                    record.ts,
                    record.src,
                    record.dst,
                    40_000,
                    443,
                    Bytes::from(bytes),
                );
                self.count(kind);
                self.emit(garbage, out);
            }
            FaultKind::Duplicate => {
                self.emit(record.clone(), out);
                self.count(kind);
                self.emit(record.clone(), out);
            }
            FaultKind::Jitter => {
                // Backwards nudge that stays within the tolerance *as
                // seen from the source's watermark* (and never takes
                // the clock below zero).
                let max = self.src_max.get(&record.src).copied().unwrap_or(record.ts);
                let lag_already = max.saturating_since(record.ts).as_micros();
                let headroom = guard
                    .reorder_tolerance
                    .as_micros()
                    .saturating_sub(lag_already)
                    .min(record.ts.as_micros());
                let delta = if headroom == 0 {
                    0
                } else {
                    self.rng.gen_range(0..=headroom)
                };
                let mut mutated = record.clone();
                mutated.ts = Timestamp::from_micros(record.ts.as_micros() - delta);
                self.count(kind);
                self.emit(mutated, out);
            }
            FaultKind::Reorder => {
                let max = self.src_max[&record.src];
                let low = guard.reorder_tolerance.as_micros() + 1;
                let high = guard.skew_horizon.as_micros().min(max.as_micros()).max(low);
                let delta = self.rng.gen_range(low..=high);
                let mut mutated = record.clone();
                mutated.ts = Timestamp::from_micros(max.as_micros() - delta);
                self.count(kind);
                self.emit(mutated, out);
            }
            FaultKind::ClockSkew => {
                let max = self.src_max[&record.src];
                let low = guard.skew_horizon.as_micros() + 1;
                let high = (2 * guard.skew_horizon.as_micros())
                    .min(max.as_micros())
                    .max(low);
                let delta = self.rng.gen_range(low..=high);
                let mut mutated = record.clone();
                mutated.ts = Timestamp::from_micros(max.as_micros().saturating_sub(delta));
                self.count(kind);
                self.emit(mutated, out);
            }
        }
    }
}

/// Sets the payload of a UDP record in place.
fn set_udp_payload(record: &mut PacketRecord, bytes: Bytes) {
    if let Transport::Udp { payload, .. } = &mut record.transport {
        *payload = bytes;
    } else {
        unreachable!("payload faults only target UDP records");
    }
}

/// Iterator adapter produced by [`FaultPlan::wrap`]: yields the
/// faulted stream record by record.
#[derive(Debug)]
pub struct FaultInjector<I> {
    plan: FaultPlan,
    inner: I,
    queue: VecDeque<PacketRecord>,
}

impl<I> FaultInjector<I> {
    /// Injection counts so far.
    pub fn summary(&self) -> &FaultSummary {
        self.plan.summary()
    }

    /// Unwraps the plan (for its final summary).
    pub fn into_plan(self) -> FaultPlan {
        self.plan
    }
}

impl<I: Iterator<Item = PacketRecord>> Iterator for FaultInjector<I> {
    type Item = PacketRecord;

    fn next(&mut self) -> Option<PacketRecord> {
        loop {
            if let Some(record) = self.queue.pop_front() {
                return Some(record);
            }
            let record = self.inner.next()?;
            let mut out = Vec::with_capacity(2);
            self.plan.corrupt_into(&record, &mut out);
            self.queue.extend(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_net::TcpFlags;
    use quicsand_traffic::research::research_probe_payload;

    fn capture(n: u64) -> Vec<PacketRecord> {
        (0..n)
            .map(|i| {
                let src = Ipv4Addr::from(0x0a00_0001 + (i % 97) as u32 * 13);
                let dst = Ipv4Addr::new(192, 0, 2, (i % 200) as u8);
                let ts = Timestamp::from_secs(3600 + i);
                match i % 3 {
                    0 | 1 => {
                        PacketRecord::udp(ts, src, dst, 40_000, 443, research_probe_payload(i))
                    }
                    _ => PacketRecord::tcp(ts, src, dst, 443, 5_000, TcpFlags::SYN_ACK),
                }
            })
            .collect()
    }

    #[test]
    fn none_profile_is_identity() {
        let records = capture(200);
        let mut plan = FaultPlan::new(FaultProfile::none(), 7);
        let out = plan.apply_all(&records);
        assert_eq!(out, records);
        assert_eq!(plan.summary().total_injected(), 0);
        assert_eq!(plan.summary().input_records, 200);
        assert_eq!(plan.summary().emitted_records, 200);
    }

    #[test]
    fn same_seed_same_stream_different_seed_differs() {
        let records = capture(500);
        let out_a = FaultPlan::new(FaultProfile::standard(), 42).apply_all(&records);
        let out_b = FaultPlan::new(FaultProfile::standard(), 42).apply_all(&records);
        let out_c = FaultPlan::new(FaultProfile::standard(), 43).apply_all(&records);
        assert_eq!(out_a, out_b, "same seed must reproduce byte-identically");
        assert_ne!(out_a, out_c, "different seed must differ");
    }

    #[test]
    fn iterator_wrap_equals_apply_all() {
        let records = capture(300);
        let mut plan = FaultPlan::new(FaultProfile::aggressive(), 99);
        let batch = plan.apply_all(&records);
        let injector = FaultPlan::new(FaultProfile::aggressive(), 99).wrap(records.clone());
        let streamed: Vec<PacketRecord> = injector.collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn summary_accounts_for_emitted_records() {
        let records = capture(1_000);
        let mut plan = FaultPlan::new(FaultProfile::aggressive(), 5);
        let out = plan.apply_all(&records);
        let summary = *plan.summary();
        assert_eq!(summary.input_records, 1_000);
        assert_eq!(summary.emitted_records as usize, out.len());
        let inserted = summary.count(FaultKind::Garbage) + summary.count(FaultKind::Duplicate);
        assert_eq!(out.len() as u64, 1_000 + inserted);
        assert!(summary.total_injected() > 0, "aggressive must inject");
    }

    #[test]
    fn profile_from_str() {
        assert_eq!(
            "none".parse::<FaultProfile>().unwrap(),
            FaultProfile::none()
        );
        assert_eq!(
            "standard".parse::<FaultProfile>().unwrap(),
            FaultProfile::standard()
        );
        assert_eq!(
            "aggressive".parse::<FaultProfile>().unwrap(),
            FaultProfile::aggressive()
        );
        assert!("bogus".parse::<FaultProfile>().is_err());
    }

    #[test]
    fn every_kind_injectable_via_only_profile() {
        let records = capture(2_000);
        for kind in FaultKind::ALL {
            let mut plan = FaultPlan::new(FaultProfile::only(kind, 0.2), 11);
            let _ = plan.apply_all(&records);
            // Inapplicable picks fall back to Duplicate, so the sum of
            // this kind + duplicates must equal total injected.
            let summary = plan.summary();
            assert_eq!(
                summary.count(kind) + summary.count(FaultKind::Duplicate)
                    - if kind == FaultKind::Duplicate {
                        summary.count(kind)
                    } else {
                        0
                    },
                summary.total_injected(),
                "kind {kind} fallback accounting"
            );
            assert!(summary.total_injected() > 0, "kind {kind} never injected");
        }
    }

    #[test]
    fn expected_quarantine_matches_pipeline_exactly() {
        use quicsand_telescope::TelescopePipeline;
        let records = capture(2_000);
        let profile = FaultProfile::aggressive();

        let mut clean = TelescopePipeline::with_guard(profile.guard);
        clean.ingest_all(&records);
        let (_, _, clean_stats) = clean.finish();
        assert_eq!(
            clean_stats.quarantine.total(),
            0,
            "test capture must be quarantine-free when clean"
        );

        let mut plan = FaultPlan::new(profile, 1234);
        let faulted = plan.apply_all(&records);
        let mut pipeline = TelescopePipeline::with_guard(profile.guard);
        pipeline.ingest_all(&faulted);
        let (_, _, stats) = pipeline.finish();
        assert_eq!(
            stats.quarantine,
            plan.summary().expected_quarantine(),
            "quarantine counters must match the injection oracle exactly"
        );
        assert_eq!(stats.total, plan.summary().emitted_records);
    }
}
