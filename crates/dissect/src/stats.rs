//! Aggregation over dissected QUIC traffic.
//!
//! Computes the quantities the paper reports in §6 (message-type mix of
//! DoS backscatter: 31 % Initial, 57 % Handshake; zero RETRYs) and the
//! per-victim resource proxies of Fig. 9 (unique SCIDs, client IPs and
//! ports).

use crate::quic::{DissectedPacket, MessageKind};
use quicsand_wire::ConnectionId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Counts of QUIC message types over a traffic aggregate.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageMixStats {
    /// Messages per kind.
    pub counts: HashMap<String, u64>,
    /// Total messages.
    pub total: u64,
    /// Initials that carried a visible Client Hello.
    pub initials_with_client_hello: u64,
}

impl MessageMixStats {
    /// Creates empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one dissected datagram into the stats.
    pub fn add(&mut self, dissected: &DissectedPacket) {
        for m in &dissected.messages {
            *self.counts.entry(m.kind.label().to_string()).or_default() += 1;
            self.total += 1;
            if m.kind == MessageKind::Initial && m.has_client_hello {
                self.initials_with_client_hello += 1;
            }
        }
    }

    /// Count for one kind.
    pub fn count(&self, kind: MessageKind) -> u64 {
        self.counts.get(kind.label()).copied().unwrap_or(0)
    }

    /// Share of one kind in the total (0 when empty).
    pub fn share(&self, kind: MessageKind) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(kind) as f64 / self.total as f64
        }
    }

    /// Whether any RETRY was observed (the paper: none).
    pub fn any_retry(&self) -> bool {
        self.count(MessageKind::Retry) > 0
    }
}

/// Per-victim resource proxies for Fig. 9: packet counts and the unique
/// client addresses, client ports and server SCIDs observed in the
/// backscatter a victim emits.
#[derive(Debug, Clone, Default)]
pub struct VictimResourceStats {
    /// Backscatter packets observed.
    pub packets: u64,
    /// Unique spoofed client addresses (the telescope's own addresses
    /// that the victim replied to).
    pub client_ips: HashSet<Ipv4Addr>,
    /// Unique client ports replied to.
    pub client_ports: HashSet<u16>,
    /// Unique server-chosen source connection IDs — each one is a
    /// connection context allocated at the victim.
    pub scids: HashSet<ConnectionId>,
}

impl VictimResourceStats {
    /// Folds one backscatter datagram into the stats.
    ///
    /// `dst` and `dst_port` are the telescope address/port the victim
    /// replied to (i.e. the spoofed client identity).
    pub fn add(&mut self, dissected: &DissectedPacket, dst: Ipv4Addr, dst_port: u16) {
        self.packets += 1;
        self.client_ips.insert(dst);
        self.client_ports.insert(dst_port);
        for scid in dissected.scids() {
            self.scids.insert(*scid);
        }
    }

    /// SCIDs per packet — the "server load" indicator of Fig. 9
    /// (Google reacts with more SCIDs despite fewer packets).
    pub fn scids_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.scids.len() as f64 / self.packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quic::MessageMeta;

    fn dissected(kinds: &[(MessageKind, bool)]) -> DissectedPacket {
        DissectedPacket {
            messages: kinds
                .iter()
                .map(|(kind, ch)| MessageMeta {
                    kind: *kind,
                    version: Some(1),
                    scid: Some(ConnectionId::from_u64(7)),
                    dcid: ConnectionId::EMPTY,
                    has_client_hello: *ch,
                    wire_len: 100,
                })
                .collect(),
        }
    }

    #[test]
    fn mix_counts_and_shares() {
        let mut stats = MessageMixStats::new();
        stats.add(&dissected(&[
            (MessageKind::Initial, false),
            (MessageKind::Handshake, false),
        ]));
        stats.add(&dissected(&[(MessageKind::Handshake, false)]));
        assert_eq!(stats.total, 3);
        assert_eq!(stats.count(MessageKind::Initial), 1);
        assert_eq!(stats.count(MessageKind::Handshake), 2);
        assert!((stats.share(MessageKind::Initial) - 1.0 / 3.0).abs() < 1e-12);
        assert!((stats.share(MessageKind::Handshake) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.share(MessageKind::Retry), 0.0);
        assert!(!stats.any_retry());
    }

    #[test]
    fn client_hello_counting() {
        let mut stats = MessageMixStats::new();
        stats.add(&dissected(&[(MessageKind::Initial, true)]));
        stats.add(&dissected(&[(MessageKind::Initial, false)]));
        assert_eq!(stats.initials_with_client_hello, 1);
    }

    #[test]
    fn retry_flag() {
        let mut stats = MessageMixStats::new();
        stats.add(&dissected(&[(MessageKind::Retry, false)]));
        assert!(stats.any_retry());
    }

    #[test]
    fn empty_share_is_zero() {
        let stats = MessageMixStats::new();
        assert_eq!(stats.share(MessageKind::Initial), 0.0);
        assert_eq!(stats.total, 0);
    }

    #[test]
    fn victim_stats_accumulate_unique_resources() {
        let mut stats = VictimResourceStats::default();
        let d1 = DissectedPacket {
            messages: vec![MessageMeta {
                kind: MessageKind::Initial,
                version: Some(1),
                scid: Some(ConnectionId::from_u64(1)),
                dcid: ConnectionId::EMPTY,
                has_client_hello: false,
                wire_len: 100,
            }],
        };
        let d2 = DissectedPacket {
            messages: vec![MessageMeta {
                kind: MessageKind::Handshake,
                version: Some(1),
                scid: Some(ConnectionId::from_u64(2)),
                dcid: ConnectionId::EMPTY,
                has_client_hello: false,
                wire_len: 100,
            }],
        };
        stats.add(&d1, Ipv4Addr::new(128, 0, 0, 1), 1000);
        stats.add(&d1, Ipv4Addr::new(128, 0, 0, 1), 1000); // duplicate identity
        stats.add(&d2, Ipv4Addr::new(128, 0, 0, 2), 2000);
        assert_eq!(stats.packets, 3);
        assert_eq!(stats.client_ips.len(), 2);
        assert_eq!(stats.client_ports.len(), 2);
        assert_eq!(stats.scids.len(), 2);
        assert!((stats.scids_per_packet() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_victim_stats() {
        let stats = VictimResourceStats::default();
        assert_eq!(stats.scids_per_packet(), 0.0);
    }
}
