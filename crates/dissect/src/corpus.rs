//! The shared adversarial dissection corpus.
//!
//! Hand-crafted hostile payloads of the kind a darknet actually receives
//! — truncations at every field boundary, oversized CID lengths,
//! reserved-bit violations, bogus versions — each annotated with the
//! *typed error* (or success) it must dissect to. The corpus backs two
//! test suites: the dissector's own typed-error conformance test, and
//! the capture-layer differential test that replays every entry through
//! both the legacy copying reader and the zero-copy decoder.

/// What a corpus entry must dissect to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusExpect {
    /// Must parse successfully.
    Ok,
    /// Must be rejected as an empty payload.
    Empty,
    /// Must be rejected as truncated.
    Truncated,
    /// Must be rejected with exactly this unknown version.
    BadVersion(u32),
    /// Must be rejected with exactly this oversized CID length.
    BadCid(usize),
    /// Must be rejected as structurally non-QUIC.
    NotQuic,
    /// Must be rejected, kind unconstrained (structurally ambiguous
    /// inputs where the exact classification is an implementation
    /// detail — but success would be a bug).
    AnyErr,
}

/// One adversarial payload with its expected dissection outcome.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Human-readable description of the malformation.
    pub name: &'static str,
    /// The hostile UDP payload.
    pub payload: Vec<u8>,
    /// The outcome [`crate::dissect_udp_payload`] must produce.
    pub expect: CorpusExpect,
}

/// A structurally valid, hand-crafted Initial: long form + fixed bit,
/// version 1, empty CIDs, empty token, 5-byte protected payload.
fn minimal_initial() -> Vec<u8> {
    vec![
        0xc0, // long | fixed | type=Initial | pn_len=1
        0x00, 0x00, 0x00, 0x01, // version 1
        0x00, // dcid len
        0x00, // scid len
        0x00, // token length (varint)
        0x05, // length (varint)
        0x01, 0x02, 0x03, 0x04, 0x05, // pn + protected payload
    ]
}

/// An Initial with both connection IDs at the 20-byte maximum.
fn max_cid_initial(cut_dcid_short: bool) -> Vec<u8> {
    let mut wire = vec![0xc0, 0x00, 0x00, 0x00, 0x01];
    wire.push(20);
    wire.extend_from_slice(&[0x5A; 20][..if cut_dcid_short { 19 } else { 20 }]);
    if cut_dcid_short {
        return wire; // ends inside the DCID
    }
    wire.push(20);
    wire.extend_from_slice(&[0xA5; 20]);
    wire.extend_from_slice(&[0x00, 0x01, 0x09]); // token len, length, pn
    wire
}

/// A structurally valid Retry: version 1, empty CIDs, 3-byte token,
/// 16-byte integrity tag.
fn minimal_retry(tag_bytes: usize) -> Vec<u8> {
    let mut wire = vec![0xf0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00];
    wire.extend_from_slice(b"tok");
    wire.extend_from_slice(&vec![0xEE; tag_bytes]);
    wire
}

/// The full adversarial corpus (40 entries).
pub fn adversarial_corpus() -> Vec<CorpusEntry> {
    use CorpusExpect as E;
    let entry = |name, payload, expect| CorpusEntry {
        name,
        payload,
        expect,
    };
    vec![
        // --- degenerate inputs ------------------------------------
        entry("empty payload", vec![], E::Empty),
        entry("single zero byte", vec![0x00], E::NotQuic),
        entry("all zeros", vec![0u8; 64], E::NotQuic),
        entry(
            "dns-ish payload, fixed bit unset",
            vec![0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00],
            E::NotQuic,
        ),
        entry(
            "ascii shebang garbage",
            b"#!garbage shell script".to_vec(),
            E::NotQuic,
        ),
        // --- short-header edge cases ------------------------------
        entry("short form, no dcid", vec![0x40], E::Truncated),
        entry(
            "short form, dcid cut at 3 of 8 bytes",
            vec![0x40, 0x01, 0x02, 0x03],
            E::Truncated,
        ),
        entry(
            "short form, dcid but no packet number",
            vec![0x40, 1, 2, 3, 4, 5, 6, 7, 8],
            E::AnyErr,
        ),
        entry(
            "plausible 1-RTT packet",
            vec![0x43, 1, 2, 3, 4, 5, 6, 7, 8, 0xAA, 0xBB, 0xCC, 0xDD],
            E::Ok,
        ),
        // --- long-header reserved-bit violations ------------------
        entry(
            "long form, fixed bit clear, version 1",
            vec![0x80, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00],
            E::NotQuic,
        ),
        // --- long-header truncations at every field boundary ------
        entry("long form, version missing", vec![0xc0], E::Truncated),
        entry(
            "long form, version cut at 3 of 4 bytes",
            vec![0xc0, 0x00, 0x00, 0x00],
            E::Truncated,
        ),
        entry(
            "long form, dcid length byte missing",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01],
            E::Truncated,
        ),
        entry(
            "dcid declares 8, carries 4",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x08, 1, 2, 3, 4],
            E::Truncated,
        ),
        entry(
            "scid length byte missing",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x00],
            E::Truncated,
        ),
        entry(
            "initial token varint declares 16383, carries none",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x7f, 0xff],
            E::Truncated,
        ),
        entry(
            "initial length field missing",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00],
            E::Truncated,
        ),
        entry(
            "length declares 0x30, carries 2",
            vec![
                0xc0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x30, 0xAA, 0xBB,
            ],
            E::Truncated,
        ),
        entry(
            // The Retry token is not self-describing, so a cut is only
            // detectable once fewer than 16 tag bytes remain.
            "retry with 15 bytes where the 16-byte tag belongs",
            vec![
                0xf0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, // header, empty cids
                0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, // 15 of 16
                0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE,
            ],
            E::Truncated,
        ),
        entry(
            "max-cid initial cut inside the dcid",
            max_cid_initial(true),
            E::Truncated,
        ),
        // --- version-field hostility ------------------------------
        entry(
            "unknown version 0xdeadbeef",
            {
                let mut wire = minimal_initial();
                wire[1..5].copy_from_slice(&0xdeadbeef_u32.to_be_bytes());
                wire
            },
            E::BadVersion(0xdeadbeef),
        ),
        entry(
            // Structural parsing runs before version semantics: the
            // 0xFF DCID-length byte is rejected before the unknown
            // version 0xffffffff is even considered.
            "all-ones packet (oversized cid wins over bad version)",
            vec![0xFF; 1200],
            E::BadCid(255),
        ),
        entry(
            "grease version 0x1a2a3a4a accepted",
            {
                let mut wire = minimal_initial();
                wire[1..5].copy_from_slice(&0x1a2a3a4a_u32.to_be_bytes());
                wire
            },
            E::Ok,
        ),
        // --- CID length hostility ---------------------------------
        entry(
            "dcid length 21 (one past the RFC max)",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x15],
            E::BadCid(21),
        ),
        entry(
            "dcid length 255",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0xFF],
            E::BadCid(255),
        ),
        entry(
            "scid length 21 after a valid empty dcid",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x15],
            E::BadCid(21),
        ),
        entry(
            "both cids at the 20-byte maximum",
            max_cid_initial(false),
            E::Ok,
        ),
        // --- inconsistent length fields ---------------------------
        entry(
            "length zero but pn_len one",
            vec![0xc0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00],
            E::NotQuic,
        ),
        // --- version negotiation ----------------------------------
        entry(
            "version negotiation with one offered version",
            vec![0x80, 0, 0, 0, 0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01],
            E::Ok,
        ),
        entry(
            "version negotiation with a partial version entry",
            vec![0x80, 0, 0, 0, 0, 0x00, 0x00, 0x00, 0x01],
            E::AnyErr,
        ),
        // --- positive controls ------------------------------------
        entry("minimal valid initial", minimal_initial(), E::Ok),
        entry("minimal valid retry", minimal_retry(16), E::Ok),
        entry(
            "valid initial coalesced with a truncated second packet",
            {
                let mut wire = minimal_initial();
                wire.push(0xc0);
                wire
            },
            E::AnyErr,
        ),
        // --- post-2021 version drift ------------------------------
        entry(
            "v2 initial accepted",
            {
                let mut wire = minimal_initial();
                wire[1..5].copy_from_slice(&0x6b3343cf_u32.to_be_bytes());
                wire
            },
            E::Ok,
        ),
        entry(
            "v2 initial with migration-grade 8-byte scid",
            vec![
                0xc0, 0x6b, 0x33, 0x43, 0xcf, // long | fixed, version 2
                0x00, // dcid len
                0x08, 1, 2, 3, 4, 5, 6, 7, 8,    // scid: the migration key
                0x00, // token length
                0x05, // length
                0x01, 0x02, 0x03, 0x04, 0x05, // pn + protected payload
            ],
            E::Ok,
        ),
        entry(
            "v2 retry accepted",
            {
                let mut wire = minimal_retry(16);
                wire[1..5].copy_from_slice(&0x6b3343cf_u32.to_be_bytes());
                wire
            },
            E::Ok,
        ),
        entry(
            "version negotiation offering v1 and v2",
            vec![
                0x80, 0, 0, 0, 0, 0x00, 0x00, // vn header, empty cids
                0x00, 0x00, 0x00, 0x01, // v1
                0x6b, 0x33, 0x43, 0xcf, // v2
            ],
            E::Ok,
        ),
        entry(
            "unregistered draft-31 version quarantined",
            {
                let mut wire = minimal_initial();
                wire[1..5].copy_from_slice(&0xff00001f_u32.to_be_bytes());
                wire
            },
            E::BadVersion(0xff00001f),
        ),
        // --- retry token-size variants ----------------------------
        entry(
            "retry with empty token",
            {
                let mut wire = vec![0xf0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00];
                wire.extend_from_slice(&[0xEE; 16]);
                wire
            },
            E::Ok,
        ),
        entry(
            "retry with 128-byte amplification token",
            {
                let mut wire = vec![0xf0, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00];
                wire.extend_from_slice(&[0x7A; 128]);
                wire.extend_from_slice(&[0xEE; 16]);
                wire
            },
            E::Ok,
        ),
    ]
}

/// Asserts that `result` matches `expect`, with `name` in the failure
/// message. Shared by every suite that replays the corpus.
pub fn assert_expected(
    name: &str,
    expect: CorpusExpect,
    result: &Result<crate::DissectedPacket, crate::DissectError>,
) {
    use crate::DissectError;
    match expect {
        CorpusExpect::Ok => assert!(result.is_ok(), "{name}: expected Ok, got {result:?}"),
        CorpusExpect::Empty => assert!(
            matches!(result, Err(DissectError::Empty)),
            "{name}: expected Empty, got {result:?}"
        ),
        CorpusExpect::Truncated => assert!(
            matches!(result, Err(DissectError::Truncated(_))),
            "{name}: expected Truncated, got {result:?}"
        ),
        CorpusExpect::BadVersion(v) => assert!(
            matches!(result, Err(DissectError::BadVersion(got)) if *got == v),
            "{name}: expected BadVersion({v:#x}), got {result:?}"
        ),
        CorpusExpect::BadCid(n) => assert!(
            matches!(result, Err(DissectError::BadCid(got)) if *got == n),
            "{name}: expected BadCid({n}), got {result:?}"
        ),
        CorpusExpect::NotQuic => assert!(
            matches!(result, Err(DissectError::NotQuic(_))),
            "{name}: expected NotQuic, got {result:?}"
        ),
        CorpusExpect::AnyErr => assert!(result.is_err(), "{name}: expected an error, got Ok"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_entries_have_unique_names() {
        let corpus = adversarial_corpus();
        assert_eq!(corpus.len(), 40);
        let mut names: Vec<_> = corpus.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len(), "entry names must be unique");
    }
}
