//! Per-[`DissectError`]-kind rejection counters.
//!
//! The dissector is the stage that turns port-filter candidates into
//! validated QUIC observations; every rejection it issues lands in one
//! of these counters. They reconcile exactly with the ingest quarantine
//! taxonomy: each counter equals the corresponding `QuarantineStats`
//! field, and their sum equals `IngestStats::quic_false_positives`.

use crate::quic::DissectError;
use quicsand_obs::{Counter, MetricsRegistry, Stability};

/// Prometheus family name for dissector rejections.
pub const DISSECT_REJECTED_TOTAL: &str = "quicsand_dissect_rejected_total";

/// One counter per [`DissectError`] kind, registered under
/// `quicsand_dissect_rejected_total{kind="..."}`.
#[derive(Debug, Clone)]
pub struct DissectMetrics {
    /// Zero-length UDP payloads (`DissectError::Empty`).
    pub empty: Counter,
    /// Structurally cut-off packets (`DissectError::Truncated`).
    pub truncated: Counter,
    /// Unknown version fields (`DissectError::BadVersion`).
    pub bad_version: Counter,
    /// Oversized connection IDs (`DissectError::BadCid`).
    pub bad_cid: Counter,
    /// Not structurally QUIC at all (`DissectError::NotQuic`).
    pub not_quic: Counter,
}

impl DissectMetrics {
    /// Registers the five kind-labelled counters on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        const HELP: &str = "QUIC candidates rejected by the payload dissector, by error kind";
        let kind = |k: &'static str| {
            registry.counter_with(
                DISSECT_REJECTED_TOTAL,
                HELP,
                Stability::Stable,
                &[("kind", k)],
            )
        };
        DissectMetrics {
            empty: kind("empty_payload"),
            truncated: kind("truncated"),
            bad_version: kind("bad_version"),
            bad_cid: kind("bad_cid"),
            not_quic: kind("not_quic"),
        }
    }

    /// Handles not attached to any registry (all increments discarded
    /// from exposition, but still countable — used by tests).
    pub fn detached() -> Self {
        DissectMetrics {
            empty: Counter::detached(),
            truncated: Counter::detached(),
            bad_version: Counter::detached(),
            bad_cid: Counter::detached(),
            not_quic: Counter::detached(),
        }
    }

    /// Counts one rejection of the given kind.
    pub fn record(&self, error: &DissectError) {
        self.counter_for(error).inc();
    }

    /// The counter corresponding to an error's kind.
    pub fn counter_for(&self, error: &DissectError) -> &Counter {
        match error {
            DissectError::Empty => &self.empty,
            DissectError::Truncated(_) => &self.truncated,
            DissectError::BadVersion(_) => &self.bad_version,
            DissectError::BadCid(_) => &self.bad_cid,
            DissectError::NotQuic(_) => &self.not_quic,
        }
    }

    /// Sum over all kinds — reconciles with
    /// `IngestStats::quic_false_positives`.
    pub fn total(&self) -> u64 {
        self.empty.get()
            + self.truncated.get()
            + self.bad_version.get()
            + self.bad_cid.get()
            + self.not_quic.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quic::dissect_udp_payload;

    #[test]
    fn record_routes_by_kind() {
        let metrics = DissectMetrics::detached();
        let err = dissect_udp_payload(&[]).unwrap_err();
        metrics.record(&err);
        metrics.record(&err);
        assert_eq!(metrics.empty.get(), 2);
        assert_eq!(metrics.total(), 2);
        assert_eq!(metrics.truncated.get(), 0);
    }

    #[test]
    fn registered_counters_surface_in_exposition() {
        let registry = MetricsRegistry::new();
        let metrics = DissectMetrics::register(&registry);
        metrics.bad_version.add(3);
        let text = registry.render_prometheus(true);
        assert!(text.contains("quicsand_dissect_rejected_total{kind=\"bad_version\"} 3"));
    }
}
