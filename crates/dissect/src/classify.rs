//! Port-based traffic classification (paper §4.1).
//!
//! "We identify QUIC traffic based on transport layer properties by
//! selecting all UDP packets with a source or destination port UDP/443.
//! [...] we mark all QUIC packets with source port UDP/443 as responses
//! (i.e., backscatter) and all packets with destination port UDP/443 as
//! requests (i.e., scans). These two sets are disjoint, as we do not
//! find any packet with destination and source port set to UDP/443."
//!
//! The payload dissector ([`crate::quic`]) is then applied to exclude
//! false positives, mirroring the paper's use of Wireshark dissectors on
//! top of the port filter.

use quicsand_net::{PacketRecord, Transport};
use quicsand_wire::QUIC_PORT;
use serde::{Deserialize, Serialize};

/// Direction of a QUIC candidate packet relative to port 443.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Destination port 443: a request (scan or flood probe).
    Request,
    /// Source port 443: a response (backscatter).
    Response,
}

impl Direction {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Request => "request",
            Direction::Response => "response",
        }
    }
}

/// Outcome of the transport-layer classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Classification {
    /// UDP/443 traffic: a QUIC candidate with a direction.
    QuicCandidate(Direction),
    /// UDP, but neither port is 443.
    OtherUdp,
    /// TCP traffic (the paper's "common protocols" baseline).
    Tcp,
    /// ICMP traffic (baseline).
    Icmp,
    /// A UDP packet with *both* ports 443. The paper observes none; we
    /// classify it explicitly so the invariant is testable.
    AmbiguousBothPorts,
}

/// Classifies one captured record.
pub fn classify_record(record: &PacketRecord) -> Classification {
    match &record.transport {
        Transport::Udp {
            src_port, dst_port, ..
        } => match (*src_port == QUIC_PORT, *dst_port == QUIC_PORT) {
            (true, true) => Classification::AmbiguousBothPorts,
            (true, false) => Classification::QuicCandidate(Direction::Response),
            (false, true) => Classification::QuicCandidate(Direction::Request),
            (false, false) => Classification::OtherUdp,
        },
        Transport::Tcp { .. } => Classification::Tcp,
        Transport::Icmp { .. } => Classification::Icmp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use quicsand_net::{IcmpKind, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    fn udp(src_port: u16, dst_port: u16) -> PacketRecord {
        PacketRecord::udp(
            Timestamp::EPOCH,
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(128, 0, 0, 1),
            src_port,
            dst_port,
            Bytes::new(),
        )
    }

    #[test]
    fn dst_443_is_request() {
        assert_eq!(
            classify_record(&udp(50000, 443)),
            Classification::QuicCandidate(Direction::Request)
        );
    }

    #[test]
    fn src_443_is_response() {
        assert_eq!(
            classify_record(&udp(443, 50000)),
            Classification::QuicCandidate(Direction::Response)
        );
    }

    #[test]
    fn both_443_is_ambiguous() {
        assert_eq!(
            classify_record(&udp(443, 443)),
            Classification::AmbiguousBothPorts
        );
    }

    #[test]
    fn other_udp() {
        assert_eq!(classify_record(&udp(53, 53)), Classification::OtherUdp);
        assert_eq!(classify_record(&udp(123, 5000)), Classification::OtherUdp);
    }

    #[test]
    fn tcp_and_icmp() {
        let tcp = PacketRecord::tcp(
            Timestamp::EPOCH,
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            443,
            80,
            TcpFlags::SYN_ACK,
        );
        assert_eq!(classify_record(&tcp), Classification::Tcp);
        let icmp = PacketRecord::icmp(
            Timestamp::EPOCH,
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IcmpKind::EchoReply,
        );
        assert_eq!(classify_record(&icmp), Classification::Icmp);
    }

    #[test]
    fn direction_labels() {
        assert_eq!(Direction::Request.label(), "request");
        assert_eq!(Direction::Response.label(), "response");
    }
}
