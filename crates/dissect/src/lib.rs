//! # quicsand-dissect
//!
//! Telescope-side traffic classification and QUIC payload dissection —
//! the reproduction of the paper's measurement method (§4.1):
//!
//! 1. **Port-based pre-filter** ([`classify`]): UDP packets with source
//!    *or* destination port 443 are QUIC candidates. Destination 443 ⇒
//!    request (scan); source 443 ⇒ response (backscatter). The two sets
//!    are disjoint by construction.
//! 2. **Payload dissection** ([`quic`]): a Wireshark-dissector stand-in
//!    that structurally parses the UDP payload as (coalesced) QUIC
//!    packets, extracts versions, connection IDs and message types, and
//!    — like Wireshark — derives Initial keys from the destination
//!    connection ID to detect whether an Initial carries an unencrypted
//!    TLS Client Hello (the §6 backscatter-validity heuristic).
//! 3. **Aggregation** ([`stats`]): message-type mixes, SCID counting and
//!    RETRY presence, feeding Figs. 9 and the §6 discussion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod corpus;
pub mod metrics;
pub mod quic;
pub mod stats;

pub use classify::{classify_record, Classification, Direction};
pub use corpus::{adversarial_corpus, CorpusEntry, CorpusExpect};
pub use metrics::DissectMetrics;
pub use quic::{dissect_udp_payload, DissectError, DissectedPacket, MessageKind, MessageMeta};
pub use stats::MessageMixStats;
