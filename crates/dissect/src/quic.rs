//! The QUIC payload dissector (Wireshark stand-in).
//!
//! Structurally parses a UDP payload as one or more coalesced QUIC
//! packets and extracts the metadata the paper's analyses need:
//! versions, connection IDs, message types — and whether an Initial
//! carries an *unencrypted* TLS Client Hello.
//!
//! The Client Hello check works exactly as it does for Wireshark on the
//! real wire: Initial keys are derivable by any passive observer from
//! the packet's destination connection ID, **but only for
//! client-originated Initials** — a server's Initial reply is protected
//! under keys derived from the *client's original* DCID, which appears
//! nowhere in the reply. So the dissector attempts the derivation; if
//! decryption fails, the Initial is opaque ("does not contain an
//! (unencrypted) TLS Client Hello") and is attributed to an encrypted
//! Server Hello reply — the §6 backscatter signature.

use quicsand_wire::crypto::InitialSecrets;
use quicsand_wire::packet::{parse_datagram, ParsedHeader};
use quicsand_wire::tls::{peek_handshake_type, HandshakeType};
use quicsand_wire::{ConnectionId, Frame, Version, WireError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Typed dissection failure: *why* a UDP payload was rejected.
///
/// The seed dissector collapsed every failure into a bare [`WireError`]
/// (and earlier prototypes into an `Option`); the telescope pipeline
/// needs the *class* of malformation to maintain its per-kind
/// quarantine counters — truncated captures, garbage version fields and
/// oversized CIDs are distinct phenomena in real IBR and are counted
/// separately (QUICsand §4.1 false-positive analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DissectError {
    /// The UDP payload was empty (zero-length datagrams carry no QUIC).
    Empty,
    /// The payload ended before a structurally complete QUIC packet:
    /// truncated capture snaplen, cut-off header, or a length field
    /// pointing past the end of the datagram.
    Truncated(WireError),
    /// A long header announced a version outside the registry (not a
    /// known deployment, not the grease pattern, not negotiation).
    BadVersion(u32),
    /// A connection ID length field exceeded the 20-byte maximum.
    BadCid(usize),
    /// Structurally not QUIC at all (fixed bit unset, impossible field
    /// values) — the port filter's false positives.
    NotQuic(WireError),
}

impl DissectError {
    /// Classifies a low-level wire error into the dissection taxonomy.
    fn from_wire(e: WireError) -> Self {
        match e {
            WireError::UnexpectedEnd { .. } | WireError::LengthOutOfBounds { .. } => {
                DissectError::Truncated(e)
            }
            WireError::UnsupportedVersion(v) => DissectError::BadVersion(v),
            WireError::CidTooLong(n) => DissectError::BadCid(n),
            other => DissectError::NotQuic(other),
        }
    }

    /// The underlying wire error, when one exists.
    pub fn wire_cause(&self) -> Option<&WireError> {
        match self {
            DissectError::Truncated(e) | DissectError::NotQuic(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for DissectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DissectError::Empty => write!(f, "empty udp payload"),
            DissectError::Truncated(e) => write!(f, "truncated quic packet: {e}"),
            DissectError::BadVersion(v) => write!(f, "unknown quic version {v:#010x}"),
            DissectError::BadCid(n) => write!(f, "connection id length {n} exceeds maximum"),
            DissectError::NotQuic(e) => write!(f, "not a quic payload: {e}"),
        }
    }
}

impl std::error::Error for DissectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.wire_cause().map(|e| e as _)
    }
}

/// The QUIC message types the analyses distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Initial packet.
    Initial,
    /// 0-RTT packet.
    ZeroRtt,
    /// Handshake packet.
    Handshake,
    /// Retry packet (the unused defence, §6).
    Retry,
    /// Version Negotiation packet.
    VersionNegotiation,
    /// 1-RTT short-header packet.
    OneRtt,
}

impl MessageKind {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            MessageKind::Initial => "Initial",
            MessageKind::ZeroRtt => "0-RTT",
            MessageKind::Handshake => "Handshake",
            MessageKind::Retry => "Retry",
            MessageKind::VersionNegotiation => "VersionNegotiation",
            MessageKind::OneRtt => "1-RTT",
        }
    }
}

/// Metadata of one QUIC message (packet) inside a datagram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageMeta {
    /// Message type.
    pub kind: MessageKind,
    /// Version, when the header carries one.
    pub version: Option<u32>,
    /// Source connection ID (absent in short headers).
    pub scid: Option<ConnectionId>,
    /// Destination connection ID.
    pub dcid: ConnectionId,
    /// Whether the (Initial) payload decrypted to a TLS Client Hello
    /// under passively derivable keys.
    pub has_client_hello: bool,
    /// Wire length of the message.
    pub wire_len: usize,
}

/// A dissected UDP payload: the coalesced messages it carries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DissectedPacket {
    /// The messages, in wire order.
    pub messages: Vec<MessageMeta>,
}

impl DissectedPacket {
    /// Whether any message is a Retry (the paper captured none).
    pub fn has_retry(&self) -> bool {
        self.messages.iter().any(|m| m.kind == MessageKind::Retry)
    }

    /// The first version announced by any long header.
    pub fn version(&self) -> Option<u32> {
        self.messages.iter().find_map(|m| m.version)
    }

    /// All source connection IDs in the datagram.
    pub fn scids(&self) -> impl Iterator<Item = &ConnectionId> {
        self.messages.iter().filter_map(|m| m.scid.as_ref())
    }

    /// A stable 64-bit key (FNV-1a) over the first non-empty source
    /// connection ID. The client-chosen SCID persists when the client
    /// changes address, so this key powers CID-keyed migration linking
    /// in the sessionizer. `None` when no message carries a non-empty
    /// SCID (short headers, empty-SCID backscatter).
    pub fn client_cid_key(&self) -> Option<u64> {
        let cid = self.scids().find(|c| !c.is_empty())?;
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &byte in cid.as_slice() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Some(hash)
    }

    /// Whether every long-header DCID has length zero — the validity
    /// check the paper applies to backscatter (§5.2: "we carefully
    /// checked that the packets are valid [...] by verifying that the
    /// DCID length attribute is set to zero"). Short headers carry no
    /// DCID-length attribute and are skipped.
    pub fn all_dcids_empty(&self) -> bool {
        self.messages
            .iter()
            .filter(|m| m.version.is_some())
            .all(|m| m.dcid.is_empty())
    }
}

/// Dissects a UDP payload as QUIC.
///
/// # Errors
/// [`DissectError`] when the payload is not structurally valid QUIC —
/// the caller (telescope pipeline) counts these as non-QUIC false
/// positives of the port filter and quarantines them per error kind.
pub fn dissect_udp_payload(payload: &[u8]) -> Result<DissectedPacket, DissectError> {
    if payload.is_empty() {
        return Err(DissectError::Empty);
    }
    let parsed = parse_datagram(payload, 8).map_err(DissectError::from_wire)?;
    if parsed.is_empty() {
        return Err(DissectError::Truncated(WireError::UnexpectedEnd {
            what: "datagram",
        }));
    }
    let mut messages = Vec::with_capacity(parsed.len());
    for (packet, aad) in &parsed {
        let meta = match &packet.header {
            ParsedHeader::Long {
                ty,
                version,
                dcid,
                scid,
                ..
            } => {
                if let Version::Unknown(v) = version {
                    return Err(DissectError::BadVersion(*v));
                }
                let kind = match ty {
                    quicsand_wire::header::LongPacketType::Initial => MessageKind::Initial,
                    quicsand_wire::header::LongPacketType::ZeroRtt => MessageKind::ZeroRtt,
                    quicsand_wire::header::LongPacketType::Handshake => MessageKind::Handshake,
                    quicsand_wire::header::LongPacketType::Retry => MessageKind::Retry,
                };
                let has_client_hello = kind == MessageKind::Initial
                    && initial_carries_client_hello(packet, aad, *version, dcid);
                MessageMeta {
                    kind,
                    version: Some(version.to_wire()),
                    scid: Some(*scid),
                    dcid: *dcid,
                    has_client_hello,
                    wire_len: packet.wire_len,
                }
            }
            ParsedHeader::Retry {
                version,
                dcid,
                scid,
                ..
            } => {
                if let Version::Unknown(v) = version {
                    return Err(DissectError::BadVersion(*v));
                }
                MessageMeta {
                    kind: MessageKind::Retry,
                    version: Some(version.to_wire()),
                    scid: Some(*scid),
                    dcid: *dcid,
                    has_client_hello: false,
                    wire_len: packet.wire_len,
                }
            }
            ParsedHeader::VersionNegotiation { dcid, scid, .. } => MessageMeta {
                kind: MessageKind::VersionNegotiation,
                version: Some(0),
                scid: Some(*scid),
                dcid: *dcid,
                has_client_hello: false,
                wire_len: packet.wire_len,
            },
            ParsedHeader::Short { dcid, .. } => MessageMeta {
                kind: MessageKind::OneRtt,
                version: None,
                scid: None,
                dcid: *dcid,
                has_client_hello: false,
                wire_len: packet.wire_len,
            },
        };
        messages.push(meta);
    }
    Ok(DissectedPacket { messages })
}

/// Attempts the passive Initial decryption and Client Hello detection.
fn initial_carries_client_hello(
    packet: &quicsand_wire::packet::ParsedPacket,
    aad: &[u8],
    version: Version,
    dcid: &ConnectionId,
) -> bool {
    // A passive observer derives the *client* Initial key from the DCID
    // in the packet itself. For client-sent Initials this succeeds; for
    // server replies it cannot (the server seals under keys derived from
    // the client's original DCID, not from the DCID of the reply).
    let keys = InitialSecrets::derive(version, dcid);
    let Ok((_, frames)) = packet.open(keys.client, None, aad) else {
        return false;
    };
    frames.iter().any(|f| {
        if let Frame::Crypto { data, .. } = f {
            peek_handshake_type(data) == Ok(HandshakeType::ClientHello)
        } else {
            false
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use quicsand_wire::crypto::Direction as CryptoDir;
    use quicsand_wire::packet::{Packet, PacketPayload};
    use quicsand_wire::tls::{cipher_suite, ClientHello, ServerHello};

    fn client_hello_bytes() -> Bytes {
        Bytes::from(
            ClientHello {
                random: [1u8; 32],
                cipher_suites: vec![cipher_suite::AES_128_GCM_SHA256],
                server_name: Some("www.google.com".into()),
                alpn: vec!["h3-29".into()],
                key_share: Bytes::from_static(&[2u8; 32]),
            }
            .encode(),
        )
    }

    /// A faithful client first flight: Initial protected under keys
    /// derived from its own DCID.
    fn client_initial() -> Vec<u8> {
        let dcid = ConnectionId::from_u64(0xdddd);
        let keys = InitialSecrets::derive(Version::Draft29, &dcid);
        Packet::Initial {
            version: Version::Draft29,
            dcid,
            scid: ConnectionId::from_u64(0xcccc),
            token: Bytes::new(),
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: client_hello_bytes(),
            }]),
        }
        .encode_padded(Some(keys.client), 1200)
        .unwrap()
    }

    /// A server reply to a *spoofed* client: Initial (Server Hello) +
    /// Handshake coalesced, sealed under keys derived from the client's
    /// original DCID — which the telescope never sees.
    fn server_backscatter() -> Vec<u8> {
        let original_dcid = ConnectionId::from_u64(0x5555);
        let keys = InitialSecrets::derive(Version::Draft29, &original_dcid);
        let server_scid = ConnectionId::from_u64(0x9999);
        let initial = Packet::Initial {
            version: Version::Draft29,
            // Server replies to the client's (empty) SCID: DCID len 0,
            // the §5.2 validity signature.
            dcid: ConnectionId::EMPTY,
            scid: server_scid,
            token: Bytes::new(),
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from(
                    ServerHello {
                        random: [7u8; 32],
                        cipher_suite: cipher_suite::AES_128_GCM_SHA256,
                        key_share: Bytes::from_static(&[3u8; 32]),
                    }
                    .encode(),
                ),
            }]),
        };
        let handshake = Packet::Handshake {
            version: Version::Draft29,
            dcid: ConnectionId::EMPTY,
            scid: server_scid,
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from(vec![0x0b; 600]), // opaque cert bytes
            }]),
        };
        let mut datagram = initial
            .encode(Some(keys.key(CryptoDir::ServerToClient)))
            .unwrap();
        datagram.extend(
            handshake
                .encode(Some(keys.key(CryptoDir::ServerToClient)))
                .unwrap(),
        );
        datagram
    }

    #[test]
    fn client_initial_detected_with_client_hello() {
        let dissected = dissect_udp_payload(&client_initial()).unwrap();
        assert_eq!(dissected.messages.len(), 1);
        let m = &dissected.messages[0];
        assert_eq!(m.kind, MessageKind::Initial);
        assert_eq!(m.version, Some(Version::Draft29.to_wire()));
        assert!(m.has_client_hello, "passively derivable CH must be seen");
    }

    #[test]
    fn server_backscatter_is_initial_without_client_hello() {
        let dissected = dissect_udp_payload(&server_backscatter()).unwrap();
        assert_eq!(dissected.messages.len(), 2);
        assert_eq!(dissected.messages[0].kind, MessageKind::Initial);
        assert!(
            !dissected.messages[0].has_client_hello,
            "server initial must be opaque to the telescope"
        );
        assert_eq!(dissected.messages[1].kind, MessageKind::Handshake);
        assert!(dissected.all_dcids_empty(), "§5.2 validity check");
    }

    #[test]
    fn scids_are_extracted_for_fig9() {
        let dissected = dissect_udp_payload(&server_backscatter()).unwrap();
        let scids: Vec<_> = dissected.scids().collect();
        assert_eq!(scids.len(), 2);
        assert!(scids.iter().all(|s| **s == ConnectionId::from_u64(0x9999)));
    }

    #[test]
    fn retry_detected() {
        let wire = Packet::Retry {
            version: Version::V1,
            dcid: ConnectionId::from_u64(1),
            scid: ConnectionId::from_u64(2),
            token: Bytes::from_static(b"tok"),
            original_dcid: ConnectionId::from_u64(3),
        }
        .encode(None)
        .unwrap();
        let dissected = dissect_udp_payload(&wire).unwrap();
        assert!(dissected.has_retry());
        assert_eq!(dissected.messages[0].kind, MessageKind::Retry);
    }

    #[test]
    fn version_negotiation_detected() {
        let wire = Packet::VersionNegotiation {
            dcid: ConnectionId::from_u64(1),
            scid: ConnectionId::from_u64(2),
            versions: vec![Version::V1],
        }
        .encode(None)
        .unwrap();
        let dissected = dissect_udp_payload(&wire).unwrap();
        assert_eq!(dissected.messages[0].kind, MessageKind::VersionNegotiation);
        assert_eq!(dissected.version(), Some(0));
    }

    #[test]
    fn one_rtt_detected() {
        let key = quicsand_wire::siphash::SipKey { k0: 1, k1: 2 };
        let wire = Packet::OneRtt {
            dcid: ConnectionId::new(&[1; 8]).unwrap(),
            spin: false,
            key_phase: false,
            packet_number: 5,
            payload: PacketPayload::new(vec![Frame::Ping]),
        }
        .encode(Some(key))
        .unwrap();
        let dissected = dissect_udp_payload(&wire).unwrap();
        assert_eq!(dissected.messages[0].kind, MessageKind::OneRtt);
        assert_eq!(dissected.messages[0].version, None);
        assert!(dissected.messages[0].scid.is_none());
    }

    #[test]
    fn non_quic_payloads_rejected() {
        // Empty.
        assert_eq!(dissect_udp_payload(&[]), Err(DissectError::Empty));
        // DNS-ish bytes (fixed bit clear).
        assert!(matches!(
            dissect_udp_payload(&[0x12, 0x34, 0x01, 0x00, 0x00, 0x01]),
            Err(DissectError::NotQuic(_))
        ));
        // NTP-ish (first byte 0x23: short form but no fixed bit... 0x23
        // has 0x40 clear).
        assert!(matches!(
            dissect_udp_payload(&[0x23; 48]),
            Err(DissectError::NotQuic(_))
        ));
    }

    #[test]
    fn truncated_quic_rejected() {
        let wire = client_initial();
        assert!(matches!(
            dissect_udp_payload(&wire[..20]),
            Err(DissectError::Truncated(_))
        ));
    }

    #[test]
    fn unknown_version_rejected_as_bad_version() {
        // A structurally valid Initial whose version is garbage:
        // long+fixed bits, version 0xdeadbeef, empty DCID/SCID, empty
        // token, Length = 32, then 32 payload bytes.
        let mut wire = vec![0xc0, 0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x00, 0x20];
        wire.extend_from_slice(&[0u8; 32]);
        assert_eq!(
            dissect_udp_payload(&wire),
            Err(DissectError::BadVersion(0xdead_beef))
        );
    }

    #[test]
    fn oversized_cid_rejected_as_bad_cid() {
        // Long header, known version, then a DCID length of 0xff.
        let mut wire = vec![0xc0];
        wire.extend_from_slice(&Version::V1.to_wire().to_be_bytes());
        wire.push(0xff);
        wire.extend_from_slice(&[0u8; 64]);
        assert_eq!(dissect_udp_payload(&wire), Err(DissectError::BadCid(0xff)));
    }

    #[test]
    fn kind_labels() {
        assert_eq!(MessageKind::Initial.label(), "Initial");
        assert_eq!(
            MessageKind::VersionNegotiation.label(),
            "VersionNegotiation"
        );
        assert_eq!(MessageKind::OneRtt.label(), "1-RTT");
    }
}
