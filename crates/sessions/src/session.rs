//! Timeout-based sessionization (§5.1).
//!
//! Packets are grouped per source IP address; a session ends when the
//! source stays silent longer than the timeout. The paper sweeps the
//! timeout from 1 to 60 minutes (Fig. 4), finds the knee at ~5 minutes,
//! and notes the lower bound given by `timeout = ∞` (one session per
//! source).
//!
//! The [`Sessionizer`] is streaming: it consumes packets in time order
//! and emits sessions as they close, so a month of telescope traffic
//! never needs to sit in memory at once. An ablation bench compares this
//! against batch grouping (DESIGN.md §3).

use quicsand_events::{
    EventMeta, NoopSubscriber, SessionClosed, SessionOpened, SessionWidened, Subscriber,
};
use quicsand_net::{Duration, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Sessionizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Inactivity timeout that splits sessions. The paper selects
    /// 5 minutes (knee of Fig. 4, coherent with Moore et al. and
    /// Jonker et al.).
    pub timeout: Duration,
    /// How far behind the watermark a packet timestamp may lag and
    /// still be expected (in-network reordering admitted by the ingest
    /// guard). The idle sweep defers expiry by this much so a
    /// tolerated late packet can never find its session already
    /// closed — which would split sessions nondeterministically
    /// depending on sweep scheduling. `ZERO` reproduces the strict
    /// time-ordered behaviour.
    pub skew_tolerance: Duration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            timeout: Duration::from_mins(5),
            skew_tolerance: Duration::ZERO,
        }
    }
}

/// A closed session: all packets from one source with no gap exceeding
/// the timeout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// The source address (for backscatter sessions this is the flood
    /// *victim*; for request sessions the scanner).
    pub src: Ipv4Addr,
    /// Timestamp of the first packet.
    pub start: Timestamp,
    /// Timestamp of the last packet.
    pub end: Timestamp,
    /// Total packets in the session.
    pub packet_count: u64,
    /// Packets per 1-minute slot (minute bucket → count), the basis of
    /// the max-pps intensity metric (§5.2).
    pub minute_counts: HashMap<u64, u64>,
    /// Connection-ID key observed on this session's packets (hash of
    /// the client's source CID), when the capture exposed one. Lets
    /// [`link_migrations`] re-join a flow that changed source address
    /// mid-session. `None` for address-only sessionization.
    pub cid_key: Option<u64>,
}

impl Session {
    /// Session duration (last − first packet).
    pub fn duration(&self) -> Duration {
        self.end.saturating_since(self.start)
    }

    /// Maximum packet rate over all 1-minute slots, in packets per
    /// second — the intensity metric of §5.2 / Fig. 7(b).
    pub fn max_pps(&self) -> f64 {
        self.minute_counts
            .values()
            .map(|&c| c as f64 / 60.0)
            .fold(0.0, f64::max)
    }

    /// Mean packet rate over the whole session (packets / duration).
    pub fn mean_pps(&self) -> f64 {
        let secs = self.duration().as_secs_f64();
        if secs == 0.0 {
            self.packet_count as f64
        } else {
            self.packet_count as f64 / secs
        }
    }
}

#[derive(Debug, Clone)]
struct OpenSession {
    start: Timestamp,
    last: Timestamp,
    packet_count: u64,
    minute_counts: HashMap<u64, u64>,
    cid_key: Option<u64>,
}

impl OpenSession {
    fn close(self, src: Ipv4Addr) -> Session {
        Session {
            src,
            start: self.start,
            end: self.last,
            packet_count: self.packet_count,
            minute_counts: self.minute_counts,
            cid_key: self.cid_key,
        }
    }
}

/// Streaming sessionizer. Feed packets in non-decreasing time order;
/// closed sessions are buffered and drained via [`Sessionizer::drain`] /
/// [`Sessionizer::finish`].
///
/// Memory is bounded by the number of *recently active* sources: the
/// advancing packet-time watermark drives an idle-session sweep
/// ([`Sessionizer::expire`]), so a source that goes silent is closed
/// out and its state dropped even if it never sends again. Without
/// this, one-shot sources (the overwhelming majority at a telescope)
/// would accumulate in `open` for the whole capture.
#[derive(Debug)]
pub struct Sessionizer {
    config: SessionConfig,
    open: HashMap<Ipv4Addr, OpenSession>,
    closed: Vec<Session>,
    last_ts: Timestamp,
    /// Watermark of the last idle sweep (amortizes [`Self::expire`] to
    /// one scan of `open` per timeout interval).
    last_sweep: Timestamp,
    /// High-water mark of `open.len()` — surfaced in pipeline stats to
    /// verify the memory bound.
    peak_open: usize,
    /// Cumulative lifecycle counters, the sessionizer's contribution to
    /// the metrics layer.
    counters: SessionizerCounters,
}

/// Cumulative session-lifecycle counts over a [`Sessionizer`]'s life.
///
/// `opened` counts every fresh open-session insert (first packet of a
/// source, or the packet after a timeout gap); `closed` counts every
/// close the sessionizer has *buffered so far* — gap closes and idle
/// expiries, but not the final flush, which [`Sessionizer::finish`]
/// performs while consuming the sessionizer. Callers wanting totals
/// read [`Sessionizer::counters`] and [`Sessionizer::open_count`]
/// immediately before `finish()`: `closed + open_count` is the final
/// session count, and equals `opened`. `expired` is the subset of
/// `closed` released by the watermark sweep rather than a gap close.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SessionizerCounters {
    /// Open-session inserts.
    pub opened: u64,
    /// Sessions moved to the closed buffer (gap closes + expiries).
    pub closed: u64,
    /// Sessions closed by the idle sweep ([`Sessionizer::expire`]).
    pub expired: u64,
}

impl SessionizerCounters {
    /// Field-wise sum, for aggregating several sessionizers.
    pub fn merge(&mut self, other: &SessionizerCounters) {
        self.opened += other.opened;
        self.closed += other.closed;
        self.expired += other.expired;
    }
}

impl Sessionizer {
    /// Creates a sessionizer.
    pub fn new(config: SessionConfig) -> Self {
        Sessionizer {
            config,
            open: HashMap::new(),
            closed: Vec::new(),
            last_ts: Timestamp::EPOCH,
            last_sweep: Timestamp::EPOCH,
            peak_open: 0,
            counters: SessionizerCounters::default(),
        }
    }

    /// Offers one packet.
    ///
    /// Input is expected to be *approximately* time-ordered: the
    /// watermark only advances (`max` of everything seen), and packets
    /// lagging behind it are tolerated rather than panicking — the
    /// ingest guard bounds the lag at its reorder tolerance, and
    /// [`SessionConfig::skew_tolerance`] keeps the idle sweep from
    /// expiring a session such a late packet would have joined. The
    /// seed version asserted strict ordering and crashed whole runs on
    /// one reordered record.
    pub fn offer(&mut self, ts: Timestamp, src: Ipv4Addr) {
        self.offer_with(ts, src, "", &EventMeta::lifecycle(), &mut NoopSubscriber);
    }

    /// [`Sessionizer::offer`] carrying an optional connection-ID key
    /// (see [`Sessionizer::offer_keyed_with`]).
    pub fn offer_keyed(&mut self, ts: Timestamp, src: Ipv4Addr, cid_key: Option<u64>) {
        self.offer_keyed_with(
            ts,
            src,
            cid_key,
            "",
            &EventMeta::lifecycle(),
            &mut NoopSubscriber,
        );
    }

    /// [`Sessionizer::offer`] with typed event emission: fresh inserts
    /// emit `session_opened`, backwards bounds-widening by an admissible
    /// late packet emits `session_widened`, and gap closes (plus any
    /// expiries released by the internal amortized sweep) emit
    /// `session_closed`. `channel` labels which per-protocol sessionizer
    /// this is (`quic` / `tcp_icmp`). With [`NoopSubscriber`] this
    /// monomorphizes to exactly the subscriber-free path.
    pub fn offer_with<S: Subscriber>(
        &mut self,
        ts: Timestamp,
        src: Ipv4Addr,
        channel: &str,
        meta: &EventMeta,
        subscriber: &mut S,
    ) {
        self.offer_keyed_with(ts, src, None, channel, meta, subscriber);
    }

    /// [`Sessionizer::offer_with`] carrying an optional connection-ID
    /// key extracted from the packet. The first `Some` key a session
    /// sees sticks to it (client CIDs are stable across address
    /// changes), tagging the closed [`Session`] so [`link_migrations`]
    /// can later re-join flows that migrated between source addresses.
    /// Keys never alter session boundaries here — sessionization stays
    /// strictly per source address, which is what keeps N-shard runs
    /// (sharded by source) equivalent to 1-shard runs.
    pub fn offer_keyed_with<S: Subscriber>(
        &mut self,
        ts: Timestamp,
        src: Ipv4Addr,
        cid_key: Option<u64>,
        channel: &str,
        meta: &EventMeta,
        subscriber: &mut S,
    ) {
        if ts > self.last_ts {
            self.last_ts = ts;
        }
        // Amortized idle sweep: once the watermark has advanced a full
        // timeout past the previous sweep, every session untouched
        // since then is expired. Keeps `open` at O(sources active in
        // the last 2·timeout window) at a cost of one scan per timeout
        // interval.
        if self.last_ts.saturating_since(self.last_sweep) > self.config.timeout {
            self.expire_with(self.last_ts, channel, meta, subscriber);
        }
        let minute = ts.minute_bucket();
        match self.open.get_mut(&src) {
            Some(open) if ts.saturating_since(open.last) <= self.config.timeout => {
                // A late packet (ts behind open.last) saturates to a
                // zero gap and joins; bounds only widen.
                if ts > open.last {
                    open.last = ts;
                }
                if ts < open.start {
                    if subscriber.enabled() {
                        subscriber.on_session_widened(
                            meta,
                            &SessionWidened {
                                at: ts,
                                src,
                                channel: channel.to_string(),
                                lead: open.start.saturating_since(ts),
                            },
                        );
                    }
                    open.start = ts;
                }
                open.packet_count += 1;
                *open.minute_counts.entry(minute).or_default() += 1;
                if open.cid_key.is_none() {
                    open.cid_key = cid_key;
                }
            }
            Some(open) => {
                // Gap exceeded: close and start fresh.
                let closed = std::mem::replace(
                    open,
                    OpenSession {
                        start: ts,
                        last: ts,
                        packet_count: 1,
                        minute_counts: HashMap::from([(minute, 1)]),
                        cid_key,
                    },
                );
                let closed = closed.close(src);
                if subscriber.enabled() {
                    subscriber.on_session_closed(
                        meta,
                        &SessionClosed {
                            at: ts,
                            src,
                            channel: channel.to_string(),
                            start: closed.start,
                            packet_count: closed.packet_count,
                            expired: false,
                        },
                    );
                    subscriber.on_session_opened(
                        meta,
                        &SessionOpened {
                            at: ts,
                            src,
                            channel: channel.to_string(),
                        },
                    );
                }
                self.closed.push(closed);
                self.counters.opened += 1;
                self.counters.closed += 1;
            }
            None => {
                self.open.insert(
                    src,
                    OpenSession {
                        start: ts,
                        last: ts,
                        packet_count: 1,
                        minute_counts: HashMap::from([(minute, 1)]),
                        cid_key,
                    },
                );
                if subscriber.enabled() {
                    subscriber.on_session_opened(
                        meta,
                        &SessionOpened {
                            at: ts,
                            src,
                            channel: channel.to_string(),
                        },
                    );
                }
                self.counters.opened += 1;
            }
        }
        if self.open.len() > self.peak_open {
            self.peak_open = self.open.len();
        }
    }

    /// Closes every open session whose source has been idle longer than
    /// the timeout as of the watermark `now`, moving them to the closed
    /// buffer. Sessions are closed in deterministic `(start, src)`
    /// order regardless of hash-map iteration order.
    ///
    /// The produced sessions are identical to what a later gap-close
    /// (on the source's next packet) or [`Sessionizer::finish`] would
    /// emit — expiry only changes *when* state is released, never the
    /// session boundaries.
    pub fn expire(&mut self, now: Timestamp) {
        self.expire_with(now, "", &EventMeta::lifecycle(), &mut NoopSubscriber);
    }

    /// [`Sessionizer::expire`] with typed event emission: each expiry
    /// emits a `session_closed` event flagged `expired` (at the sweep
    /// watermark, in the same deterministic close order).
    pub fn expire_with<S: Subscriber>(
        &mut self,
        now: Timestamp,
        channel: &str,
        meta: &EventMeta,
        subscriber: &mut S,
    ) {
        // Defer expiry by the skew tolerance: a packet admitted while
        // lagging `skew_tolerance` behind the watermark must still find
        // its session open, whatever the sweep schedule. Micros
        // arithmetic avoids an intermediate `Duration` overflow.
        let horizon = self.config.timeout.as_micros() + self.config.skew_tolerance.as_micros();
        let mut expired: Vec<Ipv4Addr> = self
            .open
            .iter()
            .filter(|(_, open)| now.saturating_since(open.last).as_micros() > horizon)
            .map(|(src, _)| *src)
            .collect();
        if expired.is_empty() {
            self.last_sweep = now;
            return;
        }
        // Deterministic close order (drain() exposes this ordering).
        expired.sort_by_key(|src| {
            let open = &self.open[src];
            (open.start, *src)
        });
        for src in expired {
            let open = self.open.remove(&src).expect("expired source is open");
            let session = open.close(src);
            if subscriber.enabled() {
                subscriber.on_session_closed(
                    meta,
                    &SessionClosed {
                        at: now,
                        src,
                        channel: channel.to_string(),
                        start: session.start,
                        packet_count: session.packet_count,
                        expired: true,
                    },
                );
            }
            self.closed.push(session);
            self.counters.closed += 1;
            self.counters.expired += 1;
        }
        self.last_sweep = now;
    }

    /// Takes the sessions closed so far, after first expiring every
    /// session already idle past the timeout at the current watermark.
    /// A source that times out therefore shows up here without waiting
    /// for its next packet (which may never come) or for
    /// [`Sessionizer::finish`].
    pub fn drain(&mut self) -> Vec<Session> {
        self.expire(self.last_ts);
        std::mem::take(&mut self.closed)
    }

    /// [`Sessionizer::drain`] with typed event emission for the expiry
    /// sweep it performs.
    pub fn drain_with<S: Subscriber>(
        &mut self,
        channel: &str,
        meta: &EventMeta,
        subscriber: &mut S,
    ) -> Vec<Session> {
        self.expire_with(self.last_ts, channel, meta, subscriber);
        std::mem::take(&mut self.closed)
    }

    /// Closes every open session and returns all remaining ones.
    pub fn finish(self) -> Vec<Session> {
        self.finish_with("", &EventMeta::lifecycle(), &mut NoopSubscriber)
    }

    /// [`Sessionizer::finish`] with typed event emission: the final
    /// flush emits `session_closed` (not `expired` — the stream ended)
    /// for every still-open session, in output order.
    pub fn finish_with<S: Subscriber>(
        mut self,
        channel: &str,
        meta: &EventMeta,
        subscriber: &mut S,
    ) -> Vec<Session> {
        let mut sessions = std::mem::take(&mut self.closed);
        let mut flushed: Vec<Session> = self
            .open
            .drain()
            .map(|(src, open)| open.close(src))
            .collect();
        // Deterministic output (and emission) order regardless of
        // hash-map iteration.
        flushed.sort_by_key(|s| (s.start, s.src));
        if subscriber.enabled() {
            for s in &flushed {
                subscriber.on_session_closed(
                    meta,
                    &SessionClosed {
                        at: s.end,
                        src: s.src,
                        channel: channel.to_string(),
                        start: s.start,
                        packet_count: s.packet_count,
                        expired: false,
                    },
                );
            }
        }
        sessions.extend(flushed);
        sessions.sort_by_key(|s| (s.start, s.src));
        sessions
    }

    /// Number of currently open sessions.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// High-water mark of concurrently open sessions over the
    /// sessionizer's lifetime — the memory bound the idle sweep
    /// enforces.
    pub fn peak_open_count(&self) -> usize {
        self.peak_open
    }

    /// Number of closed sessions currently buffered (i.e. what the next
    /// [`Sessionizer::drain`] would return at minimum).
    pub fn closed_count(&self) -> usize {
        self.closed.len()
    }

    /// Cumulative lifecycle counters so far (see
    /// [`SessionizerCounters`] for the finish-flush caveat).
    pub fn counters(&self) -> SessionizerCounters {
        self.counters
    }
}

/// Convenience: sessionizes a time-ordered `(ts, src)` stream in one
/// call.
pub fn sessionize<I: IntoIterator<Item = (Timestamp, Ipv4Addr)>>(
    packets: I,
    config: SessionConfig,
) -> Vec<Session> {
    let mut s = Sessionizer::new(config);
    for (ts, src) in packets {
        s.offer(ts, src);
    }
    s.finish()
}

/// One mid-flow address change re-joined by [`link_migrations`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationLink {
    /// The connection-ID key both session halves carried.
    pub cid_key: u64,
    /// Source address before the migration.
    pub from: Ipv4Addr,
    /// Source address after the migration.
    pub to: Ipv4Addr,
    /// First packet timestamp at the new address.
    pub at: Timestamp,
    /// Silence between the halves (zero when they overlap).
    pub gap: Duration,
}

/// Re-joins sessions whose flow migrated between source addresses.
///
/// Address-keyed sessionization splits a flow at every source-address
/// change even when the connection ID proves continuity (the Buchet et
/// al. migration pattern). This post-pass runs on the *merged, sorted*
/// session list — after any sharded sessionizers have been combined —
/// so its output is identical at every shard count: sessions sharing a
/// [`Session::cid_key`] are scanned in `(start, src)` order, and each
/// session whose start lies within `timeout` of the previous session's
/// end *at a different address* is folded into it (the earliest address
/// stays canonical). Same-address pairs are never folded: the
/// sessionizer only splits same-source flows on gaps *exceeding* the
/// timeout, so such a pair is a genuine timeout split.
///
/// Returns one [`MigrationLink`] per fold, in `(at, cid_key)` order;
/// `links.len()` is the `sessions_migrated` count and the input shrinks
/// by exactly that many sessions (packet counts are conserved).
pub fn link_migrations(sessions: &mut Vec<Session>, timeout: Duration) -> Vec<MigrationLink> {
    let mut by_key: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, s) in sessions.iter().enumerate() {
        if let Some(key) = s.cid_key {
            by_key.entry(key).or_default().push(i);
        }
    }
    let mut keys: Vec<u64> = by_key.keys().copied().collect();
    keys.sort_unstable();

    let mut links = Vec::new();
    let mut dropped = vec![false; sessions.len()];
    for key in keys {
        let mut group = by_key.remove(&key).expect("key collected above");
        if group.len() < 2 {
            continue;
        }
        group.sort_by_key(|&i| (sessions[i].start, sessions[i].src));
        let mut head = group[0];
        for &next in &group[1..] {
            let gap = sessions[next].start.saturating_since(sessions[head].end);
            if gap <= timeout && sessions[next].src != sessions[head].src {
                links.push(MigrationLink {
                    cid_key: key,
                    from: sessions[head].src,
                    to: sessions[next].src,
                    at: sessions[next].start,
                    gap,
                });
                let (merged, absorbed) = if head < next {
                    let (a, b) = sessions.split_at_mut(next);
                    (&mut a[head], &mut b[0])
                } else {
                    let (a, b) = sessions.split_at_mut(head);
                    (&mut b[0], &mut a[next])
                };
                merged.end = merged.end.max(absorbed.end);
                merged.start = merged.start.min(absorbed.start);
                merged.packet_count += absorbed.packet_count;
                for (minute, count) in absorbed.minute_counts.drain() {
                    *merged.minute_counts.entry(minute).or_default() += count;
                }
                dropped[next] = true;
            } else {
                head = next;
            }
        }
    }
    if !links.is_empty() {
        let mut keep = dropped.iter().map(|d| !d);
        sessions.retain(|_| keep.next().expect("flag per session"));
        sessions.sort_by_key(|s| (s.start, s.src));
        links.sort_by_key(|l| (l.at, l.cid_key));
    }
    links
}

/// Counts the sessions produced by each timeout in `timeouts`, plus the
/// `timeout = ∞` floor (unique sources) — the Fig. 4 sweep.
///
/// Computed from per-source inter-arrival gaps in a single pass:
/// `sessions(timeout) = #sources + #gaps_exceeding(timeout)`, which
/// avoids rerunning the sessionizer per timeout value. The returned
/// pairs preserve the order of `timeouts`.
pub fn timeout_sweep<I: IntoIterator<Item = (Timestamp, Ipv4Addr)>>(
    packets: I,
    timeouts: &[Duration],
) -> TimeoutSweep {
    let mut last_seen: HashMap<Ipv4Addr, Timestamp> = HashMap::new();
    let mut gaps: Vec<Duration> = Vec::new();
    let mut sources = 0u64;
    for (ts, src) in packets {
        match last_seen.get_mut(&src) {
            Some(last) => {
                gaps.push(ts.saturating_since(*last));
                *last = ts;
            }
            None => {
                sources += 1;
                last_seen.insert(src, ts);
            }
        }
    }
    gaps.sort_unstable();
    let counts = timeouts
        .iter()
        .map(|timeout| {
            // Gaps strictly greater than the timeout split sessions.
            let split = gaps.partition_point(|g| *g <= *timeout);
            let exceeding = (gaps.len() - split) as u64;
            (*timeout, sources + exceeding)
        })
        .collect();
    TimeoutSweep {
        counts,
        infinity_floor: sources,
    }
}

/// Result of [`timeout_sweep`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeoutSweep {
    /// `(timeout, session count)` in input order.
    pub counts: Vec<(Duration, u64)>,
    /// Session count for `timeout = ∞` (one session per source).
    pub infinity_floor: u64,
}

impl TimeoutSweep {
    /// Finds the knee: the smallest timeout after which the relative
    /// reduction per additional step drops below `threshold` (e.g. 0.01
    /// for 1 %). Assumes `counts` is ordered by increasing timeout.
    pub fn knee(&self, threshold: f64) -> Option<Duration> {
        for window in self.counts.windows(2) {
            let (t, c0) = window[0];
            let (_, c1) = window[1];
            if c0 == 0 {
                return Some(t);
            }
            let reduction = (c0 as f64 - c1 as f64) / c0 as f64;
            if reduction < threshold {
                return Some(t);
            }
        }
        self.counts.last().map(|(t, _)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    fn cfg(timeout_secs: u64) -> SessionConfig {
        SessionConfig {
            timeout: Duration::from_secs(timeout_secs),
            skew_tolerance: Duration::ZERO,
        }
    }

    fn cfg_skew(timeout_secs: u64, skew_secs: u64) -> SessionConfig {
        SessionConfig {
            timeout: Duration::from_secs(timeout_secs),
            skew_tolerance: Duration::from_secs(skew_secs),
        }
    }

    #[test]
    fn single_source_single_session() {
        let packets = (0..10).map(|i| (Timestamp::from_secs(i * 10), ip(1)));
        let sessions = sessionize(packets, cfg(300));
        assert_eq!(sessions.len(), 1);
        let s = &sessions[0];
        assert_eq!(s.src, ip(1));
        assert_eq!(s.packet_count, 10);
        assert_eq!(s.duration().as_secs(), 90);
    }

    #[test]
    fn gap_splits_sessions() {
        let mut packets = vec![
            (Timestamp::from_secs(0), ip(1)),
            (Timestamp::from_secs(10), ip(1)),
        ];
        // Gap of 301 s > 300 s timeout.
        packets.push((Timestamp::from_secs(311), ip(1)));
        let sessions = sessionize(packets, cfg(300));
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].packet_count, 2);
        assert_eq!(sessions[1].packet_count, 1);
    }

    #[test]
    fn gap_exactly_timeout_does_not_split() {
        let packets = vec![
            (Timestamp::from_secs(0), ip(1)),
            (Timestamp::from_secs(300), ip(1)),
        ];
        let sessions = sessionize(packets, cfg(300));
        assert_eq!(sessions.len(), 1);
    }

    #[test]
    fn sources_are_independent() {
        let packets = vec![
            (Timestamp::from_secs(0), ip(1)),
            (Timestamp::from_secs(1), ip(2)),
            (Timestamp::from_secs(2), ip(1)),
            (Timestamp::from_secs(3), ip(3)),
        ];
        let sessions = sessionize(packets, cfg(300));
        assert_eq!(sessions.len(), 3);
        let total: u64 = sessions.iter().map(|s| s.packet_count).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn max_pps_uses_minute_slots() {
        // 120 packets in minute 0, 6 packets in minute 1.
        let mut packets = Vec::new();
        for i in 0..120u64 {
            packets.push((Timestamp::from_micros(i * 500_000), ip(1)));
        }
        for i in 0..6u64 {
            packets.push((Timestamp::from_secs(60 + i), ip(1)));
        }
        let sessions = sessionize(packets, cfg(300));
        assert_eq!(sessions.len(), 1);
        let s = &sessions[0];
        assert!((s.max_pps() - 2.0).abs() < 1e-9, "max_pps={}", s.max_pps());
    }

    #[test]
    fn mean_pps() {
        let packets = vec![
            (Timestamp::from_secs(0), ip(1)),
            (Timestamp::from_secs(10), ip(1)),
        ];
        let sessions = sessionize(packets, cfg(300));
        assert!((sessions[0].mean_pps() - 0.2).abs() < 1e-9);
        // Single-packet session: duration 0, mean = count.
        let single = sessionize(vec![(Timestamp::from_secs(0), ip(2))], cfg(300));
        assert_eq!(single[0].mean_pps(), 1.0);
    }

    #[test]
    fn late_packet_joins_open_session_without_panicking() {
        // The seed sessionizer panicked on any backwards timestamp;
        // bounded reordering is now tolerated: the late packet joins,
        // the watermark never regresses, and the session bounds widen
        // to cover it.
        let mut s = Sessionizer::new(cfg(300));
        s.offer(Timestamp::from_secs(10), ip(1));
        s.offer(Timestamp::from_secs(5), ip(1));
        s.offer(Timestamp::from_secs(12), ip(2));
        let sessions = s.finish();
        assert_eq!(sessions.len(), 2);
        let one = sessions.iter().find(|x| x.src == ip(1)).unwrap();
        assert_eq!(one.packet_count, 2);
        assert_eq!(one.start, Timestamp::from_secs(5));
        assert_eq!(one.end, Timestamp::from_secs(10));
    }

    #[test]
    fn late_packet_before_session_start_widens_start() {
        let mut s = Sessionizer::new(cfg(300));
        s.offer(Timestamp::from_secs(100), ip(1));
        s.offer(Timestamp::from_secs(40), ip(1));
        let sessions = s.finish();
        assert_eq!(sessions[0].start, Timestamp::from_secs(40));
        assert_eq!(sessions[0].end, Timestamp::from_secs(100));
        assert_eq!(sessions[0].duration().as_secs(), 60);
    }

    #[test]
    fn skew_tolerance_defers_expiry_for_tolerated_late_packets() {
        // ip(1) last speaks at t=0. Other traffic advances the
        // watermark to t=timeout+skew−1; a late ip(1) packet lagging
        // `skew` behind the watermark must still join its session —
        // under ZERO tolerance an interleaved sweep could have expired
        // it, splitting the session depending on sweep schedule.
        let timeout = 10;
        let skew = 5;
        let mut s = Sessionizer::new(cfg_skew(timeout, skew));
        s.offer(Timestamp::from_secs(0), ip(1));
        s.offer(Timestamp::from_secs(timeout + skew - 1), ip(2));
        // Force a sweep at the current watermark: must NOT expire ip(1)
        // (idle timeout+skew−1 ≤ timeout+skew).
        s.expire(Timestamp::from_secs(timeout + skew - 1));
        assert_eq!(s.open_count(), 2, "ip(1) must survive the sweep");
        // The tolerated late packet: lags skew−1 behind the watermark,
        // per-source gap timeout exactly → joins.
        s.offer(Timestamp::from_secs(timeout), ip(1));
        let sessions = s.finish();
        let one = sessions.iter().find(|x| x.src == ip(1)).unwrap();
        assert_eq!(one.packet_count, 2, "late packet must join, not split");
    }

    #[test]
    fn drain_and_open_count() {
        let mut s = Sessionizer::new(cfg(10));
        s.offer(Timestamp::from_secs(0), ip(1));
        s.offer(Timestamp::from_secs(0), ip(2));
        assert_eq!(s.open_count(), 2);
        assert!(s.drain().is_empty());
        // The packet at t=100 advances the watermark past both idle
        // sessions: ip(1)'s old session and ip(2)'s are expired, and
        // ip(1) starts a fresh session.
        s.offer(Timestamp::from_secs(100), ip(1));
        let drained = s.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(s.open_count(), 1);
    }

    #[test]
    fn drain_yields_timed_out_sessions_without_further_packets() {
        // Regression: drain() must surface sessions whose source went
        // silent past the timeout, even if that source never sends
        // again. Previously such sessions stayed in `open` until
        // finish(), growing memory with every one-shot source.
        let mut s = Sessionizer::new(cfg(10));
        s.offer(Timestamp::from_secs(0), ip(1));
        s.offer(Timestamp::from_secs(2), ip(1));
        // Another source advances the watermark far past ip(1)+timeout.
        s.offer(Timestamp::from_secs(60), ip(2));
        let drained = s.drain();
        assert_eq!(drained.len(), 1, "idle ip(1) session must drain");
        assert_eq!(drained[0].src, ip(1));
        assert_eq!(drained[0].packet_count, 2);
        assert_eq!(drained[0].end, Timestamp::from_secs(2));
        // The pre-fix behaviour — idle session still open — is gone.
        assert_eq!(s.open_count(), 1);
    }

    #[test]
    fn expire_bounds_open_sessions_for_one_shot_sources() {
        // 200 one-shot sources spread over time, timeout 10 s, one
        // packet every 1 s: the amortized sweep keeps `open` bounded by
        // the ~2·timeout window, not the full source count.
        let mut s = Sessionizer::new(cfg(10));
        for i in 0..200u64 {
            s.offer(Timestamp::from_secs(i), ip((i % 250) as u8));
        }
        assert!(
            s.peak_open_count() <= 23,
            "peak open {} must stay within the 2·timeout window",
            s.peak_open_count()
        );
        let total: u64 = s.finish().iter().map(|x| x.packet_count).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn expire_is_invisible_to_finish_output() {
        // Interleaving drains (which expire) must not change the final
        // session set relative to a run that only calls finish().
        let packets: Vec<(Timestamp, Ipv4Addr)> = (0..300u64)
            .map(|i| (Timestamp::from_secs(i * 7 % 2_000), ip((i % 9) as u8)))
            .collect();
        let mut ordered = packets;
        ordered.sort_by_key(|(ts, _)| *ts);

        let baseline = sessionize(ordered.iter().copied(), cfg(60));

        let mut s = Sessionizer::new(cfg(60));
        let mut collected = Vec::new();
        for (i, (ts, src)) in ordered.iter().enumerate() {
            s.offer(*ts, *src);
            if i % 37 == 0 {
                collected.extend(s.drain());
            }
        }
        collected.extend(s.finish());
        collected.sort_by_key(|x| (x.start, x.src));
        assert_eq!(collected, baseline);
    }

    #[test]
    fn expire_with_stale_watermark_is_a_no_op() {
        let mut s = Sessionizer::new(cfg(10));
        s.offer(Timestamp::from_secs(100), ip(1));
        // A watermark in the past can never make a session idle.
        s.expire(Timestamp::from_secs(0));
        assert_eq!(s.open_count(), 1);
        assert_eq!(s.closed_count(), 0);
    }

    #[test]
    fn finish_sorted_by_start() {
        let packets = vec![
            (Timestamp::from_secs(0), ip(5)),
            (Timestamp::from_secs(1), ip(4)),
            (Timestamp::from_secs(2), ip(3)),
        ];
        let sessions = sessionize(packets, cfg(300));
        let starts: Vec<u64> = sessions.iter().map(|s| s.start.as_secs()).collect();
        assert_eq!(starts, vec![0, 1, 2]);
    }

    #[test]
    fn timeout_sweep_matches_direct_sessionization() {
        // 3 sources with assorted gaps.
        let packets = vec![
            (Timestamp::from_secs(0), ip(1)),
            (Timestamp::from_secs(100), ip(1)),
            (Timestamp::from_secs(400), ip(1)),
            (Timestamp::from_secs(0), ip(2)),
            (Timestamp::from_secs(1000), ip(2)),
            (Timestamp::from_secs(500), ip(3)),
        ];
        let mut ordered = packets.clone();
        ordered.sort_by_key(|(ts, _)| *ts);
        let timeouts: Vec<Duration> = [60u64, 300, 600, 1200]
            .iter()
            .map(|s| Duration::from_secs(*s))
            .collect();
        let sweep = timeout_sweep(ordered.iter().copied(), &timeouts);
        for (timeout, count) in &sweep.counts {
            let direct = sessionize(
                ordered.iter().copied(),
                SessionConfig {
                    timeout: *timeout,
                    skew_tolerance: Duration::ZERO,
                },
            );
            assert_eq!(direct.len() as u64, *count, "timeout {timeout} mismatch");
        }
        assert_eq!(sweep.infinity_floor, 3);
    }

    #[test]
    fn sweep_is_monotone_decreasing() {
        let packets: Vec<_> = (0..500u64)
            .map(|i| (Timestamp::from_secs(i * 37 % 10_000), ip((i % 20) as u8)))
            .collect();
        let mut ordered = packets;
        ordered.sort_by_key(|(ts, _)| *ts);
        let timeouts: Vec<Duration> = (1..=60).map(Duration::from_mins).collect();
        let sweep = timeout_sweep(ordered, &timeouts);
        for w in sweep.counts.windows(2) {
            assert!(w[0].1 >= w[1].1, "session count must not increase");
        }
        assert!(sweep.counts.last().unwrap().1 >= sweep.infinity_floor);
    }

    #[test]
    fn knee_detection() {
        let sweep = TimeoutSweep {
            counts: vec![
                (Duration::from_mins(1), 1000),
                (Duration::from_mins(2), 800),
                (Duration::from_mins(3), 700),
                (Duration::from_mins(4), 660),
                (Duration::from_mins(5), 655),
                (Duration::from_mins(6), 654),
            ],
            infinity_floor: 600,
        };
        // With a 1 % threshold the knee lands where reduction < 1 %:
        // 4→5 min reduces by 5/660 ≈ 0.76 % ⇒ knee at 4? No: windows
        // are evaluated in order; 1→2 is 20 %, 2→3 is 12.5 %, 3→4 is
        // 5.7 %, 4→5 is 0.76 % < 1 % ⇒ returns 4 min.
        assert_eq!(sweep.knee(0.01), Some(Duration::from_mins(4)));
        // A looser threshold (6 %) stops earlier: 3→4 min reduces by
        // only 5.7 %.
        assert_eq!(sweep.knee(0.06), Some(Duration::from_mins(3)));
    }

    #[test]
    fn session_events_cover_the_lifecycle() {
        use quicsand_events::{Event, VecSubscriber};
        let mut sub = VecSubscriber::new();
        let mut s = Sessionizer::new(cfg(10));
        let meta = EventMeta::lifecycle();
        // Fresh open, then a backwards widening by a late packet.
        s.offer_with(Timestamp::from_secs(5), ip(1), "quic", &meta, &mut sub);
        s.offer_with(Timestamp::from_secs(2), ip(1), "quic", &meta, &mut sub);
        // Second source; its t=15 packet triggers a sweep that ip(1)
        // survives (idle exactly the timeout), advancing last_sweep.
        s.offer_with(Timestamp::from_secs(9), ip(2), "quic", &meta, &mut sub);
        s.offer_with(Timestamp::from_secs(15), ip(2), "quic", &meta, &mut sub);
        // The watermark is within a timeout of the last sweep, so no
        // sweep runs here and ip(1)'s 20 s gap takes the gap-close
        // branch: close + fresh open.
        s.offer_with(Timestamp::from_secs(25), ip(1), "quic", &meta, &mut sub);
        // Explicit sweep expires both remaining sessions.
        s.expire_with(Timestamp::from_secs(400), "quic", &meta, &mut sub);
        // Final flush of a still-open session.
        s.offer_with(Timestamp::from_secs(401), ip(3), "quic", &meta, &mut sub);
        let sessions = s.finish_with("quic", &meta, &mut sub);
        assert_eq!(sessions.len(), 4);

        let names: Vec<&str> = sub.events.iter().map(|(_, e)| e.name()).collect();
        assert_eq!(
            names,
            [
                "quicsand:session_opened",
                "quicsand:session_widened",
                "quicsand:session_opened",
                "quicsand:session_closed",
                "quicsand:session_opened",
                "quicsand:session_closed",
                "quicsand:session_closed",
                "quicsand:session_opened",
                "quicsand:session_closed",
            ]
        );
        // The widening reports how far the start moved.
        let Event::SessionWidened(w) = &sub.events[1].1 else {
            panic!("expected widened event");
        };
        assert_eq!(w.lead, Duration::from_secs(3));
        // The gap close is not an expiry; the sweep closes are.
        let Event::SessionClosed(gap) = &sub.events[3].1 else {
            panic!("expected closed event");
        };
        assert!(!gap.expired);
        assert_eq!(gap.src, ip(1));
        assert_eq!(gap.start, Timestamp::from_secs(2));
        assert_eq!(gap.packet_count, 2);
        for i in [5, 6] {
            let Event::SessionClosed(swept) = &sub.events[i].1 else {
                panic!("expected closed event");
            };
            assert!(swept.expired);
        }
        // Expiry order is deterministic: by (start, src).
        assert!(sub.events[5].1.data_value().get("src").is_some());
        let Event::SessionClosed(flush) = &sub.events[8].1 else {
            panic!("expected closed event");
        };
        assert!(!flush.expired);
        assert_eq!(flush.src, ip(3));
    }

    fn offer_keyed(s: &mut Sessionizer, ts: u64, src: Ipv4Addr, key: u64) {
        s.offer_keyed_with(
            Timestamp::from_secs(ts),
            src,
            Some(key),
            "",
            &EventMeta::lifecycle(),
            &mut NoopSubscriber,
        );
    }

    #[test]
    fn address_change_mid_flow_splits_without_linking() {
        // Failing-first shape of the migration bug: the same connection
        // (identical CID key) moves from ip(1) to ip(2) with only 5 s of
        // silence — far inside the timeout — yet address-keyed
        // sessionization yields two sessions. link_migrations is the
        // fix; this pins the raw behaviour it corrects.
        let mut s = Sessionizer::new(cfg(300));
        offer_keyed(&mut s, 0, ip(1), 0xabc);
        offer_keyed(&mut s, 10, ip(1), 0xabc);
        offer_keyed(&mut s, 15, ip(2), 0xabc);
        offer_keyed(&mut s, 20, ip(2), 0xabc);
        let sessions = s.finish();
        assert_eq!(sessions.len(), 2, "raw sessionization splits on address");
        assert!(sessions.iter().all(|x| x.cid_key == Some(0xabc)));
    }

    #[test]
    fn link_migrations_rejoins_migrated_flow() {
        let mut s = Sessionizer::new(cfg(300));
        offer_keyed(&mut s, 0, ip(1), 0xabc);
        offer_keyed(&mut s, 10, ip(1), 0xabc);
        offer_keyed(&mut s, 15, ip(2), 0xabc);
        offer_keyed(&mut s, 20, ip(2), 0xabc);
        // An unrelated keyed flow that does not migrate.
        offer_keyed(&mut s, 0, ip(9), 0xdef);
        let mut sessions = s.finish();
        let links = link_migrations(&mut sessions, Duration::from_secs(300));
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].from, ip(1));
        assert_eq!(links[0].to, ip(2));
        assert_eq!(links[0].at, Timestamp::from_secs(15));
        assert_eq!(links[0].gap, Duration::from_secs(5));
        assert_eq!(sessions.len(), 2);
        let migrated = sessions.iter().find(|x| x.src == ip(1)).unwrap();
        assert_eq!(migrated.packet_count, 4, "one session spans the move");
        assert_eq!(migrated.start, Timestamp::from_secs(0));
        assert_eq!(migrated.end, Timestamp::from_secs(20));
        let slot_total: u64 = migrated.minute_counts.values().sum();
        assert_eq!(slot_total, 4);
    }

    #[test]
    fn link_migrations_chains_multiple_hops() {
        // ip(1) → ip(2) → ip(3) under one CID collapses to one session.
        let mut s = Sessionizer::new(cfg(300));
        offer_keyed(&mut s, 0, ip(1), 7);
        offer_keyed(&mut s, 100, ip(2), 7);
        offer_keyed(&mut s, 200, ip(3), 7);
        let mut sessions = s.finish();
        let links = link_migrations(&mut sessions, Duration::from_secs(300));
        assert_eq!(links.len(), 2);
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].src, ip(1), "earliest address is canonical");
        assert_eq!(sessions[0].packet_count, 3);
    }

    #[test]
    fn link_migrations_respects_timeout_and_address() {
        let timeout = Duration::from_secs(300);
        // Same CID, but the second half starts past the timeout: a
        // genuine new connection reusing the key — never folded.
        let mut s = Sessionizer::new(cfg(300));
        offer_keyed(&mut s, 0, ip(1), 1);
        offer_keyed(&mut s, 1000, ip(2), 1);
        let mut sessions = s.finish();
        assert!(link_migrations(&mut sessions, timeout).is_empty());
        assert_eq!(sessions.len(), 2);
        // Same source split by a timeout gap: never folded either (the
        // sessionizer only splits same-source flows past the timeout).
        let mut s = Sessionizer::new(cfg(10));
        offer_keyed(&mut s, 0, ip(1), 2);
        offer_keyed(&mut s, 500, ip(1), 2);
        let mut sessions = s.finish();
        assert!(link_migrations(&mut sessions, Duration::from_secs(10)).is_empty());
        assert_eq!(sessions.len(), 2);
        // Unkeyed sessions are untouched even when temporally adjacent.
        let mut s = Sessionizer::new(cfg(300));
        s.offer(Timestamp::from_secs(0), ip(1));
        s.offer(Timestamp::from_secs(5), ip(2));
        let mut sessions = s.finish();
        assert!(link_migrations(&mut sessions, timeout).is_empty());
        assert_eq!(sessions.len(), 2);
    }

    #[test]
    fn link_migrations_is_shard_order_invariant() {
        // The pass runs on the merged sorted list, so feeding the same
        // sessions from differently-sharded runs gives identical output.
        let mut one = Sessionizer::new(cfg(300));
        offer_keyed(&mut one, 0, ip(1), 5);
        offer_keyed(&mut one, 50, ip(2), 5);
        offer_keyed(&mut one, 60, ip(8), 9);
        let mut merged_single = one.finish();

        // "Two shards": ip(1)/ip(8) on shard A, ip(2) on shard B.
        let mut a = Sessionizer::new(cfg(300));
        offer_keyed(&mut a, 0, ip(1), 5);
        offer_keyed(&mut a, 60, ip(8), 9);
        let mut b = Sessionizer::new(cfg(300));
        offer_keyed(&mut b, 50, ip(2), 5);
        let mut merged_sharded = a.finish();
        merged_sharded.extend(b.finish());
        merged_sharded.sort_by_key(|s| (s.start, s.src));

        let links_single = link_migrations(&mut merged_single, Duration::from_secs(300));
        let links_sharded = link_migrations(&mut merged_sharded, Duration::from_secs(300));
        assert_eq!(links_single, links_sharded);
        assert_eq!(merged_single, merged_sharded);
        assert_eq!(merged_single.len(), 2);
    }

    proptest! {
        #[test]
        fn prop_link_migrations_conserves_packets(
            raw in proptest::collection::vec((0u64..2_000, 0u8..6, 0u64..4), 1..200),
        ) {
            let mut packets: Vec<(u64, Ipv4Addr, u64)> = raw
                .into_iter()
                .map(|(ts, src, key)| (ts, ip(src), key))
                .collect();
            packets.sort_by_key(|&(ts, src, _)| (ts, src));
            let mut s = Sessionizer::new(cfg(120));
            for &(ts, src, key) in &packets {
                offer_keyed(&mut s, ts, src, key);
            }
            let mut sessions = s.finish();
            let before = sessions.len();
            let links = link_migrations(&mut sessions, Duration::from_secs(120));
            prop_assert_eq!(before, sessions.len() + links.len());
            let total: u64 = sessions.iter().map(|x| x.packet_count).sum();
            prop_assert_eq!(total, packets.len() as u64);
            for w in sessions.windows(2) {
                prop_assert!((w[0].start, w[0].src) <= (w[1].start, w[1].src));
            }
        }
    }

    proptest! {
        #[test]
        fn prop_packets_conserved(
            raw in proptest::collection::vec((0u64..5_000, 0u8..10), 1..300),
        ) {
            let mut packets: Vec<(Timestamp, Ipv4Addr)> = raw
                .into_iter()
                .map(|(s, src)| (Timestamp::from_secs(s), ip(src)))
                .collect();
            packets.sort_by_key(|(ts, _)| *ts);
            let n = packets.len() as u64;
            let sessions = sessionize(packets, cfg(120));
            let total: u64 = sessions.iter().map(|s| s.packet_count).sum();
            prop_assert_eq!(total, n);
            // Session invariants.
            for s in &sessions {
                prop_assert!(s.end >= s.start);
                prop_assert!(s.packet_count >= 1);
                let slot_total: u64 = s.minute_counts.values().sum();
                prop_assert_eq!(slot_total, s.packet_count);
            }
        }

        #[test]
        fn prop_larger_timeout_never_more_sessions(
            raw in proptest::collection::vec((0u64..5_000, 0u8..6), 1..200),
            t1 in 1u64..100,
            t2 in 100u64..1000,
        ) {
            let mut packets: Vec<(Timestamp, Ipv4Addr)> = raw
                .into_iter()
                .map(|(s, src)| (Timestamp::from_secs(s), ip(src)))
                .collect();
            packets.sort_by_key(|(ts, _)| *ts);
            let small = sessionize(packets.iter().copied(), cfg(t1)).len();
            let large = sessionize(packets.iter().copied(), cfg(t2)).len();
            prop_assert!(large <= small);
        }
    }
}
