//! Metric bundles for sessionization and DoS detection.
//!
//! [`SessionMetrics`] mirrors the [`SessionizerCounters`] lifecycle
//! counts; [`DosMetrics`] counts detected attacks and records their
//! duration/size distributions. The same `DosMetrics` family is used by
//! the batch `detect_attacks` path and the live engine's alert closes,
//! which is what makes live-vs-batch histogram totals directly
//! comparable (they share metric names, buckets, and units).

use crate::dos::{Attack, AttackProtocol};
use crate::session::SessionizerCounters;
use quicsand_obs::{
    Counter, Gauge, Histogram, MetricsRegistry, Stability, ATTACK_DURATION_MICROS_BUCKETS,
    ATTACK_PACKETS_BUCKETS,
};

/// Session-lifecycle counters, one family per pipeline run (summed over
/// every sessionizer/channel/shard feeding that run).
#[derive(Debug, Clone)]
pub struct SessionMetrics {
    /// `quicsand_sessions_opened_total` — open-session inserts.
    pub opened_total: Counter,
    /// `quicsand_sessions_closed_total` — sessions closed (gap closes,
    /// idle expiries, and the end-of-run flush).
    pub closed_total: Counter,
    /// `quicsand_sessions_expired_total` — the watermark-sweep subset
    /// of the closes (volatile: a shard's watermark only advances on
    /// its own sources' packets, so the sweep/flush split depends on
    /// the shard count even though the total close count does not).
    pub expired_total: Counter,
    /// `quicsand_sessions_open` — instantaneous open sessions at the
    /// last sync point (volatile: a point-in-time reading).
    pub open: Gauge,
    /// `quicsand_sessions_migrated_total` — address-split session pairs
    /// re-joined by CID-keyed migration linking; each link reduces the
    /// final session count by one, so reconciliation reads
    /// `opened == final sessions + migrated`.
    pub migrated_total: Counter,
}

impl SessionMetrics {
    /// Registers the session family on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        SessionMetrics {
            opened_total: registry.counter(
                "quicsand_sessions_opened_total",
                "Open-session inserts across all sessionizers",
                Stability::Stable,
            ),
            closed_total: registry.counter(
                "quicsand_sessions_closed_total",
                "Sessions closed (gap, expiry, or end-of-run flush)",
                Stability::Stable,
            ),
            expired_total: registry.counter(
                "quicsand_sessions_expired_total",
                "Sessions closed by the idle watermark sweep",
                Stability::Volatile,
            ),
            open: registry.gauge(
                "quicsand_sessions_open",
                "Open sessions at the last sync point",
                Stability::Volatile,
            ),
            migrated_total: registry.counter(
                "quicsand_sessions_migrated_total",
                "Address-split sessions re-joined by CID migration linking",
                Stability::Stable,
            ),
        }
    }

    /// Publishes one sessionizer's final tally: its cumulative counters
    /// plus the `open_remaining` sessions its `finish()` flush closes.
    pub fn add_final(&self, counters: SessionizerCounters, open_remaining: u64) {
        self.opened_total.add(counters.opened);
        self.closed_total.add(counters.closed + open_remaining);
        self.expired_total.add(counters.expired);
    }
}

/// DoS-detection counters and distributions, labelled by protocol
/// family.
#[derive(Debug, Clone)]
pub struct DosMetrics {
    /// `quicsand_detect_attacks_total{protocol="quic"}`.
    pub attacks_quic: Counter,
    /// `quicsand_detect_attacks_total{protocol="tcp_icmp"}`.
    pub attacks_common: Counter,
    /// `quicsand_attack_duration_micros{protocol="quic"}`.
    pub duration_quic: Histogram,
    /// `quicsand_attack_duration_micros{protocol="tcp_icmp"}`.
    pub duration_common: Histogram,
    /// `quicsand_attack_packets{protocol="quic"}`.
    pub packets_quic: Histogram,
    /// `quicsand_attack_packets{protocol="tcp_icmp"}`.
    pub packets_common: Histogram,
}

impl DosMetrics {
    /// Registers the detection family on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        const ATTACKS: &str = "quicsand_detect_attacks_total";
        const ATTACKS_HELP: &str = "Inferred DoS attacks, by protocol family";
        const DURATION: &str = "quicsand_attack_duration_micros";
        const DURATION_HELP: &str = "Attack durations (last - first backscatter packet)";
        const PACKETS: &str = "quicsand_attack_packets";
        const PACKETS_HELP: &str = "Backscatter packets per attack";
        let counter = |p: &'static str| {
            registry.counter_with(ATTACKS, ATTACKS_HELP, Stability::Stable, &[("protocol", p)])
        };
        let duration = |p: &'static str| {
            registry.histogram_with(
                DURATION,
                DURATION_HELP,
                Stability::Stable,
                ATTACK_DURATION_MICROS_BUCKETS,
                &[("protocol", p)],
            )
        };
        let packets = |p: &'static str| {
            registry.histogram_with(
                PACKETS,
                PACKETS_HELP,
                Stability::Stable,
                ATTACK_PACKETS_BUCKETS,
                &[("protocol", p)],
            )
        };
        DosMetrics {
            attacks_quic: counter("quic"),
            attacks_common: counter("tcp_icmp"),
            duration_quic: duration("quic"),
            duration_common: duration("tcp_icmp"),
            packets_quic: packets("quic"),
            packets_common: packets("tcp_icmp"),
        }
    }

    /// Counts one detected attack and records its distributions.
    pub fn observe_attack(&self, attack: &Attack) {
        let duration = attack.end.saturating_since(attack.start).as_micros();
        match attack.protocol {
            AttackProtocol::Quic => {
                self.attacks_quic.inc();
                self.duration_quic.observe(duration);
                self.packets_quic.observe(attack.packet_count);
            }
            AttackProtocol::TcpIcmp => {
                self.attacks_common.inc();
                self.duration_common.observe(duration);
                self.packets_common.observe(attack.packet_count);
            }
        }
    }

    /// Records a whole detection batch.
    pub fn observe_attacks(&self, attacks: &[Attack]) {
        for attack in attacks {
            self.observe_attack(attack);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_net::Timestamp;
    use std::net::Ipv4Addr;

    fn attack(protocol: AttackProtocol, secs: u64, packets: u64) -> Attack {
        Attack {
            victim: Ipv4Addr::new(203, 0, 113, 1),
            protocol,
            start: Timestamp::from_secs(100),
            end: Timestamp::from_secs(100 + secs),
            packet_count: packets,
            max_pps: 1.0,
        }
    }

    #[test]
    fn attacks_route_by_protocol() {
        let registry = MetricsRegistry::new();
        let metrics = DosMetrics::register(&registry);
        metrics.observe_attack(&attack(AttackProtocol::Quic, 90, 40));
        metrics.observe_attack(&attack(AttackProtocol::TcpIcmp, 600, 4_000));
        metrics.observe_attack(&attack(AttackProtocol::TcpIcmp, 120, 80));
        assert_eq!(metrics.attacks_quic.get(), 1);
        assert_eq!(metrics.attacks_common.get(), 2);
        assert_eq!(metrics.duration_quic.sum(), 90_000_000);
        assert_eq!(metrics.packets_common.sum(), 4_080);
        assert_eq!(metrics.packets_common.count(), 2);
    }

    #[test]
    fn session_final_tally_accounts_for_finish_flush() {
        let registry = MetricsRegistry::new();
        let metrics = SessionMetrics::register(&registry);
        let counters = SessionizerCounters {
            opened: 10,
            closed: 7,
            expired: 3,
        };
        metrics.add_final(counters, 3);
        assert_eq!(metrics.opened_total.get(), 10);
        assert_eq!(
            metrics.closed_total.get(),
            10,
            "opened == closed after flush"
        );
        assert_eq!(metrics.expired_total.get(), 3);
    }
}
