//! # quicsand-sessions
//!
//! Event-level analyses of telescope traffic, reproducing §5 of the
//! paper:
//!
//! * [`session`] — timeout-based sessionization ("packets from a
//!   specific source belong to a single session as long as the
//!   inactivity period between them is no longer than the timeout",
//!   §5.1) plus the timeout-sweep used to pick the 5-minute knee
//!   (Fig. 4).
//! * [`dos`] — DoS attack inference with the Moore et al. thresholds
//!   (>25 packets, >60 s, >0.5 max pps over 1-minute slots) and the
//!   threshold-weight sweep of Appendix B (Fig. 10).
//! * [`multivector`] — correlation of QUIC floods with TCP/ICMP floods:
//!   concurrent / sequential / isolated classification (Fig. 8), overlap
//!   shares (Fig. 12) and sequential time gaps (Fig. 13).
//! * [`cdf`] — empirical distribution utilities backing every CDF
//!   figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod dos;
pub mod metrics;
pub mod multivector;
pub mod session;

pub use cdf::Cdf;
pub use dos::{detect_attacks, Attack, DosThresholds};
pub use metrics::{DosMetrics, SessionMetrics};
pub use multivector::{
    classify_multivector, classify_multivector_with, MultiVectorClass, MultiVectorReport,
    VectorKind, VectorSignals,
};
pub use session::{
    link_migrations, MigrationLink, Session, SessionConfig, Sessionizer, SessionizerCounters,
};
