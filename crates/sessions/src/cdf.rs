//! Empirical cumulative distribution functions.
//!
//! Every distribution figure in the paper (Figs. 6, 7, 12, 13) is a
//! CDF; this module provides the shared machinery: quantiles, medians,
//! point-mass queries and plot-ready step points.

use serde::{Deserialize, Serialize};

/// An empirical CDF over f64 samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are rejected with a panic — they
    /// indicate an upstream bug, not data).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "CDF samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The q-quantile (0 ≤ q ≤ 1) using nearest-rank; `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// The median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Fraction of samples ≤ `x` — i.e. F(x).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Plot-ready `(x, F(x))` step points, deduplicated on x.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut points: Vec<(f64, f64)> = Vec::new();
        for (i, x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match points.last_mut() {
                Some(last) if last.0 == *x => last.1 = y,
                _ => points.push((*x, y)),
            }
        }
        points
    }

    /// Renders the CDF as fixed quantile rows for textual reports
    /// (10 %, 25 %, 50 %, 75 %, 90 %, 99 %).
    pub fn summary_rows(&self) -> Vec<(f64, f64)> {
        [0.10, 0.25, 0.50, 0.75, 0.90, 0.99]
            .iter()
            .filter_map(|q| self.quantile(*q).map(|v| (*q, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantiles_on_known_data() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(cdf.median(), Some(3.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(5.0));
        assert_eq!(cdf.quantile(0.2), Some(1.0));
        assert_eq!(cdf.quantile(0.21), Some(2.0));
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(5.0));
        assert_eq!(cdf.mean(), Some(3.0));
        assert_eq!(cdf.len(), 5);
    }

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.median(), None);
        assert_eq!(cdf.mean(), None);
        assert_eq!(cdf.fraction_at_or_below(10.0), 0.0);
        assert!(cdf.points().is_empty());
        assert!(cdf.summary_rows().is_empty());
    }

    #[test]
    fn unsorted_input_handled() {
        let cdf = Cdf::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(cdf.median(), Some(3.0));
    }

    #[test]
    fn fraction_at_or_below() {
        let cdf = Cdf::new(vec![1.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn points_deduplicate_and_end_at_one() {
        let cdf = Cdf::new(vec![1.0, 1.0, 2.0]);
        let points = cdf.points();
        assert_eq!(points, vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn summary_rows_are_monotone() {
        let cdf = Cdf::new((1..=100).map(|i| i as f64).collect());
        let rows = cdf.summary_rows();
        assert_eq!(rows.len(), 6);
        for w in rows.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(rows[2], (0.5, 50.0));
    }

    proptest! {
        #[test]
        fn prop_quantile_monotone(samples in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let cdf = Cdf::new(samples);
            let mut last = f64::NEG_INFINITY;
            for i in 0..=10 {
                let q = i as f64 / 10.0;
                let v = cdf.quantile(q).unwrap();
                prop_assert!(v >= last);
                last = v;
            }
        }

        #[test]
        fn prop_fraction_and_quantile_consistent(samples in proptest::collection::vec(0f64..1000.0, 1..100)) {
            let cdf = Cdf::new(samples);
            let median = cdf.median().unwrap();
            prop_assert!(cdf.fraction_at_or_below(median) >= 0.5);
        }

        #[test]
        fn prop_points_end_at_one(samples in proptest::collection::vec(0f64..100.0, 1..50)) {
            let cdf = Cdf::new(samples);
            let points = cdf.points();
            prop_assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
            for w in points.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
                prop_assert!(w[0].1 < w[1].1 + 1e-12);
            }
        }
    }
}
