//! Multi-vector attack correlation (§5.2, Appendix C).
//!
//! Each QUIC flood is classified against the TCP/ICMP floods hitting the
//! same victim:
//!
//! * **Concurrent** — overlaps a common-protocol flood by ≥1 s
//!   (51 % in the paper, Fig. 8); the *overlap share* distribution is
//!   Fig. 12 (mean 95 %, three quarters fully parallel).
//! * **Sequential** — same victim, but disjoint in time (40 %); the
//!   *gap* to the nearest common flood is Fig. 13 (82 % > 1 h, mean
//!   36 h, tail up to 28 days).
//! * **Isolated** — the victim saw no TCP/ICMP flood at all (9 %).

use crate::dos::Attack;
use quicsand_net::Duration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Classification of one QUIC flood relative to common-protocol floods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MultiVectorClass {
    /// Overlaps a TCP/ICMP flood on the same victim by ≥1 s.
    Concurrent,
    /// Same victim attacked by TCP/ICMP, but never overlapping.
    Sequential,
    /// No TCP/ICMP flood against this victim in the whole period.
    Isolated,
}

impl MultiVectorClass {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            MultiVectorClass::Concurrent => "concurrent",
            MultiVectorClass::Sequential => "sequential",
            MultiVectorClass::Isolated => "isolated",
        }
    }
}

/// Per-QUIC-flood correlation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedAttack {
    /// Index into the QUIC attack slice passed to
    /// [`classify_multivector`].
    pub quic_index: usize,
    /// The classification.
    pub class: MultiVectorClass,
    /// For concurrent attacks: the share of the QUIC flood's duration
    /// that overlaps common floods (0..=1), computed against the
    /// best-overlapping common flood.
    pub overlap_share: Option<f64>,
    /// For sequential attacks: the gap to the nearest common flood.
    pub gap: Option<Duration>,
}

/// Aggregated multi-vector report (Fig. 8 + Figs. 12/13 inputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiVectorReport {
    /// Per-attack results, index-aligned with the QUIC attacks.
    pub attacks: Vec<CorrelatedAttack>,
    /// Count per class.
    pub class_counts: HashMap<String, usize>,
}

impl MultiVectorReport {
    /// Share of a class among all QUIC attacks.
    pub fn share(&self, class: MultiVectorClass) -> f64 {
        if self.attacks.is_empty() {
            return 0.0;
        }
        self.class_counts.get(class.label()).copied().unwrap_or(0) as f64
            / self.attacks.len() as f64
    }

    /// Overlap shares of concurrent attacks (Fig. 12 samples).
    pub fn overlap_shares(&self) -> Vec<f64> {
        self.attacks
            .iter()
            .filter_map(|a| a.overlap_share)
            .collect()
    }

    /// Gaps of sequential attacks in seconds (Fig. 13 samples).
    pub fn gap_seconds(&self) -> Vec<f64> {
        self.attacks
            .iter()
            .filter_map(|a| a.gap.map(|g| g.as_secs_f64()))
            .collect()
    }
}

/// Correlates QUIC floods with common-protocol floods.
pub fn classify_multivector(quic: &[Attack], common: &[Attack]) -> MultiVectorReport {
    // Index common floods per victim once.
    let mut by_victim: HashMap<Ipv4Addr, Vec<&Attack>> = HashMap::new();
    for attack in common {
        by_victim.entry(attack.victim).or_default().push(attack);
    }

    let mut attacks = Vec::with_capacity(quic.len());
    let mut class_counts: HashMap<String, usize> = HashMap::new();
    for (quic_index, q) in quic.iter().enumerate() {
        let result = match by_victim.get(&q.victim) {
            None => CorrelatedAttack {
                quic_index,
                class: MultiVectorClass::Isolated,
                overlap_share: None,
                gap: None,
            },
            Some(commons) => {
                let best_overlap = commons
                    .iter()
                    .map(|c| q.overlap_with(c))
                    .max()
                    .unwrap_or(Duration::ZERO);
                if best_overlap >= Duration::from_secs(1) {
                    let quic_duration = q.duration().as_secs_f64().max(1.0);
                    let share = (best_overlap.as_secs_f64() / quic_duration).min(1.0);
                    CorrelatedAttack {
                        quic_index,
                        class: MultiVectorClass::Concurrent,
                        overlap_share: Some(share),
                        gap: None,
                    }
                } else {
                    let gap = commons
                        .iter()
                        .map(|c| q.gap_to(c))
                        .min()
                        .unwrap_or(Duration::ZERO);
                    CorrelatedAttack {
                        quic_index,
                        class: MultiVectorClass::Sequential,
                        overlap_share: None,
                        gap: Some(gap),
                    }
                }
            }
        };
        *class_counts
            .entry(result.class.label().to_string())
            .or_default() += 1;
        attacks.push(result);
    }
    MultiVectorReport {
        attacks,
        class_counts,
    }
}

/// A single-victim attack timeline (Fig. 11): the attacks against one
/// victim in time order, labelled by protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VictimTimeline {
    /// The victim.
    pub victim: Ipv4Addr,
    /// `(protocol label, start, end)` rows in start order.
    pub rows: Vec<(String, u64, u64)>,
}

/// Builds the timeline of all attacks against `victim`.
pub fn victim_timeline(victim: Ipv4Addr, quic: &[Attack], common: &[Attack]) -> VictimTimeline {
    let mut rows: Vec<(String, u64, u64)> = quic
        .iter()
        .chain(common.iter())
        .filter(|a| a.victim == victim)
        .map(|a| {
            (
                a.protocol.label().to_string(),
                a.start.as_secs(),
                a.end.as_secs(),
            )
        })
        .collect();
    rows.sort_by_key(|(_, start, _)| *start);
    VictimTimeline { victim, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dos::AttackProtocol;
    use quicsand_net::Timestamp;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, last)
    }

    fn attack(victim: Ipv4Addr, protocol: AttackProtocol, start: u64, end: u64) -> Attack {
        Attack {
            victim,
            protocol,
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
            packet_count: 100,
            max_pps: 1.0,
        }
    }

    #[test]
    fn concurrent_detected_with_overlap_share() {
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 100, 200)];
        let common = vec![attack(ip(1), AttackProtocol::TcpIcmp, 150, 400)];
        let report = classify_multivector(&quic, &common);
        assert_eq!(report.attacks[0].class, MultiVectorClass::Concurrent);
        let share = report.attacks[0].overlap_share.unwrap();
        assert!((share - 0.5).abs() < 1e-9, "share={share}");
        assert_eq!(report.share(MultiVectorClass::Concurrent), 1.0);
    }

    #[test]
    fn full_overlap_share_is_one() {
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 100, 200)];
        let common = vec![attack(ip(1), AttackProtocol::TcpIcmp, 50, 500)];
        let report = classify_multivector(&quic, &common);
        assert_eq!(report.attacks[0].overlap_share, Some(1.0));
    }

    #[test]
    fn sequential_detected_with_nearest_gap() {
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 1000, 1100)];
        let common = vec![
            attack(ip(1), AttackProtocol::TcpIcmp, 0, 500), // gap 500
            attack(ip(1), AttackProtocol::TcpIcmp, 2000, 2500), // gap 900
        ];
        let report = classify_multivector(&quic, &common);
        assert_eq!(report.attacks[0].class, MultiVectorClass::Sequential);
        assert_eq!(report.attacks[0].gap.unwrap().as_secs(), 500);
        assert_eq!(report.gap_seconds(), vec![500.0]);
    }

    #[test]
    fn isolated_when_victim_unshared() {
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 0, 100)];
        let common = vec![attack(ip(2), AttackProtocol::TcpIcmp, 0, 100)];
        let report = classify_multivector(&quic, &common);
        assert_eq!(report.attacks[0].class, MultiVectorClass::Isolated);
        assert_eq!(report.share(MultiVectorClass::Isolated), 1.0);
        assert!(report.overlap_shares().is_empty());
        assert!(report.gap_seconds().is_empty());
    }

    #[test]
    fn sub_second_overlap_is_sequential() {
        // Touching intervals share zero full seconds.
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 100, 200)];
        let common = vec![attack(ip(1), AttackProtocol::TcpIcmp, 200, 300)];
        let report = classify_multivector(&quic, &common);
        assert_eq!(report.attacks[0].class, MultiVectorClass::Sequential);
        assert_eq!(report.attacks[0].gap.unwrap(), Duration::ZERO);
    }

    #[test]
    fn shares_sum_to_one() {
        let quic = vec![
            attack(ip(1), AttackProtocol::Quic, 100, 200), // concurrent
            attack(ip(1), AttackProtocol::Quic, 5000, 5100), // sequential
            attack(ip(9), AttackProtocol::Quic, 0, 100),   // isolated
        ];
        let common = vec![attack(ip(1), AttackProtocol::TcpIcmp, 150, 300)];
        let report = classify_multivector(&quic, &common);
        let total = report.share(MultiVectorClass::Concurrent)
            + report.share(MultiVectorClass::Sequential)
            + report.share(MultiVectorClass::Isolated);
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(report.class_counts["concurrent"], 1);
        assert_eq!(report.class_counts["sequential"], 1);
        assert_eq!(report.class_counts["isolated"], 1);
    }

    #[test]
    fn best_overlap_wins_among_multiple_commons() {
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 100, 200)];
        let common = vec![
            attack(ip(1), AttackProtocol::TcpIcmp, 190, 300), // 10 s overlap
            attack(ip(1), AttackProtocol::TcpIcmp, 100, 180), // 80 s overlap
        ];
        let report = classify_multivector(&quic, &common);
        assert!((report.attacks[0].overlap_share.unwrap() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let report = classify_multivector(&[], &[]);
        assert!(report.attacks.is_empty());
        assert_eq!(report.share(MultiVectorClass::Concurrent), 0.0);
    }

    #[test]
    fn timeline_orders_rows() {
        let quic = vec![
            attack(ip(1), AttackProtocol::Quic, 500, 600),
            attack(ip(1), AttackProtocol::Quic, 100, 200),
            attack(ip(2), AttackProtocol::Quic, 0, 50),
        ];
        let common = vec![attack(ip(1), AttackProtocol::TcpIcmp, 150, 400)];
        let timeline = victim_timeline(ip(1), &quic, &common);
        assert_eq!(timeline.rows.len(), 3);
        assert_eq!(timeline.rows[0], ("QUIC".to_string(), 100, 200));
        assert_eq!(timeline.rows[1], ("TCP/ICMP".to_string(), 150, 400));
        assert_eq!(timeline.rows[2], ("QUIC".to_string(), 500, 600));
    }

    #[test]
    fn class_labels() {
        assert_eq!(MultiVectorClass::Concurrent.label(), "concurrent");
        assert_eq!(MultiVectorClass::Sequential.label(), "sequential");
        assert_eq!(MultiVectorClass::Isolated.label(), "isolated");
    }
}
