//! Multi-vector attack correlation (§5.2, Appendix C).
//!
//! Each QUIC flood is classified against the TCP/ICMP floods hitting the
//! same victim:
//!
//! * **Concurrent** — overlaps a common-protocol flood by ≥1 s
//!   (51 % in the paper, Fig. 8); the *overlap share* distribution is
//!   Fig. 12 (mean 95 %, three quarters fully parallel).
//! * **Sequential** — same victim, but disjoint in time (40 %); the
//!   *gap* to the nearest common flood is Fig. 13 (82 % > 1 h, mean
//!   36 h, tail up to 28 days).
//! * **Isolated** — the victim saw no TCP/ICMP flood at all (9 %).

use crate::dos::Attack;
use quicsand_net::Duration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Classification of one QUIC flood relative to common-protocol floods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MultiVectorClass {
    /// Overlaps a TCP/ICMP flood on the same victim by ≥1 s.
    Concurrent,
    /// Same victim attacked by TCP/ICMP, but never overlapping.
    Sequential,
    /// No TCP/ICMP flood against this victim in the whole period.
    Isolated,
}

impl MultiVectorClass {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            MultiVectorClass::Concurrent => "concurrent",
            MultiVectorClass::Sequential => "sequential",
            MultiVectorClass::Isolated => "isolated",
        }
    }
}

/// Post-2021 attack-vector annotations derived from packet-level
/// signals the time-overlap classes cannot see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VectorKind {
    /// The victim emitted Retry backscatter during the flood — a
    /// Retry-token amplification variant.
    RetryAmplification,
    /// The victim's address appeared as the target of mid-session
    /// connection migrations — migration-abuse traffic steering.
    MigrationAbuse,
}

impl VectorKind {
    /// Stable label used in reports and metrics.
    pub fn label(self) -> &'static str {
        match self {
            VectorKind::RetryAmplification => "retry-amplification",
            VectorKind::MigrationAbuse => "migration-abuse",
        }
    }
}

/// Packet-level evidence feeding [`classify_multivector_with`].
///
/// The classifier itself only sees attack intervals; these maps carry
/// the per-address signals the dissect/sessionize stages extracted so
/// vector kinds can be attached without re-reading the capture.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorSignals {
    /// Retry packets observed *from* each address (response direction:
    /// the flood victim is the Retry emitter).
    pub retry_packets_by_victim: HashMap<Ipv4Addr, u64>,
    /// Mid-session migration endpoints: how many migration links
    /// involved each address (either side of the address change).
    pub migrations_by_addr: HashMap<Ipv4Addr, u64>,
}

impl VectorSignals {
    /// No evidence at all — [`classify_multivector`] semantics.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Records one Retry packet emitted by `victim`.
    pub fn record_retry(&mut self, victim: Ipv4Addr) {
        *self.retry_packets_by_victim.entry(victim).or_default() += 1;
    }

    /// Records one migration link touching `addr`.
    pub fn record_migration(&mut self, addr: Ipv4Addr) {
        *self.migrations_by_addr.entry(addr).or_default() += 1;
    }

    /// The vector kinds supported by the evidence for `victim`.
    pub fn kinds_for(&self, victim: Ipv4Addr) -> Vec<VectorKind> {
        let mut kinds = Vec::new();
        if self
            .retry_packets_by_victim
            .get(&victim)
            .copied()
            .unwrap_or(0)
            > 0
        {
            kinds.push(VectorKind::RetryAmplification);
        }
        if self.migrations_by_addr.get(&victim).copied().unwrap_or(0) > 0 {
            kinds.push(VectorKind::MigrationAbuse);
        }
        kinds
    }
}

/// Per-QUIC-flood correlation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedAttack {
    /// Index into the QUIC attack slice passed to
    /// [`classify_multivector`].
    pub quic_index: usize,
    /// The classification.
    pub class: MultiVectorClass,
    /// For concurrent attacks: the share of the QUIC flood's duration
    /// that overlaps common floods (0..=1), computed against the
    /// best-overlapping common flood.
    pub overlap_share: Option<f64>,
    /// For sequential attacks: the gap to the nearest common flood.
    pub gap: Option<Duration>,
    /// Vector-kind annotations (empty without packet-level evidence).
    pub kinds: Vec<VectorKind>,
}

/// Aggregated multi-vector report (Fig. 8 + Figs. 12/13 inputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiVectorReport {
    /// Per-attack results, index-aligned with the QUIC attacks.
    pub attacks: Vec<CorrelatedAttack>,
    /// Count per class.
    pub class_counts: HashMap<String, usize>,
    /// Count per vector kind (empty when classified without signals).
    pub kind_counts: HashMap<String, usize>,
}

impl MultiVectorReport {
    /// Share of a class among all QUIC attacks.
    pub fn share(&self, class: MultiVectorClass) -> f64 {
        if self.attacks.is_empty() {
            return 0.0;
        }
        self.class_counts.get(class.label()).copied().unwrap_or(0) as f64
            / self.attacks.len() as f64
    }

    /// Overlap shares of concurrent attacks (Fig. 12 samples).
    pub fn overlap_shares(&self) -> Vec<f64> {
        self.attacks
            .iter()
            .filter_map(|a| a.overlap_share)
            .collect()
    }

    /// Gaps of sequential attacks in seconds (Fig. 13 samples).
    pub fn gap_seconds(&self) -> Vec<f64> {
        self.attacks
            .iter()
            .filter_map(|a| a.gap.map(|g| g.as_secs_f64()))
            .collect()
    }
}

/// Correlates QUIC floods with common-protocol floods (no packet-level
/// vector evidence; every `kinds` list stays empty).
pub fn classify_multivector(quic: &[Attack], common: &[Attack]) -> MultiVectorReport {
    classify_multivector_with(quic, common, &VectorSignals::empty())
}

/// Correlates QUIC floods with common-protocol floods and annotates each
/// attack with the [`VectorKind`]s its victim's packet-level evidence
/// supports.
pub fn classify_multivector_with(
    quic: &[Attack],
    common: &[Attack],
    signals: &VectorSignals,
) -> MultiVectorReport {
    // Index common floods per victim once.
    let mut by_victim: HashMap<Ipv4Addr, Vec<&Attack>> = HashMap::new();
    for attack in common {
        by_victim.entry(attack.victim).or_default().push(attack);
    }

    let mut attacks = Vec::with_capacity(quic.len());
    let mut class_counts: HashMap<String, usize> = HashMap::new();
    let mut kind_counts: HashMap<String, usize> = HashMap::new();
    for (quic_index, q) in quic.iter().enumerate() {
        let kinds = signals.kinds_for(q.victim);
        let result = match by_victim.get(&q.victim) {
            None => CorrelatedAttack {
                quic_index,
                class: MultiVectorClass::Isolated,
                overlap_share: None,
                gap: None,
                kinds,
            },
            Some(commons) => {
                let best_overlap = commons
                    .iter()
                    .map(|c| q.overlap_with(c))
                    .max()
                    .unwrap_or(Duration::ZERO);
                if best_overlap >= Duration::from_secs(1) {
                    let quic_duration = q.duration().as_secs_f64().max(1.0);
                    let share = (best_overlap.as_secs_f64() / quic_duration).min(1.0);
                    CorrelatedAttack {
                        quic_index,
                        class: MultiVectorClass::Concurrent,
                        overlap_share: Some(share),
                        gap: None,
                        kinds,
                    }
                } else {
                    let gap = commons
                        .iter()
                        .map(|c| q.gap_to(c))
                        .min()
                        .unwrap_or(Duration::ZERO);
                    CorrelatedAttack {
                        quic_index,
                        class: MultiVectorClass::Sequential,
                        overlap_share: None,
                        gap: Some(gap),
                        kinds,
                    }
                }
            }
        };
        *class_counts
            .entry(result.class.label().to_string())
            .or_default() += 1;
        for kind in &result.kinds {
            *kind_counts.entry(kind.label().to_string()).or_default() += 1;
        }
        attacks.push(result);
    }
    MultiVectorReport {
        attacks,
        class_counts,
        kind_counts,
    }
}

/// A single-victim attack timeline (Fig. 11): the attacks against one
/// victim in time order, labelled by protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VictimTimeline {
    /// The victim.
    pub victim: Ipv4Addr,
    /// `(protocol label, start, end)` rows in start order.
    pub rows: Vec<(String, u64, u64)>,
}

/// Builds the timeline of all attacks against `victim`.
pub fn victim_timeline(victim: Ipv4Addr, quic: &[Attack], common: &[Attack]) -> VictimTimeline {
    let mut rows: Vec<(String, u64, u64)> = quic
        .iter()
        .chain(common.iter())
        .filter(|a| a.victim == victim)
        .map(|a| {
            (
                a.protocol.label().to_string(),
                a.start.as_secs(),
                a.end.as_secs(),
            )
        })
        .collect();
    rows.sort_by_key(|(_, start, _)| *start);
    VictimTimeline { victim, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dos::AttackProtocol;
    use quicsand_net::Timestamp;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, last)
    }

    fn attack(victim: Ipv4Addr, protocol: AttackProtocol, start: u64, end: u64) -> Attack {
        Attack {
            victim,
            protocol,
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
            packet_count: 100,
            max_pps: 1.0,
        }
    }

    #[test]
    fn concurrent_detected_with_overlap_share() {
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 100, 200)];
        let common = vec![attack(ip(1), AttackProtocol::TcpIcmp, 150, 400)];
        let report = classify_multivector(&quic, &common);
        assert_eq!(report.attacks[0].class, MultiVectorClass::Concurrent);
        let share = report.attacks[0].overlap_share.unwrap();
        assert!((share - 0.5).abs() < 1e-9, "share={share}");
        assert_eq!(report.share(MultiVectorClass::Concurrent), 1.0);
    }

    #[test]
    fn full_overlap_share_is_one() {
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 100, 200)];
        let common = vec![attack(ip(1), AttackProtocol::TcpIcmp, 50, 500)];
        let report = classify_multivector(&quic, &common);
        assert_eq!(report.attacks[0].overlap_share, Some(1.0));
    }

    #[test]
    fn sequential_detected_with_nearest_gap() {
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 1000, 1100)];
        let common = vec![
            attack(ip(1), AttackProtocol::TcpIcmp, 0, 500), // gap 500
            attack(ip(1), AttackProtocol::TcpIcmp, 2000, 2500), // gap 900
        ];
        let report = classify_multivector(&quic, &common);
        assert_eq!(report.attacks[0].class, MultiVectorClass::Sequential);
        assert_eq!(report.attacks[0].gap.unwrap().as_secs(), 500);
        assert_eq!(report.gap_seconds(), vec![500.0]);
    }

    #[test]
    fn isolated_when_victim_unshared() {
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 0, 100)];
        let common = vec![attack(ip(2), AttackProtocol::TcpIcmp, 0, 100)];
        let report = classify_multivector(&quic, &common);
        assert_eq!(report.attacks[0].class, MultiVectorClass::Isolated);
        assert_eq!(report.share(MultiVectorClass::Isolated), 1.0);
        assert!(report.overlap_shares().is_empty());
        assert!(report.gap_seconds().is_empty());
    }

    #[test]
    fn sub_second_overlap_is_sequential() {
        // Touching intervals share zero full seconds.
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 100, 200)];
        let common = vec![attack(ip(1), AttackProtocol::TcpIcmp, 200, 300)];
        let report = classify_multivector(&quic, &common);
        assert_eq!(report.attacks[0].class, MultiVectorClass::Sequential);
        assert_eq!(report.attacks[0].gap.unwrap(), Duration::ZERO);
    }

    #[test]
    fn shares_sum_to_one() {
        let quic = vec![
            attack(ip(1), AttackProtocol::Quic, 100, 200), // concurrent
            attack(ip(1), AttackProtocol::Quic, 5000, 5100), // sequential
            attack(ip(9), AttackProtocol::Quic, 0, 100),   // isolated
        ];
        let common = vec![attack(ip(1), AttackProtocol::TcpIcmp, 150, 300)];
        let report = classify_multivector(&quic, &common);
        let total = report.share(MultiVectorClass::Concurrent)
            + report.share(MultiVectorClass::Sequential)
            + report.share(MultiVectorClass::Isolated);
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(report.class_counts["concurrent"], 1);
        assert_eq!(report.class_counts["sequential"], 1);
        assert_eq!(report.class_counts["isolated"], 1);
    }

    #[test]
    fn best_overlap_wins_among_multiple_commons() {
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 100, 200)];
        let common = vec![
            attack(ip(1), AttackProtocol::TcpIcmp, 190, 300), // 10 s overlap
            attack(ip(1), AttackProtocol::TcpIcmp, 100, 180), // 80 s overlap
        ];
        let report = classify_multivector(&quic, &common);
        assert!((report.attacks[0].overlap_share.unwrap() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let report = classify_multivector(&[], &[]);
        assert!(report.attacks.is_empty());
        assert_eq!(report.share(MultiVectorClass::Concurrent), 0.0);
    }

    #[test]
    fn timeline_orders_rows() {
        let quic = vec![
            attack(ip(1), AttackProtocol::Quic, 500, 600),
            attack(ip(1), AttackProtocol::Quic, 100, 200),
            attack(ip(2), AttackProtocol::Quic, 0, 50),
        ];
        let common = vec![attack(ip(1), AttackProtocol::TcpIcmp, 150, 400)];
        let timeline = victim_timeline(ip(1), &quic, &common);
        assert_eq!(timeline.rows.len(), 3);
        assert_eq!(timeline.rows[0], ("QUIC".to_string(), 100, 200));
        assert_eq!(timeline.rows[1], ("TCP/ICMP".to_string(), 150, 400));
        assert_eq!(timeline.rows[2], ("QUIC".to_string(), 500, 600));
    }

    #[test]
    fn class_labels() {
        assert_eq!(MultiVectorClass::Concurrent.label(), "concurrent");
        assert_eq!(MultiVectorClass::Sequential.label(), "sequential");
        assert_eq!(MultiVectorClass::Isolated.label(), "isolated");
    }

    #[test]
    fn vector_kind_labels() {
        assert_eq!(
            VectorKind::RetryAmplification.label(),
            "retry-amplification"
        );
        assert_eq!(VectorKind::MigrationAbuse.label(), "migration-abuse");
    }

    #[test]
    fn empty_signals_leave_kinds_empty() {
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 100, 200)];
        let report = classify_multivector(&quic, &[]);
        assert!(report.attacks[0].kinds.is_empty());
        assert!(report.kind_counts.is_empty());
    }

    #[test]
    fn retry_evidence_attaches_retry_amplification() {
        let quic = vec![
            attack(ip(1), AttackProtocol::Quic, 100, 200),
            attack(ip(2), AttackProtocol::Quic, 300, 400),
        ];
        let mut signals = VectorSignals::empty();
        signals.record_retry(ip(1));
        signals.record_retry(ip(1));
        let report = classify_multivector_with(&quic, &[], &signals);
        assert_eq!(
            report.attacks[0].kinds,
            vec![VectorKind::RetryAmplification]
        );
        assert!(report.attacks[1].kinds.is_empty());
        assert_eq!(report.kind_counts["retry-amplification"], 1);
    }

    #[test]
    fn migration_evidence_attaches_migration_abuse() {
        let quic = vec![attack(ip(3), AttackProtocol::Quic, 100, 200)];
        let mut signals = VectorSignals::empty();
        signals.record_migration(ip(3));
        let report = classify_multivector_with(&quic, &[], &signals);
        assert_eq!(report.attacks[0].kinds, vec![VectorKind::MigrationAbuse]);
        assert_eq!(report.kind_counts["migration-abuse"], 1);
    }

    #[test]
    fn both_kinds_attach_in_stable_order() {
        let quic = vec![attack(ip(4), AttackProtocol::Quic, 100, 200)];
        let mut signals = VectorSignals::empty();
        signals.record_migration(ip(4));
        signals.record_retry(ip(4));
        let report = classify_multivector_with(&quic, &[], &signals);
        assert_eq!(
            report.attacks[0].kinds,
            vec![VectorKind::RetryAmplification, VectorKind::MigrationAbuse]
        );
    }

    #[test]
    fn report_with_kinds_roundtrips_through_json() {
        let quic = vec![attack(ip(1), AttackProtocol::Quic, 0, 100)];
        let mut signals = VectorSignals::empty();
        signals.record_retry(ip(1));
        let report = classify_multivector_with(&quic, &[], &signals);
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("RetryAmplification"));
        let parsed: MultiVectorReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(parsed, report);
    }
}
