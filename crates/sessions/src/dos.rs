//! DoS attack inference with the Moore et al. thresholds (§5.2).
//!
//! "To identify attacks, we select backscatter sessions with (i) more
//! than 25 packets, (ii) a duration longer than 60 seconds, and (iii) a
//! maximum packet rate of higher than 0.5 pps, which is calculated over
//! all 1-minute slots of the respective event."
//!
//! Appendix B scales all three thresholds by a weight `w` (relaxed
//! w < 1, stricter w > 1) and shows attacks persist even at w = 10 —
//! reproduced by [`DosThresholds::weighted`].

use crate::session::Session;
use quicsand_net::{Duration, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Attack-inference thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DosThresholds {
    /// Sessions must have *more than* this many packets.
    pub min_packets: f64,
    /// Sessions must last *longer than* this.
    pub min_duration: Duration,
    /// Sessions must exceed this max 1-minute-slot rate (pps).
    pub min_max_pps: f64,
}

impl DosThresholds {
    /// The Moore et al. defaults the paper reuses.
    pub fn moore() -> Self {
        DosThresholds {
            min_packets: 25.0,
            min_duration: Duration::from_secs(60),
            min_max_pps: 0.5,
        }
    }

    /// Scales all thresholds by weight `w` (Appendix B / Fig. 10).
    pub fn weighted(w: f64) -> Self {
        let base = Self::moore();
        DosThresholds {
            min_packets: base.min_packets * w,
            min_duration: Duration::from_secs_f64(base.min_duration.as_secs_f64() * w),
            min_max_pps: base.min_max_pps * w,
        }
    }

    /// Scales *these* thresholds by `w` — unlike [`Self::weighted`],
    /// which always scales the Moore defaults. The live engine derives
    /// its escalation tier from the operator's base thresholds this way.
    pub fn scaled(&self, w: f64) -> Self {
        DosThresholds {
            min_packets: self.min_packets * w,
            min_duration: Duration::from_secs_f64(self.min_duration.as_secs_f64() * w),
            min_max_pps: self.min_max_pps * w,
        }
    }

    /// Whether a session qualifies as an attack.
    pub fn matches(&self, session: &Session) -> bool {
        self.matches_measures(session.packet_count, session.duration(), session.max_pps())
    }

    /// [`Self::matches`] over raw measures, for callers that track the
    /// three quantities incrementally instead of holding a [`Session`]
    /// (the streaming detector). All three measures are monotone
    /// non-decreasing over a session's lifetime, so once this returns
    /// `true` for an open session it stays `true` — the property behind
    /// the live alert lifecycle's no-flap guarantee.
    pub fn matches_measures(&self, packets: u64, duration: Duration, max_pps: f64) -> bool {
        packets as f64 > self.min_packets
            && duration > self.min_duration
            && max_pps > self.min_max_pps
    }
}

impl Default for DosThresholds {
    fn default() -> Self {
        Self::moore()
    }
}

/// The protocol family of an attack, for the Fig. 7 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackProtocol {
    /// QUIC (UDP/443 backscatter).
    Quic,
    /// The "common protocols" baseline: TCP or ICMP backscatter.
    TcpIcmp,
}

impl AttackProtocol {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            AttackProtocol::Quic => "QUIC",
            AttackProtocol::TcpIcmp => "TCP/ICMP",
        }
    }
}

/// An inferred DoS attack (a qualifying backscatter session).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attack {
    /// The victim (the backscatter source).
    pub victim: Ipv4Addr,
    /// Protocol family.
    pub protocol: AttackProtocol,
    /// First backscatter packet.
    pub start: Timestamp,
    /// Last backscatter packet.
    pub end: Timestamp,
    /// Backscatter packets captured.
    pub packet_count: u64,
    /// Intensity: max pps over 1-minute slots, at the telescope.
    pub max_pps: f64,
}

impl Attack {
    /// Attack duration.
    pub fn duration(&self) -> Duration {
        self.end.saturating_since(self.start)
    }

    /// Estimated Internet-wide packet rate towards the victim: the
    /// telescope covers 1/512 of IPv4, so global ≈ 512 × observed
    /// (§5.2).
    pub fn estimated_global_pps(&self) -> f64 {
        self.max_pps * 512.0
    }

    /// Whether two attacks (typically different protocols) on the same
    /// victim overlap in time by at least one second — the paper's
    /// concurrency criterion (§5.2 / Appendix C).
    pub fn overlaps(&self, other: &Attack) -> bool {
        self.overlap_with(other) >= Duration::from_secs(1)
    }

    /// The length of the time overlap with `other` (zero when
    /// disjoint).
    pub fn overlap_with(&self, other: &Attack) -> Duration {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        end.saturating_since(start)
    }

    /// The gap to `other` when disjoint (zero when overlapping).
    pub fn gap_to(&self, other: &Attack) -> Duration {
        if self.end < other.start {
            other.start.saturating_since(self.end)
        } else if other.end < self.start {
            self.start.saturating_since(other.end)
        } else {
            Duration::ZERO
        }
    }
}

/// Applies the thresholds to backscatter sessions, yielding attacks.
pub fn detect_attacks(
    sessions: &[Session],
    protocol: AttackProtocol,
    thresholds: &DosThresholds,
) -> Vec<Attack> {
    sessions
        .iter()
        .filter(|s| thresholds.matches(s))
        .map(|s| Attack {
            victim: s.src,
            protocol,
            start: s.start,
            end: s.end,
            packet_count: s.packet_count,
            max_pps: s.max_pps(),
        })
        .collect()
}

/// Attack counts per victim — the Fig. 6 CDF input.
pub fn attacks_per_victim(attacks: &[Attack]) -> HashMap<Ipv4Addr, u64> {
    let mut counts = HashMap::new();
    for attack in attacks {
        *counts.entry(attack.victim).or_default() += 1;
    }
    counts
}

/// Summary of the excluded (non-attack) backscatter sessions, reported
/// in Appendix B: low-volume events pointing to misconfigurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExcludedSessionsSummary {
    /// Excluded session count.
    pub count: usize,
    /// Median max pps of excluded sessions.
    pub median_max_pps: f64,
    /// Median duration (seconds).
    pub median_duration_secs: f64,
    /// Median packet count.
    pub median_packets: f64,
}

/// Summarizes the sessions the thresholds excluded.
pub fn summarize_excluded(
    sessions: &[Session],
    thresholds: &DosThresholds,
) -> ExcludedSessionsSummary {
    let excluded: Vec<&Session> = sessions.iter().filter(|s| !thresholds.matches(s)).collect();
    let median = |mut v: Vec<f64>| -> f64 {
        if v.is_empty() {
            return 0.0;
        }
        // total_cmp: a NaN-rate session quarantined upstream must never
        // panic the percentile sort (NaNs order after every number).
        v.sort_by(f64::total_cmp);
        v[(v.len() - 1) / 2]
    };
    ExcludedSessionsSummary {
        count: excluded.len(),
        median_max_pps: median(excluded.iter().map(|s| s.max_pps()).collect()),
        median_duration_secs: median(
            excluded
                .iter()
                .map(|s| s.duration().as_secs_f64())
                .collect(),
        ),
        median_packets: median(excluded.iter().map(|s| s.packet_count as f64).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{sessionize, SessionConfig};

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 51, 100, last)
    }

    /// Builds a session emitting `pps`-rate packets for `secs` seconds.
    fn flood_session(src: Ipv4Addr, pps: f64, secs: u64) -> Session {
        let interval_us = (1e6 / pps) as u64;
        let packets: Vec<_> = (0..)
            .map(|i| Timestamp::from_micros(i * interval_us))
            .take_while(|ts| ts.as_secs() < secs)
            .map(|ts| (ts, src))
            .collect();
        let mut sessions = sessionize(packets, SessionConfig::default());
        assert_eq!(sessions.len(), 1);
        sessions.pop().unwrap()
    }

    #[test]
    fn qualifying_flood_detected() {
        let session = flood_session(ip(1), 2.0, 120); // 240 pkts, 2 pps, 2 min
        let attacks = detect_attacks(&[session], AttackProtocol::Quic, &DosThresholds::moore());
        assert_eq!(attacks.len(), 1);
        let a = &attacks[0];
        assert_eq!(a.victim, ip(1));
        assert_eq!(a.protocol, AttackProtocol::Quic);
        assert!(a.max_pps > 0.5);
        assert!((a.estimated_global_pps() - a.max_pps * 512.0).abs() < 1e-9);
    }

    #[test]
    fn each_threshold_excludes_independently() {
        let thresholds = DosThresholds::moore();
        // Too few packets: 20 packets over 100 s (0.2 pps).
        let few = flood_session(ip(1), 0.2, 100);
        assert!(few.packet_count <= 25);
        assert!(!thresholds.matches(&few));
        // Too short: 100 packets in 30 s.
        let short = flood_session(ip(2), 4.0, 30);
        assert!(short.packet_count > 25);
        assert!(short.duration() <= Duration::from_secs(60));
        assert!(!thresholds.matches(&short));
        // Too slow: 0.4 pps for 150 s → 60 packets, max 24/60 = 0.4 pps.
        let slow = flood_session(ip(3), 0.4, 150);
        assert!(slow.packet_count > 25);
        assert!(slow.duration() > Duration::from_secs(60));
        assert!(slow.max_pps() <= 0.5);
        assert!(!thresholds.matches(&slow));
    }

    #[test]
    fn weighted_thresholds_scale() {
        let strict = DosThresholds::weighted(10.0);
        assert_eq!(strict.min_packets, 250.0);
        assert_eq!(strict.min_duration.as_secs(), 600);
        assert_eq!(strict.min_max_pps, 5.0);
        let relaxed = DosThresholds::weighted(0.2);
        assert_eq!(relaxed.min_packets, 5.0);
        assert_eq!(relaxed.min_duration.as_secs(), 12);
        // A mild flood passes relaxed but not strict.
        let mild = flood_session(ip(1), 1.0, 100);
        assert!(relaxed.matches(&mild));
        assert!(!strict.matches(&mild));
        // Weight 1 is the default.
        assert_eq!(DosThresholds::weighted(1.0), DosThresholds::moore());
    }

    #[test]
    fn attacks_per_victim_counts() {
        let mk = |v: Ipv4Addr, start: u64| Attack {
            victim: v,
            protocol: AttackProtocol::Quic,
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + 100),
            packet_count: 100,
            max_pps: 1.0,
        };
        let attacks = vec![mk(ip(1), 0), mk(ip(1), 1000), mk(ip(2), 0)];
        let counts = attacks_per_victim(&attacks);
        assert_eq!(counts[&ip(1)], 2);
        assert_eq!(counts[&ip(2)], 1);
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn overlap_and_gap_arithmetic() {
        let mk = |start: u64, end: u64| Attack {
            victim: ip(1),
            protocol: AttackProtocol::Quic,
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
            packet_count: 100,
            max_pps: 1.0,
        };
        let a = mk(0, 100);
        let b = mk(50, 150);
        assert!(a.overlaps(&b));
        assert_eq!(a.overlap_with(&b).as_secs(), 50);
        assert_eq!(a.gap_to(&b), Duration::ZERO);
        let c = mk(200, 300);
        assert!(!a.overlaps(&c));
        assert_eq!(a.gap_to(&c).as_secs(), 100);
        assert_eq!(c.gap_to(&a).as_secs(), 100);
        // Sub-second overlap does not count as concurrent.
        let d = mk(100, 200); // touching at exactly one instant
        assert_eq!(a.overlap_with(&d), Duration::ZERO);
        assert!(!a.overlaps(&d));
    }

    #[test]
    fn excluded_summary() {
        let sessions = vec![
            flood_session(ip(1), 2.0, 120), // attack
            flood_session(ip(2), 0.1, 50),  // excluded: 5 pkts
            flood_session(ip(3), 0.2, 40),  // excluded: 8 pkts
        ];
        let summary = summarize_excluded(&sessions, &DosThresholds::moore());
        assert_eq!(summary.count, 2);
        assert!(summary.median_packets < 10.0);
        assert!(summary.median_max_pps < 0.5);
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(AttackProtocol::Quic.label(), "QUIC");
        assert_eq!(AttackProtocol::TcpIcmp.label(), "TCP/ICMP");
    }

    #[test]
    fn empty_inputs() {
        assert!(detect_attacks(&[], AttackProtocol::Quic, &DosThresholds::moore()).is_empty());
        assert!(attacks_per_victim(&[]).is_empty());
        let summary = summarize_excluded(&[], &DosThresholds::moore());
        assert_eq!(summary.count, 0);
        assert_eq!(summary.median_max_pps, 0.0);
    }
}
