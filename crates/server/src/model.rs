//! The worker-based QUIC server resource model.
//!
//! Mechanisms reproduced from the Table 1 testbed:
//!
//! * **Connection tables** — each worker holds at most
//!   `conns_per_worker` handshake states; a state lives for
//!   `handshake_hold` (the 60 s handshake/idle lifetime) unless the
//!   handshake completes. A spoofed Initial therefore occupies a slot
//!   for the full minute — the resource-exhaustion core of the paper.
//! * **Worker CPU** — each accepted Initial costs `crypto_cost` of
//!   serialized worker time (key derivation + ServerHello + cert
//!   signing); packets arriving while the backlog is deeper than
//!   `accept_backlog` are dropped.
//! * **RETRY fast path** — when enabled, Initials without a token get a
//!   stateless Retry (cost `retry_cost`, no table entry); only Initials
//!   with a valid token proceed to the expensive path. This is why
//!   RETRY flattens every flood in Table 1 at the price of one RTT.

use bytes::Bytes;
use quicsand_net::{Duration, Timestamp};
use quicsand_wire::crypto::{handshake_key, Direction, InitialSecrets};
use quicsand_wire::packet::{parse_datagram, Packet, PacketPayload, ParsedHeader};
use quicsand_wire::siphash::SipKey;
use quicsand_wire::tls::{
    cipher_suite, peek_handshake_type, ClientHello, HandshakeType, ServerHello,
};
use quicsand_wire::token::TokenMinter;
use quicsand_wire::{ConnectionId, Frame, Version};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// When the server challenges unvalidated clients with RETRY.
///
/// The paper observes that operators leave RETRY off for latency and
/// suggests (§6) that "RETRYs could be deployed adaptively and only
/// used when high load occurs" — [`RetryPolicy::Adaptive`] implements
/// exactly that: the challenge switches on once the flow-hashed
/// worker's connection table passes an occupancy threshold, so normal
/// load pays zero extra round trips while floods hit the stateless
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RetryPolicy {
    /// Never send RETRY (the deployed reality the paper measured).
    Off,
    /// Always validate addresses first (Table 1's RETRY rows).
    Always,
    /// Validate only when the worker's connection-table occupancy is at
    /// or above this fraction (0.0..=1.0).
    Adaptive {
        /// Table-occupancy fraction that arms the challenge.
        occupancy_threshold: f64,
    },
}

impl RetryPolicy {
    /// Whether the policy can ever send a RETRY.
    pub fn can_retry(self) -> bool {
        !matches!(self, RetryPolicy::Off)
    }
}

/// Server configuration (the Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Worker processes (paper: 4 or auto=128).
    pub workers: usize,
    /// Connection-table entries per worker (paper: 1 024, "twice the
    /// default").
    pub conns_per_worker: usize,
    /// How long an unfinished handshake state is held (the 60 s
    /// handshake lifetime that turns floods into exhaustion).
    pub handshake_hold: Duration,
    /// Serialized worker CPU per accepted handshake.
    pub crypto_cost: Duration,
    /// Worker CPU for a stateless Retry.
    pub retry_cost: Duration,
    /// Accept-queue depth per worker; deeper backlogs drop.
    pub accept_backlog: usize,
    /// The RETRY defence policy.
    pub retry_policy: RetryPolicy,
}

impl ServerConfig {
    /// Convenience: the Table 1 on/off switch.
    pub fn with_retry(mut self, enabled: bool) -> Self {
        self.retry_policy = if enabled {
            RetryPolicy::Always
        } else {
            RetryPolicy::Off
        };
        self
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            conns_per_worker: 1_024,
            handshake_hold: Duration::from_secs(60),
            crypto_cost: Duration::from_micros(250),
            retry_cost: Duration::from_micros(8),
            accept_backlog: 512,
            retry_policy: RetryPolicy::Off,
        }
    }
}

/// Server-side counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Datagrams received.
    pub received: u64,
    /// Initials accepted into the connection table.
    pub accepted: u64,
    /// Retry packets sent.
    pub retries_sent: u64,
    /// Initials dropped: accept queue overflow.
    pub dropped_backlog: u64,
    /// Initials dropped: connection table full.
    pub dropped_table: u64,
    /// Initials dropped: malformed/undecryptable.
    pub dropped_malformed: u64,
    /// Initials dropped: invalid retry token.
    pub dropped_bad_token: u64,
    /// Initials admitted via a NEW_TOKEN resumption token (skipping the
    /// RETRY round trip, §6's alleviation).
    pub resumed: u64,
    /// Version Negotiation packets sent (unsupported client offers).
    pub vn_sent: u64,
    /// Initials dropped: datagram below the 1200-byte padding minimum
    /// (RFC 9000 Â§14.1 anti-amplification requirement).
    pub dropped_unpadded: u64,
    /// Initial retransmissions for live connections (no new state).
    pub duplicates: u64,
    /// Handshake flights re-sent in response to duplicate Initials
    /// (loss recovery).
    pub flight_retransmissions: u64,
    /// Response datagrams emitted.
    pub responses_sent: u64,
    /// Handshakes completed (client Finished processed).
    pub completed: u64,
}

/// A response datagram with its emission time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseDatagram {
    /// When the datagram leaves the server.
    pub at: Timestamp,
    /// The UDP payload.
    pub payload: Bytes,
}

#[derive(Debug)]
struct Worker {
    busy_until: Timestamp,
    // Connection key -> expiry; scanned lazily.
    conns: HashMap<(Ipv4Addr, u16), Connection>,
}

#[derive(Debug)]
struct Connection {
    scid: ConnectionId,
    expiry: Timestamp,
    established: bool,
    hs_recv_key: SipKey,
    hs_send_key: SipKey,
    // The handshake flight (Initial+HS, HS), kept for retransmission
    // when the client's duplicate Initial signals it never arrived.
    flight: Vec<Bytes>,
}

/// The simulated server.
#[derive(Debug)]
pub struct QuicServerSim {
    config: ServerConfig,
    workers: Vec<Worker>,
    minter: TokenMinter,
    resumption_minter: TokenMinter,
    stats: ServerStats,
    rng: ChaCha12Rng,
    scid_counter: u64,
    version: Version,
}

impl QuicServerSim {
    /// Creates a server.
    pub fn new(config: ServerConfig, seed: u64) -> Self {
        assert!(config.workers > 0, "server needs at least one worker");
        QuicServerSim {
            config,
            workers: (0..config.workers)
                .map(|_| Worker {
                    busy_until: Timestamp::EPOCH,
                    conns: HashMap::new(),
                })
                .collect(),
            minter: TokenMinter::new(SipKey {
                k0: seed,
                k1: seed.rotate_left(17) ^ 0x7265_7472_795f_6b31,
            }),
            // NEW_TOKEN resumption tokens live much longer than retry
            // tokens (the client presents them on a *future* visit).
            resumption_minter: TokenMinter::new(SipKey {
                k0: seed ^ 0x7265_7375_6d65,
                k1: seed.rotate_left(31) ^ 0x6e65_775f_746f_6b31,
            })
            .with_lifetime(86_400),
            stats: ServerStats::default(),
            rng: ChaCha12Rng::seed_from_u64(seed ^ 0x5e72),
            scid_counter: seed & 0xffff,
            version: Version::V1,
        }
    }

    /// The counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Current connection-table occupancy across workers.
    pub fn open_connections(&self) -> usize {
        self.workers.iter().map(|w| w.conns.len()).sum()
    }

    /// Handles one incoming datagram from `(src_ip, src_port)` at
    /// `now`, returning the response datagrams (possibly empty).
    pub fn handle_datagram(
        &mut self,
        now: Timestamp,
        src_ip: Ipv4Addr,
        src_port: u16,
        datagram: &[u8],
    ) -> Vec<ResponseDatagram> {
        self.stats.received += 1;
        let Ok(packets) = parse_datagram(datagram, 8) else {
            self.stats.dropped_malformed += 1;
            return Vec::new();
        };
        // RFC 9000 Â§14.1: datagrams carrying Initials must be padded to
        // at least 1200 bytes; this is what bounds the 3x amplification
        // a spoofed probe can elicit.
        let carries_initial = packets.iter().any(|(p, _)| {
            matches!(
                p.header,
                ParsedHeader::Long {
                    ty: quicsand_wire::header::LongPacketType::Initial,
                    ..
                }
            )
        });
        if carries_initial && datagram.len() < quicsand_wire::MIN_INITIAL_SIZE {
            self.stats.dropped_unpadded += 1;
            return Vec::new();
        }
        let mut responses = Vec::new();
        for (packet, aad) in &packets {
            match &packet.header {
                ParsedHeader::Long {
                    ty: quicsand_wire::header::LongPacketType::Initial,
                    version,
                    dcid,
                    scid,
                    token,
                    ..
                } => {
                    responses.extend(self.handle_initial(
                        now, src_ip, src_port, *version, dcid, scid, token, packet, aad,
                    ));
                }
                ParsedHeader::Long {
                    ty: quicsand_wire::header::LongPacketType::Handshake,
                    ..
                } => {
                    responses.extend(self.handle_handshake(now, src_ip, src_port, packet, aad));
                }
                _ => {
                    // 0-RTT / Retry / VN / short packets towards the
                    // server are ignored by this model.
                }
            }
        }
        // RFC 9000 Â§8.1: never send more than 3x the bytes received
        // to an unvalidated address; trailing datagrams are shed first
        // (the keep-alives go before the handshake flight).
        let budget = datagram.len() * quicsand_wire::ANTI_AMPLIFICATION_FACTOR;
        let mut spent = 0usize;
        responses.retain(|r| {
            spent += r.payload.len();
            spent <= budget
        });
        self.stats.responses_sent += responses.len() as u64;
        responses
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_initial(
        &mut self,
        now: Timestamp,
        src_ip: Ipv4Addr,
        src_port: u16,
        version: Version,
        dcid: &ConnectionId,
        client_scid: &ConnectionId,
        token: &Bytes,
        packet: &quicsand_wire::packet::ParsedPacket,
        aad: &[u8],
    ) -> Vec<ResponseDatagram> {
        if !version.is_supported() {
            // Version Negotiation (RFC 9000 §6): stateless, before any
            // cryptography — the first leg of the paper's §2
            // "worst case 3 RTTs" handshake.
            let vn = Packet::VersionNegotiation {
                // CIDs echoed swapped, so the client can match.
                dcid: *client_scid,
                scid: *dcid,
                versions: vec![Version::V1, Version::Draft29],
            };
            self.stats.vn_sent += 1;
            return vec![ResponseDatagram {
                at: now,
                payload: Bytes::from(vn.encode(None).expect("vn encodes")),
            }];
        }

        // Decrypt the client Initial with passively derivable keys (the
        // server does exactly what the spec says: derive from the DCID).
        let initial_keys = InitialSecrets::derive(version, dcid);
        let Ok((_pn, frames)) = packet.open(initial_keys.client, None, aad) else {
            self.stats.dropped_malformed += 1;
            return Vec::new();
        };
        let Some(client_hello) = extract_client_hello(&frames) else {
            self.stats.dropped_malformed += 1;
            return Vec::new();
        };

        let worker_index = self.pick_worker(src_ip, src_port);

        // RETRY fast path: stateless, before any allocation. Adaptive
        // deployments arm the challenge only under table pressure.
        let retry_armed = match self.config.retry_policy {
            RetryPolicy::Off => false,
            RetryPolicy::Always => true,
            RetryPolicy::Adaptive {
                occupancy_threshold,
            } => {
                let worker = &mut self.workers[worker_index];
                worker.conns.retain(|_, c| c.expiry > now);
                let occupancy = worker.conns.len() as f64 / self.config.conns_per_worker as f64;
                occupancy >= occupancy_threshold
            }
        };
        if self.config.retry_policy.can_retry() && !token.is_empty() {
            // Tokens are honoured under every policy that mints them —
            // a validated client must not be re-challenged when the
            // adaptive threshold flaps. Retry tokens and NEW_TOKEN
            // resumption tokens are tried in turn.
            if self
                .minter
                .validate(token, now.as_secs(), u32::from(src_ip))
                .is_err()
            {
                match self
                    .resumption_minter
                    .validate(token, now.as_secs(), u32::from(src_ip))
                {
                    Ok(_) => self.stats.resumed += 1,
                    Err(_) => {
                        self.stats.dropped_bad_token += 1;
                        return Vec::new();
                    }
                }
            }
        } else if retry_armed {
            return self.send_retry(now, worker_index, src_ip, version, dcid, client_scid);
        }

        // CPU admission: the worker serializes crypto work; a backlog
        // deeper than the accept queue drops the packet.
        let worker = &mut self.workers[worker_index];
        let backlog_depth = worker.busy_until.saturating_since(now).as_micros()
            / self.config.crypto_cost.as_micros().max(1);
        if backlog_depth as usize > self.config.accept_backlog {
            self.stats.dropped_backlog += 1;
            return Vec::new();
        }

        // Table admission after expiring stale states.
        let expiry_floor = now;
        worker.conns.retain(|_, c| c.expiry > expiry_floor);
        if let Some(conn) = worker.conns.get(&(src_ip, src_port)) {
            // Retransmitted Initial: the client never saw our flight
            // (loss recovery) — resend it without new state. Duplicates
            // on established connections are ignored.
            self.stats.duplicates += 1;
            if conn.established {
                return Vec::new();
            }
            self.stats.flight_retransmissions += 1;
            return conn
                .flight
                .iter()
                .map(|payload| ResponseDatagram {
                    at: now,
                    payload: payload.clone(),
                })
                .collect();
        }
        if worker.conns.len() >= self.config.conns_per_worker {
            self.stats.dropped_table += 1;
            return Vec::new();
        }

        // Accept: pay crypto, allocate state, emit the first flight.
        let start = worker.busy_until.max(now);
        let done = start + self.config.crypto_cost;
        worker.busy_until = done;

        self.scid_counter += 1;
        let scid = ConnectionId::from_u64((self.scid_counter << 8) | 0x5e);
        let server_share: [u8; 32] = self.rng.gen();
        let hs_recv_key = handshake_key(
            &client_hello.key_share,
            &server_share,
            Direction::ClientToServer,
        );
        let hs_send_key = handshake_key(
            &client_hello.key_share,
            &server_share,
            Direction::ServerToClient,
        );
        self.stats.accepted += 1;

        // The §6/Table 1 first flight: Initial(SH)+Handshake coalesced,
        // a second Handshake datagram, then two keep-alive PINGs after
        // a short delay — four datagrams per request. Reply keys derive
        // from the DCID of the client's Initial (RFC 9001 §5.2 — after
        // a Retry that DCID is the server's retry SCID, and both sides
        // re-derive).
        let reply_keys = InitialSecrets::derive(version, dcid);
        let server_initial = Packet::Initial {
            version,
            dcid: *client_scid,
            scid,
            token: Bytes::new(),
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from(
                    ServerHello {
                        random: self.rng.gen(),
                        cipher_suite: cipher_suite::AES_128_GCM_SHA256,
                        key_share: Bytes::from(server_share.to_vec()),
                    }
                    .encode(),
                ),
            }]),
        };
        let handshake_a = Packet::Handshake {
            version,
            dcid: *client_scid,
            scid,
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from(vec![0x0b; 700]),
            }]),
        };
        let handshake_b = Packet::Handshake {
            version,
            dcid: *client_scid,
            scid,
            packet_number: 1,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 700,
                data: Bytes::from(vec![0x0f; 300]),
            }]),
        };
        let server_key = reply_keys.key(Direction::ServerToClient);
        let mut first = server_initial
            .encode(Some(server_key))
            .expect("server initial encodes");
        first.extend(handshake_a.encode(Some(hs_send_key)).expect("hs encodes"));
        let second = handshake_b.encode(Some(hs_send_key)).expect("hs encodes");

        let first = Bytes::from(first);
        let second = Bytes::from(second);
        self.workers[worker_index].conns.insert(
            (src_ip, src_port),
            Connection {
                scid,
                expiry: done + self.config.handshake_hold,
                established: false,
                hs_recv_key,
                hs_send_key,
                flight: vec![first.clone(), second.clone()],
            },
        );
        let mut out = vec![
            ResponseDatagram {
                at: done,
                payload: first,
            },
            ResponseDatagram {
                at: done + Duration::from_micros(50),
                payload: second,
            },
        ];
        // Two keep-alive PINGs after short delays.
        for (i, delay_ms) in [200u64, 400].iter().enumerate() {
            let ping = Packet::Handshake {
                version,
                dcid: *client_scid,
                scid,
                packet_number: 2 + i as u64,
                payload: PacketPayload::new(vec![Frame::Ping]),
            };
            out.push(ResponseDatagram {
                at: done + Duration::from_millis(*delay_ms),
                payload: Bytes::from(ping.encode(Some(hs_send_key)).expect("ping encodes")),
            });
        }
        out
    }

    fn handle_handshake(
        &mut self,
        now: Timestamp,
        src_ip: Ipv4Addr,
        src_port: u16,
        packet: &quicsand_wire::packet::ParsedPacket,
        aad: &[u8],
    ) -> Vec<ResponseDatagram> {
        let worker_index = self.pick_worker(src_ip, src_port);
        let config_hold = self.config.handshake_hold;
        let version = self.version;
        let worker = &mut self.workers[worker_index];
        let Some(conn) = worker.conns.get_mut(&(src_ip, src_port)) else {
            return Vec::new();
        };
        let Ok((_pn, frames)) = packet.open(conn.hs_recv_key, None, aad) else {
            return Vec::new();
        };
        let finished = frames.iter().any(|f| {
            matches!(f, Frame::Crypto { data, .. }
                if peek_handshake_type(data) == Ok(HandshakeType::Finished))
        });
        if !finished {
            return Vec::new();
        }
        if conn.established {
            // Duplicate Finished: our HANDSHAKE_DONE was lost — confirm
            // again (idempotent, no counter bump).
            let scid = conn.scid;
            let hs_send_key = conn.hs_send_key;
            let resumption_token =
                self.resumption_minter
                    .mint(now.as_secs(), u32::from(src_ip), &scid);
            let done_packet = Packet::Handshake {
                version,
                dcid: ConnectionId::EMPTY,
                scid,
                packet_number: 11,
                payload: PacketPayload::new(vec![
                    Frame::HandshakeDone,
                    Frame::NewToken {
                        token: Bytes::from(resumption_token),
                    },
                ]),
            };
            let payload = done_packet
                .encode(Some(hs_send_key))
                .expect("handshake done encodes");
            return vec![ResponseDatagram {
                at: now,
                payload: Bytes::from(payload),
            }];
        }
        conn.established = true;
        conn.expiry = now + config_hold;
        self.stats.completed += 1;
        // Confirmation flight: HANDSHAKE_DONE plus a NEW_TOKEN the
        // client can present on its next visit to skip a future RETRY
        // round trip (the §6 session-resumption alleviation).
        let resumption_token =
            self.resumption_minter
                .mint(now.as_secs(), u32::from(src_ip), &conn.scid);
        let done_packet = Packet::Handshake {
            version,
            dcid: ConnectionId::EMPTY,
            scid: conn.scid,
            packet_number: 10,
            payload: PacketPayload::new(vec![
                Frame::HandshakeDone,
                Frame::NewToken {
                    token: Bytes::from(resumption_token),
                },
            ]),
        };
        let payload = done_packet
            .encode(Some(conn.hs_send_key))
            .expect("handshake done encodes");
        vec![ResponseDatagram {
            at: now,
            payload: Bytes::from(payload),
        }]
    }

    fn send_retry(
        &mut self,
        now: Timestamp,
        worker_index: usize,
        src_ip: Ipv4Addr,
        version: Version,
        dcid: &ConnectionId,
        client_scid: &ConnectionId,
    ) -> Vec<ResponseDatagram> {
        let worker = &mut self.workers[worker_index];
        // Retries are nearly free but still pass the CPU; the backlog
        // check uses the retry cost so floods cannot starve it.
        let backlog_depth = worker.busy_until.saturating_since(now).as_micros()
            / self.config.retry_cost.as_micros().max(1);
        if backlog_depth as usize > self.config.accept_backlog * 64 {
            self.stats.dropped_backlog += 1;
            return Vec::new();
        }
        let start = worker.busy_until.max(now);
        worker.busy_until = start + self.config.retry_cost;

        self.scid_counter += 1;
        let new_scid = ConnectionId::from_u64((self.scid_counter << 8) | 0x77);
        let token = self.minter.mint(now.as_secs(), u32::from(src_ip), dcid);
        let retry = Packet::Retry {
            version,
            dcid: *client_scid,
            scid: new_scid,
            token: Bytes::from(token),
            original_dcid: *dcid,
        };
        self.stats.retries_sent += 1;
        vec![ResponseDatagram {
            at: worker.busy_until,
            payload: Bytes::from(retry.encode(None).expect("retry encodes")),
        }]
    }

    fn pick_worker(&self, src_ip: Ipv4Addr, src_port: u16) -> usize {
        // SO_REUSEPORT-style flow hashing.
        let h = quicsand_wire::siphash::siphash24(
            SipKey {
                k0: 0x9e37,
                k1: 0x79b9,
            },
            &[
                &u32::from(src_ip).to_le_bytes()[..],
                &src_port.to_le_bytes()[..],
            ]
            .concat(),
        );
        (h % self.workers.len() as u64) as usize
    }
}

fn extract_client_hello(frames: &[Frame]) -> Option<ClientHello> {
    frames.iter().find_map(|f| {
        if let Frame::Crypto { data, .. } = f {
            ClientHello::decode(data).ok()
        } else {
            None
        }
    })
}

/// Opens a server Handshake response for tests/clients: convenience to
/// decrypt with the handshake receive key.
pub fn open_handshake_payload(
    key: SipKey,
    datagram_packet: &quicsand_wire::packet::ParsedPacket,
    aad: &[u8],
) -> Option<Vec<Frame>> {
    datagram_packet.open(key, None, aad).ok().map(|(_, f)| f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_wire::MIN_INITIAL_SIZE;

    fn client_initial(seed: u64, token: Bytes) -> (Vec<u8>, ConnectionId, Bytes) {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let dcid = ConnectionId::from_u64(rng.gen());
        let scid = ConnectionId::from_u64(rng.gen());
        let key_share = Bytes::from(rng.gen::<[u8; 32]>().to_vec());
        let keys = InitialSecrets::derive(Version::V1, &dcid);
        let hello = ClientHello {
            random: rng.gen(),
            cipher_suites: vec![cipher_suite::AES_128_GCM_SHA256],
            server_name: Some("victim.example".into()),
            alpn: vec!["h3".into()],
            key_share: key_share.clone(),
        };
        let wire = Packet::Initial {
            version: Version::V1,
            dcid,
            scid,
            token,
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from(hello.encode()),
            }]),
        }
        .encode_padded(Some(keys.client), MIN_INITIAL_SIZE)
        .unwrap();
        (wire, dcid, key_share)
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    #[test]
    fn accepted_initial_elicits_four_datagrams() {
        let mut server = QuicServerSim::new(ServerConfig::default(), 1);
        let (wire, _, _) = client_initial(1, Bytes::new());
        let responses = server.handle_datagram(Timestamp::from_secs(1), ip(1), 5000, &wire);
        assert_eq!(responses.len(), 4, "Table 1: four datagrams per request");
        assert_eq!(server.stats().accepted, 1);
        assert_eq!(server.stats().responses_sent, 4);
        assert_eq!(server.open_connections(), 1);
        // First datagram: Initial + Handshake coalesced.
        let parsed = parse_datagram(&responses[0].payload, 8).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn malformed_datagram_dropped() {
        let mut server = QuicServerSim::new(ServerConfig::default(), 1);
        let responses = server.handle_datagram(Timestamp::from_secs(1), ip(1), 5000, &[0x12, 0x13]);
        assert!(responses.is_empty());
        assert_eq!(server.stats().dropped_malformed, 1);
    }

    #[test]
    fn connection_table_fills_and_drops() {
        let config = ServerConfig {
            workers: 1,
            conns_per_worker: 10,
            crypto_cost: Duration::from_micros(1),
            accept_backlog: 1_000_000,
            ..ServerConfig::default()
        };
        let mut server = QuicServerSim::new(config, 2);
        for i in 0..15u64 {
            let (wire, _, _) = client_initial(100 + i, Bytes::new());
            server.handle_datagram(Timestamp::from_secs(1), ip(1), 5000 + i as u16, &wire);
        }
        assert_eq!(server.stats().accepted, 10);
        assert_eq!(server.stats().dropped_table, 5);
        assert_eq!(server.open_connections(), 10);
    }

    #[test]
    fn states_expire_after_hold() {
        let config = ServerConfig {
            workers: 1,
            conns_per_worker: 10,
            handshake_hold: Duration::from_secs(60),
            crypto_cost: Duration::from_micros(1),
            accept_backlog: 1_000_000,
            ..ServerConfig::default()
        };
        let mut server = QuicServerSim::new(config, 3);
        for i in 0..10u64 {
            let (wire, _, _) = client_initial(200 + i, Bytes::new());
            server.handle_datagram(Timestamp::from_secs(1), ip(1), 5000 + i as u16, &wire);
        }
        assert_eq!(server.stats().accepted, 10);
        // After the hold elapses, slots free up.
        let (wire, _, _) = client_initial(999, Bytes::new());
        let responses = server.handle_datagram(Timestamp::from_secs(62), ip(2), 6000, &wire);
        assert_eq!(responses.len(), 4);
        assert_eq!(server.stats().dropped_table, 0);
    }

    #[test]
    fn backlog_overflow_drops() {
        let config = ServerConfig {
            workers: 1,
            conns_per_worker: 1_000_000,
            crypto_cost: Duration::from_millis(10), // very slow crypto
            accept_backlog: 2,
            ..ServerConfig::default()
        };
        let mut server = QuicServerSim::new(config, 4);
        let t = Timestamp::from_secs(1);
        let mut dropped = 0;
        for i in 0..10u64 {
            let (wire, _, _) = client_initial(300 + i, Bytes::new());
            if server
                .handle_datagram(t, ip(1), 5000 + i as u16, &wire)
                .is_empty()
            {
                dropped += 1;
            }
        }
        assert!(
            dropped >= 6,
            "deep backlog must shed load, dropped={dropped}"
        );
        assert_eq!(server.stats().dropped_backlog, dropped);
    }

    #[test]
    fn retry_path_is_stateless() {
        let config = ServerConfig::default().with_retry(true);
        let mut server = QuicServerSim::new(config, 5);
        let (wire, _, _) = client_initial(400, Bytes::new());
        let responses = server.handle_datagram(Timestamp::from_secs(1), ip(1), 5000, &wire);
        assert_eq!(responses.len(), 1);
        assert_eq!(server.stats().retries_sent, 1);
        assert_eq!(server.stats().accepted, 0);
        assert_eq!(
            server.open_connections(),
            0,
            "no state for unvalidated clients"
        );
        // The response is a Retry packet.
        let parsed = parse_datagram(&responses[0].payload, 8).unwrap();
        assert!(matches!(parsed[0].0.header, ParsedHeader::Retry { .. }));
    }

    #[test]
    fn valid_token_accepted_after_retry() {
        let config = ServerConfig::default().with_retry(true);
        let mut server = QuicServerSim::new(config, 6);
        let (wire, _, _) = client_initial(500, Bytes::new());
        let t = Timestamp::from_secs(1);
        let responses = server.handle_datagram(t, ip(1), 5000, &wire);
        let ParsedHeader::Retry { token, .. } = &parse_datagram(&responses[0].payload, 8).unwrap()
            [0]
        .0
        .header
        .clone() else {
            panic!("expected retry");
        };
        // Re-send the Initial with the token from the same address.
        let (wire2, _, _) = client_initial(500, token.clone());
        let responses2 = server.handle_datagram(t + Duration::from_secs(1), ip(1), 5000, &wire2);
        assert_eq!(responses2.len(), 4, "validated client gets full service");
        assert_eq!(server.stats().accepted, 1);
    }

    #[test]
    fn spoofed_token_rejected() {
        let config = ServerConfig::default().with_retry(true);
        let mut server = QuicServerSim::new(config, 7);
        let (wire, _, _) = client_initial(600, Bytes::new());
        let t = Timestamp::from_secs(1);
        let responses = server.handle_datagram(t, ip(1), 5000, &wire);
        let ParsedHeader::Retry { token, .. } = &parse_datagram(&responses[0].payload, 8).unwrap()
            [0]
        .0
        .header
        .clone() else {
            panic!("expected retry");
        };
        // A different (spoofed) source presents the token.
        let (wire2, _, _) = client_initial(600, token.clone());
        let responses2 = server.handle_datagram(t, ip(99), 5000, &wire2);
        assert!(responses2.is_empty());
        assert_eq!(server.stats().dropped_bad_token, 1);
    }

    #[test]
    fn workers_partition_load() {
        let config = ServerConfig {
            workers: 4,
            conns_per_worker: 5,
            crypto_cost: Duration::from_micros(1),
            accept_backlog: 1_000_000,
            ..ServerConfig::default()
        };
        let mut server = QuicServerSim::new(config, 8);
        for i in 0..200u64 {
            let (wire, _, _) = client_initial(700 + i, Bytes::new());
            server.handle_datagram(
                Timestamp::from_secs(1),
                ip((i % 200) as u8),
                (5000 + i) as u16,
                &wire,
            );
        }
        // Table capacity is 4 workers x 5 conns = 20 total.
        assert_eq!(server.stats().accepted, 20);
        assert_eq!(server.open_connections(), 20);
    }

    #[test]
    fn unpadded_initial_rejected() {
        // RFC 9000 Â§14.1: a bare (unpadded) Initial must be discarded -
        // otherwise a 120-byte probe could elicit a 1.5 kB flight.
        let mut server = QuicServerSim::new(ServerConfig::default(), 19);
        let dcid = ConnectionId::from_u64(5);
        let keys = InitialSecrets::derive(Version::V1, &dcid);
        let hello = ClientHello {
            random: [0; 32],
            cipher_suites: vec![cipher_suite::AES_128_GCM_SHA256],
            server_name: None,
            alpn: vec![],
            key_share: Bytes::from_static(&[1; 32]),
        };
        let wire = Packet::Initial {
            version: Version::V1,
            dcid,
            scid: ConnectionId::from_u64(6),
            token: Bytes::new(),
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from(hello.encode()),
            }]),
        }
        .encode(Some(keys.client)) // NOT padded
        .unwrap();
        assert!(wire.len() < quicsand_wire::MIN_INITIAL_SIZE);
        let responses = server.handle_datagram(Timestamp::from_secs(1), ip(1), 5000, &wire);
        assert!(responses.is_empty());
        assert_eq!(server.stats().dropped_unpadded, 1);
        assert_eq!(server.stats().accepted, 0);
    }

    #[test]
    fn flight_respects_amplification_budget() {
        // Every response flight to an unvalidated client stays within
        // 3x the received bytes (RFC 9000 Â§8.1).
        let mut server = QuicServerSim::new(ServerConfig::default(), 20);
        let (wire, _, _) = client_initial(77, Bytes::new());
        let responses = server.handle_datagram(Timestamp::from_secs(1), ip(1), 5000, &wire);
        assert!(!responses.is_empty());
        let sent: usize = responses.iter().map(|r| r.payload.len()).sum();
        assert!(
            sent <= wire.len() * quicsand_wire::ANTI_AMPLIFICATION_FACTOR,
            "flight of {sent} bytes exceeds 3x{}",
            wire.len()
        );
    }

    #[test]
    fn adaptive_retry_arms_under_pressure() {
        let config = ServerConfig {
            workers: 1,
            conns_per_worker: 10,
            crypto_cost: Duration::from_micros(1),
            accept_backlog: 1_000_000,
            retry_policy: RetryPolicy::Adaptive {
                occupancy_threshold: 0.5,
            },
            ..ServerConfig::default()
        };
        let mut server = QuicServerSim::new(config, 21);
        // Below threshold (5 of 10 slots): full service, no retry.
        for i in 0..5u64 {
            let (wire, _, _) = client_initial(900 + i, Bytes::new());
            let responses =
                server.handle_datagram(Timestamp::from_secs(1), ip(1), 5000 + i as u16, &wire);
            assert_eq!(responses.len(), 4, "unarmed: full flight");
        }
        assert_eq!(server.stats().retries_sent, 0);
        // At/above threshold: the challenge arms.
        let (wire, _, _) = client_initial(999, Bytes::new());
        let responses = server.handle_datagram(Timestamp::from_secs(1), ip(2), 6000, &wire);
        assert_eq!(responses.len(), 1, "armed: retry only");
        assert_eq!(server.stats().retries_sent, 1);
        assert_eq!(
            server.open_connections(),
            5,
            "no state for challenged client"
        );
    }

    #[test]
    fn adaptive_retry_disarms_after_expiry() {
        let config = ServerConfig {
            workers: 1,
            conns_per_worker: 4,
            crypto_cost: Duration::from_micros(1),
            accept_backlog: 1_000_000,
            handshake_hold: Duration::from_secs(60),
            retry_policy: RetryPolicy::Adaptive {
                occupancy_threshold: 0.5,
            },
            ..ServerConfig::default()
        };
        let mut server = QuicServerSim::new(config, 22);
        for i in 0..2u64 {
            let (wire, _, _) = client_initial(800 + i, Bytes::new());
            server.handle_datagram(Timestamp::from_secs(1), ip(1), 5000 + i as u16, &wire);
        }
        // Armed now; after the hold expires the table drains and the
        // challenge disarms again.
        let (wire, _, _) = client_initial(850, Bytes::new());
        let late = server.handle_datagram(Timestamp::from_secs(120), ip(3), 7000, &wire);
        assert_eq!(late.len(), 4, "disarmed after expiry: full flight");
        assert_eq!(server.stats().retries_sent, 0);
    }

    #[test]
    fn resumption_token_skips_retry() {
        use crate::client::{run_handshake, QuicClient};
        let mut server = QuicServerSim::new(ServerConfig::default().with_retry(true), 23);
        // First visit: pays the retry round trip, earns a NEW_TOKEN.
        let mut first = QuicClient::new(31);
        run_handshake(
            &mut server,
            &mut first,
            ip(9),
            1111,
            Timestamp::from_secs(1),
        );
        assert!(first.is_established());
        assert_eq!(first.round_trips(), 2);
        let token = first
            .resumption_token()
            .expect("server issued NEW_TOKEN")
            .clone();

        // Second visit from the same address: token presented up front,
        // no retry, single round trip (§6 alleviation).
        let mut second = QuicClient::resuming(32, token);
        run_handshake(
            &mut server,
            &mut second,
            ip(9),
            2222,
            Timestamp::from_secs(10),
        );
        assert!(second.is_established());
        assert_eq!(second.round_trips(), 1, "resumption skips the extra RTT");
        assert_eq!(second.retries_seen(), 0);
        assert_eq!(server.stats().resumed, 1);
    }

    #[test]
    fn resumption_token_bound_to_address() {
        use crate::client::{run_handshake, QuicClient};
        let mut server = QuicServerSim::new(ServerConfig::default().with_retry(true), 24);
        let mut first = QuicClient::new(33);
        run_handshake(
            &mut server,
            &mut first,
            ip(9),
            1111,
            Timestamp::from_secs(1),
        );
        let token = first.resumption_token().expect("token issued").clone();
        // A different source presenting the stolen token is rejected.
        let mut thief = QuicClient::resuming(34, token);
        let wire = thief.initial_datagram();
        let responses = server.handle_datagram(Timestamp::from_secs(5), ip(77), 3333, &wire);
        assert!(responses.is_empty());
        assert_eq!(server.stats().dropped_bad_token, 1);
    }

    #[test]
    fn unsupported_version_gets_version_negotiation() {
        let mut server = QuicServerSim::new(ServerConfig::default(), 9);
        // Build an Initial with a grease version - parseable but
        // unsupported.
        let dcid = ConnectionId::from_u64(1);
        let keys = InitialSecrets::derive(Version::Grease(0x1a2a_3a4a), &dcid);
        let wire = Packet::Initial {
            version: Version::Grease(0x1a2a_3a4a),
            dcid,
            scid: ConnectionId::from_u64(2),
            token: Bytes::new(),
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Ping]),
        }
        .encode_padded(Some(keys.client), quicsand_wire::MIN_INITIAL_SIZE)
        .unwrap();
        let responses = server.handle_datagram(Timestamp::from_secs(1), ip(1), 5000, &wire);
        // RFC 9000 Â§6: a stateless Version Negotiation reply, no state.
        assert_eq!(responses.len(), 1);
        assert_eq!(server.stats().vn_sent, 1);
        assert_eq!(server.open_connections(), 0);
        let parsed = parse_datagram(&responses[0].payload, 8).unwrap();
        match &parsed[0].0.header {
            ParsedHeader::VersionNegotiation {
                versions,
                dcid,
                scid,
            } => {
                assert!(versions.contains(&Version::V1));
                // CIDs echoed swapped.
                assert_eq!(*dcid, ConnectionId::from_u64(2));
                assert_eq!(*scid, ConnectionId::from_u64(1));
            }
            other => panic!("expected VN, got {other:?}"),
        }
    }
}
