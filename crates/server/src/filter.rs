//! Ingress filtering strategies for QUIC floods (§5.2 insight).
//!
//! The paper closes its backscatter analysis with an operational
//! observation: "operators may protect against QUIC floods by filtering
//! based on common transport protocol features (i.e., ports) instead of
//! using QUIC-specific features (i.e., SCIDs), which eases the
//! deployment of countermeasures."
//!
//! This module implements both families so the trade-off can be
//! *measured* (see `quicsand-core::experiments::mitigation`):
//!
//! * [`PortRateLimiter`] — a token bucket on UDP/443 ingress. O(1)
//!   state, deployable on any middlebox, but content-blind: legitimate
//!   clients share the fate of the flood once the bucket empties.
//! * [`ConnectionIdLimiter`] — parses QUIC headers and rate-limits *new
//!   connection attempts per source*, admitting packets of established
//!   connections freely. Precise, but needs per-flow state and a QUIC
//!   parser on the fast path.

use quicsand_net::{Duration, Timestamp};
use quicsand_wire::packet::{parse_datagram, ParsedHeader};
use quicsand_wire::ConnectionId;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Verdict and bookkeeping interface shared by the strategies.
pub trait IngressFilter {
    /// Decides whether to admit a datagram arriving at `now` from
    /// `src` with the given UDP payload.
    fn admit(&mut self, now: Timestamp, src: Ipv4Addr, payload: &[u8]) -> bool;

    /// Number of state entries currently held (the deployability cost
    /// axis of §5.2).
    fn state_entries(&self) -> usize;

    /// Strategy label for reports.
    fn label(&self) -> &'static str;
}

/// O(1)-state token bucket over all UDP/443 ingress.
#[derive(Debug)]
pub struct PortRateLimiter {
    rate_pps: f64,
    burst: f64,
    tokens: f64,
    last: Timestamp,
}

impl PortRateLimiter {
    /// Creates a limiter admitting `rate_pps` packets/s with the given
    /// burst allowance.
    pub fn new(rate_pps: f64, burst: f64) -> Self {
        PortRateLimiter {
            rate_pps,
            burst,
            tokens: burst,
            last: Timestamp::EPOCH,
        }
    }
}

impl IngressFilter for PortRateLimiter {
    fn admit(&mut self, now: Timestamp, _src: Ipv4Addr, _payload: &[u8]) -> bool {
        let elapsed = now.saturating_since(self.last).as_secs_f64();
        self.last = now.max(self.last);
        self.tokens = (self.tokens + elapsed * self.rate_pps).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    fn state_entries(&self) -> usize {
        1
    }

    fn label(&self) -> &'static str {
        "port rate limit"
    }
}

/// QUIC-aware limiter: per-source budget of *new* connections per
/// window; packets of already-admitted connections pass freely.
#[derive(Debug)]
pub struct ConnectionIdLimiter {
    new_conns_per_window: usize,
    window: Duration,
    // src -> (window start, new connections admitted this window)
    budgets: HashMap<Ipv4Addr, (Timestamp, usize)>,
    admitted_cids: HashSet<ConnectionId>,
}

impl ConnectionIdLimiter {
    /// Creates a limiter allowing `new_conns_per_window` fresh
    /// connections per source per `window`.
    pub fn new(new_conns_per_window: usize, window: Duration) -> Self {
        ConnectionIdLimiter {
            new_conns_per_window,
            window,
            budgets: HashMap::new(),
            admitted_cids: HashSet::new(),
        }
    }
}

impl IngressFilter for ConnectionIdLimiter {
    fn admit(&mut self, now: Timestamp, src: Ipv4Addr, payload: &[u8]) -> bool {
        // Non-QUIC or malformed payloads are dropped outright (this
        // filter sits on a QUIC port).
        let Ok(packets) = parse_datagram(payload, 8) else {
            return false;
        };
        let Some((packet, _)) = packets.first() else {
            return false;
        };
        match &packet.header {
            ParsedHeader::Long { ty, scid, .. }
                if *ty == quicsand_wire::header::LongPacketType::Initial =>
            {
                // A fresh connection attempt: charge the source budget.
                let entry = self.budgets.entry(src).or_insert((now, 0));
                if now.saturating_since(entry.0) > self.window {
                    *entry = (now, 0);
                }
                if entry.1 >= self.new_conns_per_window {
                    return false;
                }
                entry.1 += 1;
                self.admitted_cids.insert(*scid);
                true
            }
            ParsedHeader::Long { scid, .. } => {
                // Continuation of a handshake: pass if we admitted it.
                self.admitted_cids.contains(scid)
            }
            ParsedHeader::Short { .. } => true, // established traffic
            _ => true,
        }
    }

    fn state_entries(&self) -> usize {
        self.budgets.len() + self.admitted_cids.len()
    }

    fn label(&self) -> &'static str {
        "connection-id limit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::InitialStream;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, last)
    }

    #[test]
    fn port_limiter_caps_rate() {
        let mut f = PortRateLimiter::new(10.0, 10.0);
        let mut admitted = 0;
        // 100 packets within one second: the burst (10) plus ~one
        // second of refill (10) passes, the rest drops.
        for i in 0..100u64 {
            if f.admit(Timestamp::from_micros(i * 10_000), ip(1), b"x") {
                admitted += 1;
            }
        }
        assert!((18..=21).contains(&admitted), "admitted {admitted}");
        assert_eq!(f.state_entries(), 1);
    }

    #[test]
    fn port_limiter_refills() {
        let mut f = PortRateLimiter::new(10.0, 10.0);
        for i in 0..20u64 {
            f.admit(Timestamp::from_micros(i * 1_000), ip(1), b"x");
        }
        // After 2 idle seconds the bucket is full again.
        assert!(f.admit(Timestamp::from_secs(3), ip(1), b"x"));
    }

    #[test]
    fn cid_limiter_budgets_new_connections_per_source() {
        let mut f = ConnectionIdLimiter::new(3, Duration::from_secs(60));
        let mut stream = InitialStream::new(1);
        let mut admitted = 0;
        for i in 0..10 {
            let p = stream.next().unwrap();
            if f.admit(Timestamp::from_secs(1 + i), ip(1), &p.datagram) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 3, "budget of 3 new connections");
        // A different source has its own budget.
        let p = stream.next().unwrap();
        assert!(f.admit(Timestamp::from_secs(2), ip(2), &p.datagram));
    }

    #[test]
    fn cid_limiter_budget_resets_after_window() {
        let mut f = ConnectionIdLimiter::new(1, Duration::from_secs(10));
        let mut stream = InitialStream::new(2);
        let p1 = stream.next().unwrap();
        let p2 = stream.next().unwrap();
        let p3 = stream.next().unwrap();
        assert!(f.admit(Timestamp::from_secs(1), ip(1), &p1.datagram));
        assert!(!f.admit(Timestamp::from_secs(2), ip(1), &p2.datagram));
        assert!(f.admit(Timestamp::from_secs(20), ip(1), &p3.datagram));
    }

    #[test]
    fn cid_limiter_drops_garbage() {
        let mut f = ConnectionIdLimiter::new(100, Duration::from_secs(60));
        assert!(!f.admit(Timestamp::from_secs(1), ip(1), &[0x12, 0x34]));
    }

    #[test]
    fn cid_limiter_state_grows_with_flood() {
        let mut f = ConnectionIdLimiter::new(1_000_000, Duration::from_secs(60));
        let mut port = PortRateLimiter::new(1_000_000.0, 1_000_000.0);
        for (i, p) in InitialStream::new(3).take(200).enumerate() {
            let now = Timestamp::from_secs(1 + i as u64 / 10);
            f.admit(now, p.src_ip, &p.datagram);
            port.admit(now, p.src_ip, &p.datagram);
        }
        // §5.2's deployability point, as numbers: per-flow state vs O(1).
        assert!(f.state_entries() >= 200, "cid state {}", f.state_entries());
        assert_eq!(port.state_entries(), 1);
    }
}
