//! The Table 1 harness: record a client corpus, replay it at a fixed
//! rate, measure service availability.
//!
//! Mirrors the paper's method: "We record 500,000 packets using the
//! QUIC client quiche [...]. To simulate attacks, we then replay *only*
//! client Initial messages at varying packet rates towards new server
//! instances. [...] To determine how many requests were answered we
//! match the respective DCIDs and SCIDs and calculate the service
//! availability ratio."

use crate::model::{QuicServerSim, ServerConfig};
use bytes::Bytes;
use quicsand_net::{Duration, Timestamp};
use quicsand_wire::crypto::InitialSecrets;
use quicsand_wire::packet::{Packet, PacketPayload};
use quicsand_wire::tls::{cipher_suite, ClientHello};
use quicsand_wire::{ConnectionId, Frame, Version, MIN_INITIAL_SIZE};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A recorded client Initial, with its spoofed sender identity.
#[derive(Debug, Clone)]
pub struct RecordedInitial {
    /// Spoofed source address.
    pub src_ip: Ipv4Addr,
    /// Spoofed source port.
    pub src_port: u16,
    /// The Initial datagram (≥1200 bytes).
    pub datagram: Bytes,
}

/// A deterministic stream of distinct recorded Initials — the 500 k
/// quiche recording of the paper without holding 600 MB of packets in
/// memory. `InitialStream::new(seed)` always yields the same sequence.
#[derive(Debug)]
pub struct InitialStream {
    rng: ChaCha12Rng,
}

impl InitialStream {
    /// Creates the stream.
    pub fn new(seed: u64) -> Self {
        InitialStream {
            rng: ChaCha12Rng::seed_from_u64(seed),
        }
    }
}

impl Iterator for InitialStream {
    type Item = RecordedInitial;

    fn next(&mut self) -> Option<RecordedInitial> {
        Some(make_initial(&mut self.rng))
    }
}

fn make_initial(rng: &mut ChaCha12Rng) -> RecordedInitial {
    let dcid = ConnectionId::from_u64(rng.gen());
    let scid = ConnectionId::from_u64(rng.gen());
    let keys = InitialSecrets::derive(Version::V1, &dcid);
    let hello = ClientHello {
        random: rng.gen(),
        cipher_suites: vec![cipher_suite::AES_128_GCM_SHA256],
        server_name: Some("victim.example".into()),
        alpn: vec!["h3".into()],
        key_share: Bytes::from(rng.gen::<[u8; 32]>().to_vec()),
    };
    let wire = Packet::Initial {
        version: Version::V1,
        dcid,
        scid,
        token: Bytes::new(),
        packet_number: 0,
        payload: PacketPayload::new(vec![Frame::Crypto {
            offset: 0,
            data: Bytes::from(hello.encode()),
        }]),
    }
    .encode_padded(Some(keys.client), MIN_INITIAL_SIZE)
    .expect("corpus initial encodes");
    RecordedInitial {
        src_ip: Ipv4Addr::from(rng.gen::<u32>()),
        src_port: rng.gen_range(1_024..65_000),
        datagram: Bytes::from(wire),
    }
}

/// Records `count` distinct client Initials (a materialized corpus;
/// prefer [`InitialStream`] for large replays).
pub fn record_corpus(count: usize, seed: u64) -> Vec<RecordedInitial> {
    InitialStream::new(seed).take(count).collect()
}

/// One Table 1 row configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Attack volume in packets per second.
    pub pps: u64,
    /// Total Initials to replay (the corpus cycles if shorter).
    pub total_requests: u64,
    /// Server configuration under test.
    pub server: ServerConfig,
}

/// One Table 1 row result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Attack volume (pps).
    pub pps: u64,
    /// Whether RETRY was enabled.
    pub retry: bool,
    /// Worker count.
    pub workers: usize,
    /// Client requests sent.
    pub requests: u64,
    /// Server response datagrams observed.
    pub responses: u64,
    /// Requests answered (accepted handshakes, or Retry replies when
    /// RETRY is on — matching the paper's DCID/SCID matching).
    pub answered: u64,
    /// answered / requests.
    pub availability: f64,
    /// Whether served clients paid an extra round trip.
    pub extra_rtt: bool,
}

impl ReplayOutcome {
    /// Availability in percent, rounded like the paper's table.
    pub fn availability_percent(&self) -> u64 {
        (self.availability * 100.0).round() as u64
    }
}

/// Replays a deterministic recorded stream at `config.pps` against a
/// fresh server instance. `seed` fixes both the recording and the
/// server's key material.
pub fn replay_flood(config: &ReplayConfig, seed: u64) -> ReplayOutcome {
    assert!(config.pps > 0, "replay needs a positive rate");
    let mut server = QuicServerSim::new(config.server, seed);
    let interval = Duration::from_micros(1_000_000 / config.pps);
    let mut now = Timestamp::EPOCH;
    let mut responses = 0u64;
    let mut stream = InitialStream::new(seed ^ 0xC0_FF_EE);
    for _ in 0..config.total_requests {
        let packet = stream.next().expect("stream is infinite");
        responses += server
            .handle_datagram(now, packet.src_ip, packet.src_port, &packet.datagram)
            .len() as u64;
        now += interval;
    }
    let stats = server.stats();
    // Retries count as answered (the paper's DCID/SCID matching sees
    // the Retry reply); with RETRY off retries_sent is zero.
    let answered = stats.retries_sent + stats.accepted;
    ReplayOutcome {
        pps: config.pps,
        retry: config.server.retry_policy.can_retry(),
        workers: config.server.workers,
        requests: config.total_requests,
        responses,
        answered,
        availability: answered as f64 / config.total_requests as f64,
        extra_rtt: config.server.retry_policy.can_retry(),
    }
}

/// The Table 1 row set (volume, retry, workers, requests), exactly as
/// printed in the paper.
pub fn paper_table_rows() -> Vec<(u64, bool, usize, u64)> {
    vec![
        (10, false, 4, 3_001),
        (100, false, 4, 30_001),
        (1_000, false, 4, 300_001),
        (1_000, false, 128, 300_001),
        (10_000, false, 128, 500_000),
        (100_000, false, 128, 498_991),
        (1_000, true, 4, 300_001),
        (10_000, true, 4, 500_000),
        (100_000, true, 4, 500_000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_config(workers: usize, retry: bool) -> ServerConfig {
        ServerConfig {
            workers,
            ..ServerConfig::default()
        }
        .with_retry(retry)
    }

    #[test]
    fn corpus_initials_are_distinct_and_padded() {
        let c = record_corpus(100, 1);
        assert_eq!(c.len(), 100);
        let mut seen = std::collections::HashSet::new();
        for r in &c {
            assert!(r.datagram.len() >= MIN_INITIAL_SIZE);
            assert!(seen.insert(r.datagram.clone()), "duplicate initial");
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<_> = InitialStream::new(5).take(5).map(|r| r.datagram).collect();
        let b: Vec<_> = InitialStream::new(5).take(5).map(|r| r.datagram).collect();
        assert_eq!(a, b);
        let c: Vec<_> = InitialStream::new(6).take(5).map(|r| r.datagram).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn low_rate_fully_answered() {
        // Table 1 row 1 shape: 10 pps, 4 workers -> 100 %.
        let outcome = replay_flood(
            &ReplayConfig {
                pps: 10,
                total_requests: 1_200,
                server: server_config(4, false),
            },
            1,
        );
        assert_eq!(outcome.availability_percent(), 100);
        assert_eq!(outcome.responses, outcome.requests * 4);
    }

    #[test]
    fn overload_collapses_availability() {
        // Table 1 row 3 shape: 1000 pps, 4 workers. Scaled run: 120 s
        // of attack. Steady state = 4 x 1024 slots / 60 s hold ≈ 68
        // accepted/s; the availability must collapse towards
        // (4096 + 68 x 60) / 120 000 ≈ 7 %.
        let outcome = replay_flood(
            &ReplayConfig {
                pps: 1_000,
                total_requests: 120_000,
                server: server_config(4, false),
            },
            1,
        );
        assert!(
            outcome.availability < 0.12,
            "availability {}",
            outcome.availability
        );
    }

    #[test]
    fn more_workers_restore_availability_at_1000pps() {
        // Table 1 row 4 shape: 1000 pps, 128 workers -> 100 %.
        let outcome = replay_flood(
            &ReplayConfig {
                pps: 1_000,
                total_requests: 60_000,
                server: server_config(128, false),
            },
            1,
        );
        assert!(
            outcome.availability > 0.95,
            "availability {}",
            outcome.availability
        );
    }

    #[test]
    fn retry_keeps_availability_at_any_rate() {
        for pps in [1_000u64, 10_000] {
            let outcome = replay_flood(
                &ReplayConfig {
                    pps,
                    total_requests: 20_000,
                    server: server_config(4, true),
                },
                1,
            );
            assert!(
                outcome.availability > 0.99,
                "retry at {pps} pps: availability {}",
                outcome.availability
            );
            assert!(outcome.extra_rtt);
        }
    }

    #[test]
    fn availability_is_monotone_in_rate() {
        let rates = [10u64, 100, 1_000];
        let mut last = f64::INFINITY;
        for pps in rates {
            let outcome = replay_flood(
                &ReplayConfig {
                    pps,
                    total_requests: (pps * 60).min(60_000) + 1,
                    server: server_config(4, false),
                },
                1,
            );
            assert!(
                outcome.availability <= last + 0.05,
                "availability should not improve with rate"
            );
            last = outcome.availability;
        }
    }

    #[test]
    fn paper_rows_well_formed() {
        let rows = paper_table_rows();
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0], (10, false, 4, 3_001));
        assert!(rows.iter().filter(|(_, retry, _, _)| *retry).count() == 3);
    }
}
