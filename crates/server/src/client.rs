//! A QUIC client state machine (quiche stand-in).
//!
//! Drives a full handshake against [`crate::model::QuicServerSim`],
//! transparently honouring RETRY: on receiving a Retry packet it
//! verifies the integrity tag, adopts the token and re-sends its
//! Initial — paying the extra round trip the paper's Table 1 records
//! in its last column.

use crate::model::QuicServerSim;
use bytes::Bytes;
use quicsand_net::Timestamp;
use quicsand_wire::crypto::{handshake_key, Direction, InitialSecrets};
use quicsand_wire::packet::{
    parse_datagram, verify_parsed_retry, Packet, PacketPayload, ParsedHeader,
};
use quicsand_wire::siphash::SipKey;
use quicsand_wire::tls::{cipher_suite, ClientHello, Finished, ServerHello};
use quicsand_wire::{ConnectionId, Frame, Version, MIN_INITIAL_SIZE};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::net::Ipv4Addr;

/// Client handshake state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientState {
    /// Nothing sent yet.
    Idle,
    /// Initial sent, waiting for the server's first flight (or Retry).
    AwaitingServerHello,
    /// Finished sent, waiting for HANDSHAKE_DONE.
    AwaitingConfirmation,
    /// Handshake confirmed.
    Established,
}

/// The client.
#[derive(Debug)]
pub struct QuicClient {
    version: Version,
    original_dcid: ConnectionId,
    scid: ConnectionId,
    key_share: Bytes,
    state: ClientState,
    token: Bytes,
    server_scid: Option<ConnectionId>,
    hs_send_key: Option<SipKey>,
    hs_recv_key: Option<SipKey>,
    rng: ChaCha12Rng,
    round_trips: u32,
    retries_seen: u32,
    negotiations_seen: u32,
    resumption_token: Option<Bytes>,
}

impl QuicClient {
    /// Creates a client with fresh connection IDs.
    pub fn new(seed: u64) -> Self {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        QuicClient {
            version: Version::V1,
            original_dcid: ConnectionId::from_u64(rng.gen()),
            scid: ConnectionId::from_u64(rng.gen()),
            key_share: Bytes::from(rng.gen::<[u8; 32]>().to_vec()),
            state: ClientState::Idle,
            token: Bytes::new(),
            server_scid: None,
            hs_send_key: None,
            hs_recv_key: None,
            rng,
            round_trips: 0,
            retries_seen: 0,
            negotiations_seen: 0,
            resumption_token: None,
        }
    }

    /// Creates a client that presents a NEW_TOKEN from a previous
    /// session in its first Initial — the §6 resumption path that
    /// skips the RETRY round trip.
    pub fn resuming(seed: u64, token: Bytes) -> Self {
        let mut client = Self::new(seed);
        client.token = token;
        client
    }

    /// Creates a client that offers a specific (possibly unsupported)
    /// QUIC version — used to exercise the version-negotiation leg of
    /// the paper's §2 "worst case 3 RTTs" handshake.
    pub fn offering_version(seed: u64, version: Version) -> Self {
        let mut client = Self::new(seed);
        client.version = version;
        client
    }

    /// Version Negotiation packets honoured so far.
    pub fn negotiations_seen(&self) -> u32 {
        self.negotiations_seen
    }

    /// The NEW_TOKEN issued by the server at handshake confirmation,
    /// for use by a future connection.
    pub fn resumption_token(&self) -> Option<&Bytes> {
        self.resumption_token.as_ref()
    }

    /// Current state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// Whether the handshake is confirmed.
    pub fn is_established(&self) -> bool {
        self.state == ClientState::Established
    }

    /// Round trips consumed so far (Initial flights sent).
    pub fn round_trips(&self) -> u32 {
        self.round_trips
    }

    /// Retry packets honoured.
    pub fn retries_seen(&self) -> u32 {
        self.retries_seen
    }

    /// Builds the (next) Initial flight.
    pub fn initial_datagram(&mut self) -> Bytes {
        // After a Retry, the Initial's DCID is the server's new SCID
        // and both sides re-derive Initial keys from it (RFC 9001
        // §5.2); the token carries the original DCID for the server's
        // address-validation bookkeeping.
        let dcid = self.server_scid.unwrap_or(self.original_dcid);
        let keys = InitialSecrets::derive(self.version, &dcid);
        let hello = ClientHello {
            random: self.rng.gen(),
            cipher_suites: vec![cipher_suite::AES_128_GCM_SHA256],
            server_name: Some("victim.example".into()),
            alpn: vec!["h3".into()],
            key_share: self.key_share.clone(),
        };
        let wire = Packet::Initial {
            version: self.version,
            dcid,
            scid: self.scid,
            token: self.token.clone(),
            packet_number: u64::from(self.round_trips),
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from(hello.encode()),
            }]),
        }
        .encode_padded(Some(keys.client), MIN_INITIAL_SIZE)
        .expect("client initial encodes");
        self.state = ClientState::AwaitingServerHello;
        self.round_trips += 1;
        Bytes::from(wire)
    }

    /// Processes a server datagram; returns the client's next datagram
    /// if one is due (a re-sent Initial after Retry, or the Finished
    /// flight).
    pub fn handle_datagram(&mut self, datagram: &[u8]) -> Option<Bytes> {
        let packets = parse_datagram(datagram, 8).ok()?;
        let mut reply = None;
        for (packet, aad) in &packets {
            match &packet.header {
                ParsedHeader::VersionNegotiation { versions, .. } => {
                    // Pick the first mutually supported version and
                    // restart the handshake under it (RFC 9000 §6).
                    let Some(chosen) = versions.iter().copied().find(|v| v.is_supported()) else {
                        continue;
                    };
                    if chosen == self.version || self.negotiations_seen > 0 {
                        // Never downgrade twice (VN loops are an attack
                        // vector; a VN for a supported offer is bogus).
                        continue;
                    }
                    self.negotiations_seen += 1;
                    self.version = chosen;
                    reply = Some(self.initial_datagram());
                }
                ParsedHeader::Retry { scid, token, .. } => {
                    // Verify the integrity tag before honouring it.
                    if verify_parsed_retry(&packet.header, &self.original_dcid).is_err() {
                        continue;
                    }
                    self.retries_seen += 1;
                    self.token = token.clone();
                    self.server_scid = Some(*scid);
                    reply = Some(self.initial_datagram());
                }
                ParsedHeader::Long {
                    ty: quicsand_wire::header::LongPacketType::Initial,
                    scid,
                    ..
                } => {
                    // Keys track the DCID of our latest Initial (the
                    // retry SCID after a Retry, the original otherwise).
                    let current_dcid = self.server_scid.unwrap_or(self.original_dcid);
                    let keys = InitialSecrets::derive(self.version, &current_dcid);
                    let Ok((_pn, frames)) = packet.open(keys.server, None, aad) else {
                        continue;
                    };
                    let Some(server_hello) = extract_server_hello(&frames) else {
                        continue;
                    };
                    self.server_scid = Some(*scid);
                    self.hs_send_key = Some(handshake_key(
                        &self.key_share,
                        &server_hello.key_share,
                        Direction::ClientToServer,
                    ));
                    self.hs_recv_key = Some(handshake_key(
                        &self.key_share,
                        &server_hello.key_share,
                        Direction::ServerToClient,
                    ));
                    // Answer with the Finished flight.
                    reply = Some(self.finished_datagram());
                }
                ParsedHeader::Long {
                    ty: quicsand_wire::header::LongPacketType::Handshake,
                    ..
                } => {
                    let Some(key) = self.hs_recv_key else {
                        continue;
                    };
                    let Ok((_pn, frames)) = packet.open(key, None, aad) else {
                        continue;
                    };
                    for frame in &frames {
                        match frame {
                            Frame::HandshakeDone => {
                                self.state = ClientState::Established;
                            }
                            Frame::NewToken { token } => {
                                self.resumption_token = Some(token.clone());
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
        reply
    }

    fn finished_datagram(&mut self) -> Bytes {
        let key = self.hs_send_key.expect("finished requires handshake keys");
        let finished = Finished {
            verify_data: Bytes::from(self.rng.gen::<[u8; 32]>().to_vec()),
        };
        let wire = Packet::Handshake {
            version: self.version,
            dcid: self.server_scid.unwrap_or(ConnectionId::EMPTY),
            scid: self.scid,
            packet_number: 0,
            payload: PacketPayload::new(vec![Frame::Crypto {
                offset: 0,
                data: Bytes::from(finished.encode()),
            }]),
        }
        .encode(Some(key))
        .expect("finished encodes");
        self.state = ClientState::AwaitingConfirmation;
        Bytes::from(wire)
    }
}

/// Runs a handshake across lossy [`Link`]s with client-driven
/// retransmission: if an exchange stalls (lost Initial, lost server
/// flight, lost Finished or lost HANDSHAKE_DONE), the client re-sends
/// its last datagram; the server resends its stored flight or
/// re-confirms. Returns whether the handshake completed within
/// `max_attempts` retransmission rounds.
///
/// [`Link`]: quicsand_net::link::Link
#[allow(clippy::too_many_arguments)]
pub fn run_handshake_over_link<R: rand::Rng + ?Sized>(
    server: &mut QuicServerSim,
    client: &mut QuicClient,
    c2s: &mut quicsand_net::link::Link,
    s2c: &mut quicsand_net::link::Link,
    src_ip: Ipv4Addr,
    src_port: u16,
    start: Timestamp,
    rng: &mut R,
    max_attempts: u32,
) -> bool {
    let mut now = start;
    let mut last = client.initial_datagram();
    for _ in 0..max_attempts {
        let mut queue = vec![last.clone()];
        while let Some(datagram) = queue.pop() {
            let Some(arrival) = c2s.send(now, datagram.len(), rng) else {
                continue; // lost on the way to the server
            };
            for response in server.handle_datagram(arrival, src_ip, src_port, &datagram) {
                let Some(delivery) = s2c.send(response.at, response.payload.len(), rng) else {
                    continue; // lost on the way back
                };
                now = now.max(delivery);
                if let Some(next) = client.handle_datagram(&response.payload) {
                    last = next.clone();
                    queue.push(next);
                }
                if client.is_established() {
                    return true;
                }
            }
        }
        // Retransmission timeout: try the last flight again.
        now += quicsand_net::Duration::from_millis(200);
    }
    client.is_established()
}

fn extract_server_hello(frames: &[Frame]) -> Option<ServerHello> {
    frames.iter().find_map(|f| {
        if let Frame::Crypto { data, .. } = f {
            ServerHello::decode(data).ok()
        } else {
            None
        }
    })
}

/// Runs a complete client↔server handshake in virtual time, returning
/// the established client. Loops message exchange until quiescence.
pub fn run_handshake(
    server: &mut QuicServerSim,
    client: &mut QuicClient,
    src_ip: Ipv4Addr,
    src_port: u16,
    start: Timestamp,
) {
    let mut to_server = vec![client.initial_datagram()];
    let mut now = start;
    let mut budget = 16; // bounded exchanges; a handshake needs ≤ 3
    while let Some(datagram) = to_server.pop() {
        budget -= 1;
        if budget == 0 {
            break;
        }
        let responses = server.handle_datagram(now, src_ip, src_port, &datagram);
        for response in responses {
            now = now.max(response.at);
            if let Some(reply) = client.handle_datagram(&response.payload) {
                to_server.push(reply);
            }
            if client.is_established() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ServerConfig;

    fn ip() -> Ipv4Addr {
        Ipv4Addr::new(10, 1, 1, 1)
    }

    #[test]
    fn one_rtt_handshake_without_retry() {
        let mut server = QuicServerSim::new(ServerConfig::default(), 1);
        let mut client = QuicClient::new(11);
        run_handshake(
            &mut server,
            &mut client,
            ip(),
            4242,
            Timestamp::from_secs(1),
        );
        assert!(client.is_established());
        assert_eq!(client.round_trips(), 1, "no retry: single initial flight");
        assert_eq!(client.retries_seen(), 0);
        assert_eq!(server.stats().completed, 1);
    }

    #[test]
    fn retry_adds_one_round_trip() {
        let mut server = QuicServerSim::new(ServerConfig::default().with_retry(true), 2);
        let mut client = QuicClient::new(12);
        run_handshake(
            &mut server,
            &mut client,
            ip(),
            4242,
            Timestamp::from_secs(1),
        );
        assert!(client.is_established());
        assert_eq!(client.retries_seen(), 1);
        assert_eq!(client.round_trips(), 2, "retry costs exactly one extra RTT");
        assert_eq!(server.stats().retries_sent, 1);
        assert_eq!(server.stats().completed, 1);
    }

    #[test]
    fn client_rejects_forged_retry() {
        let mut client = QuicClient::new(13);
        let _ = client.initial_datagram();
        // A Retry keyed on the wrong original DCID must be ignored.
        let forged = Packet::Retry {
            version: Version::V1,
            dcid: ConnectionId::from_u64(1),
            scid: ConnectionId::from_u64(2),
            token: Bytes::from_static(b"evil"),
            original_dcid: ConnectionId::from_u64(0xbad),
        }
        .encode(None)
        .unwrap();
        assert!(client.handle_datagram(&forged).is_none());
        assert_eq!(client.retries_seen(), 0);
    }

    #[test]
    fn client_ignores_garbage() {
        let mut client = QuicClient::new(14);
        let _ = client.initial_datagram();
        assert!(client.handle_datagram(&[1, 2, 3]).is_none());
        assert!(client.handle_datagram(&[]).is_none());
        assert_eq!(client.state(), ClientState::AwaitingServerHello);
    }

    #[test]
    fn established_client_survives_duplicate_flights() {
        let mut server = QuicServerSim::new(ServerConfig::default(), 3);
        let mut client = QuicClient::new(15);
        run_handshake(
            &mut server,
            &mut client,
            ip(),
            4242,
            Timestamp::from_secs(1),
        );
        assert!(client.is_established());
        // Stray duplicate from the server changes nothing.
        let responses = server.handle_datagram(
            Timestamp::from_secs(2),
            ip(),
            4242,
            &client.initial_datagram(),
        );
        let established_before = client.is_established();
        let _ = established_before;
        for r in responses {
            let _ = client.handle_datagram(&r.payload);
        }
        assert_eq!(server.stats().received, 3);
    }

    #[test]
    fn version_negotiation_adds_a_round_trip() {
        // Paper Â§2: offering an unsupported version forces version
        // negotiation before the typical handshake.
        let mut server = QuicServerSim::new(ServerConfig::default(), 6);
        let mut client = QuicClient::offering_version(20, Version::Grease(0x3a4a_5a6a));
        run_handshake(
            &mut server,
            &mut client,
            ip(),
            4242,
            Timestamp::from_secs(1),
        );
        assert!(client.is_established());
        assert_eq!(client.negotiations_seen(), 1);
        assert_eq!(client.round_trips(), 2, "VN + 1-RTT handshake");
        assert_eq!(server.stats().vn_sent, 1);
    }

    #[test]
    fn worst_case_three_round_trips() {
        // Paper Â§2: "In the worst case, the handshake requires 3 RTTs" -
        // version negotiation, then RETRY, then the typical handshake.
        let mut server = QuicServerSim::new(ServerConfig::default().with_retry(true), 7);
        let mut client = QuicClient::offering_version(21, Version::Grease(0x1a2a_3a4a));
        run_handshake(
            &mut server,
            &mut client,
            ip(),
            4242,
            Timestamp::from_secs(1),
        );
        assert!(client.is_established());
        assert_eq!(client.negotiations_seen(), 1);
        assert_eq!(client.retries_seen(), 1);
        assert_eq!(client.round_trips(), 3, "VN + RETRY + handshake");
    }

    #[test]
    fn client_ignores_bogus_vn_for_supported_offer() {
        // A VN in response to a supported version is never honoured
        // (downgrade protection, RFC 9000 Â§6.2).
        let mut client = QuicClient::new(22);
        let _ = client.initial_datagram();
        let vn = Packet::VersionNegotiation {
            dcid: ConnectionId::from_u64(1),
            scid: ConnectionId::from_u64(2),
            versions: vec![Version::V1],
        }
        .encode(None)
        .unwrap();
        assert!(client.handle_datagram(&vn).is_none());
        assert_eq!(client.negotiations_seen(), 0);
    }

    #[test]
    fn handshake_survives_lossy_links() {
        use quicsand_net::link::{Link, LinkConfig};
        use rand::SeedableRng;
        let mut completed = 0;
        let mut retransmissions = 0;
        for seed in 0..20u64 {
            let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
            let mut server = QuicServerSim::new(ServerConfig::default(), seed);
            let mut client = QuicClient::new(1000 + seed);
            let lossy = LinkConfig {
                loss: 0.25,
                ..LinkConfig::default()
            };
            let mut c2s = Link::new(lossy);
            let mut s2c = Link::new(lossy);
            if run_handshake_over_link(
                &mut server,
                &mut client,
                &mut c2s,
                &mut s2c,
                ip(),
                (4000 + seed) as u16,
                Timestamp::from_secs(1),
                &mut rng,
                40,
            ) {
                completed += 1;
            }
            retransmissions += server.stats().flight_retransmissions + server.stats().duplicates;
        }
        assert_eq!(completed, 20, "all handshakes must recover from 25% loss");
        assert!(
            retransmissions > 0,
            "at 25% loss some retransmission must have happened"
        );
    }

    #[test]
    fn lossless_link_handshake_is_single_attempt() {
        use quicsand_net::link::{Link, LinkConfig};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(9);
        let mut server = QuicServerSim::new(ServerConfig::default(), 9);
        let mut client = QuicClient::new(9);
        let mut c2s = Link::new(LinkConfig::default());
        let mut s2c = Link::new(LinkConfig::default());
        assert!(run_handshake_over_link(
            &mut server,
            &mut client,
            &mut c2s,
            &mut s2c,
            ip(),
            4242,
            Timestamp::from_secs(1),
            &mut rng,
            1,
        ));
        assert_eq!(client.round_trips(), 1);
        assert_eq!(server.stats().flight_retransmissions, 0);
    }

    #[test]
    fn many_clients_handshake_concurrently() {
        let mut server = QuicServerSim::new(ServerConfig::default(), 4);
        let mut established = 0;
        for i in 0..50u64 {
            let mut client = QuicClient::new(100 + i);
            run_handshake(
                &mut server,
                &mut client,
                Ipv4Addr::new(10, 2, (i / 250) as u8, (i % 250) as u8),
                (1000 + i) as u16,
                Timestamp::from_secs(1),
            );
            if client.is_established() {
                established += 1;
            }
        }
        assert_eq!(established, 50);
        assert_eq!(server.stats().completed, 50);
    }
}
