//! # quicsand-server
//!
//! The QUIC server resource model, client, and flood-replay harness
//! behind Table 1 of the paper.
//!
//! The paper benchmarks NGINX's QUIC stack on a 128-core machine by
//! replaying 500 000 recorded client Initials at increasing rates and
//! measuring service availability, with and without RETRY. This crate
//! reproduces the *mechanism* (DESIGN.md §2):
//!
//! * [`model`] — a worker-based server: per-worker connection tables
//!   (1 024 entries, states held for the 60 s handshake lifetime),
//!   per-worker CPU with an accept backlog, per-handshake crypto cost,
//!   and a stateless RETRY fast path. The server speaks the real
//!   `quicsand-wire` format: it parses Initials, derives keys, seals
//!   responses, validates retry tokens.
//! * [`client`] — a QUIC client state machine (quiche stand-in) that
//!   performs full handshakes, transparently honouring RETRY.
//! * [`replay`] — the Table 1 harness: record a client corpus, replay
//!   at a fixed rate, count responses, compute availability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod filter;
pub mod model;
pub mod replay;

pub use client::QuicClient;
pub use model::{QuicServerSim, RetryPolicy, ServerConfig, ServerStats};
pub use replay::{replay_flood, ReplayConfig, ReplayOutcome};
