//! Metric bundle for the live engine: alert lifecycle, memory-cap
//! evictions, and checkpoint volume.
//!
//! Counters mirror [`LiveStats`](crate::LiveStats) field for field and
//! are published as deltas at chunk boundaries by the engine, so they
//! reconcile exactly at any shard count. Attack distributions reuse the
//! batch [`DosMetrics`] family — same names, buckets, and units — which
//! is what makes live histogram totals directly comparable with a batch
//! `analyze` over the same trace.

use crate::detector::LiveStats;
use quicsand_obs::{Counter, Gauge, MetricsRegistry, Stability};
use quicsand_sessions::DosMetrics;

/// Live-engine counters (one bundle per engine, shared across shards).
#[derive(Debug, Clone)]
pub struct LiveMetrics {
    /// `quicsand_live_events_total` == [`LiveStats::events_in`].
    pub events_total: Counter,
    /// `quicsand_live_alerts_total{phase="opened"}`.
    pub opened: Counter,
    /// `{phase="escalated"}`.
    pub escalated: Counter,
    /// `{phase="closed"}`.
    pub closed: Counter,
    /// `{phase="reclassified"}`.
    pub reclassified: Counter,
    /// `quicsand_live_evictions_total` == [`LiveStats::evictions`].
    pub evictions: Counter,
    /// `quicsand_live_peak_tracked` == [`LiveStats::peak_tracked`]
    /// (volatile: per-shard peaks are summed, so the value depends on
    /// the shard count, not only on the trace).
    pub peak_tracked: Gauge,
    /// `quicsand_live_tracked` — victims tracked at the last sync
    /// (volatile: a point-in-time reading).
    pub tracked: Gauge,
    /// `quicsand_live_checkpoints_total` — checkpoints written
    /// (volatile: depends on the operator's checkpoint cadence).
    pub checkpoints_total: Counter,
    /// `quicsand_live_checkpoint_bytes_total` — serialized checkpoint
    /// bytes written (volatile, same reason).
    pub checkpoint_bytes_total: Counter,
    /// Closed-attack distributions, shared family with batch detection.
    pub dos: DosMetrics,
}

impl LiveMetrics {
    /// Registers the live family on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        const ALERTS: &str = "quicsand_live_alerts_total";
        const ALERTS_HELP: &str = "Alert lifecycle transitions, by phase";
        let phase = |p: &'static str| {
            registry.counter_with(ALERTS, ALERTS_HELP, Stability::Stable, &[("phase", p)])
        };
        LiveMetrics {
            events_total: registry.counter(
                "quicsand_live_events_total",
                "Packets offered to the live detector (post-ingest-guard)",
                Stability::Stable,
            ),
            opened: phase("opened"),
            escalated: phase("escalated"),
            closed: phase("closed"),
            reclassified: phase("reclassified"),
            evictions: registry.counter(
                "quicsand_live_evictions_total",
                "Victims evicted under the per-channel memory cap",
                Stability::Stable,
            ),
            peak_tracked: registry.gauge(
                "quicsand_live_peak_tracked",
                "High-water mark of simultaneously tracked victims",
                Stability::Volatile,
            ),
            tracked: registry.gauge(
                "quicsand_live_tracked",
                "Victims tracked at the last sync point",
                Stability::Volatile,
            ),
            checkpoints_total: registry.counter(
                "quicsand_live_checkpoints_total",
                "Engine checkpoints written",
                Stability::Volatile,
            ),
            checkpoint_bytes_total: registry.counter(
                "quicsand_live_checkpoint_bytes_total",
                "Serialized checkpoint bytes written",
                Stability::Volatile,
            ),
            dos: DosMetrics::register(registry),
        }
    }

    /// Publishes the difference `now - prev` of two readings of the
    /// merged detector stats (panics if a monotone field regressed).
    pub fn add_delta(&self, prev: &LiveStats, now: &LiveStats) {
        self.events_total
            .add(delta(prev.events_in, now.events_in, "events_in"));
        self.opened.add(delta(prev.opened, now.opened, "opened"));
        self.escalated
            .add(delta(prev.escalated, now.escalated, "escalated"));
        self.closed.add(delta(prev.closed, now.closed, "closed"));
        self.reclassified
            .add(delta(prev.reclassified, now.reclassified, "reclassified"));
        self.evictions
            .add(delta(prev.evictions, now.evictions, "evictions"));
        self.peak_tracked.set(now.peak_tracked as u64);
    }

    /// The reconciliation invariant: every counter equals its
    /// [`LiveStats`] field exactly (valid at sync points).
    pub fn verify(&self, stats: &LiveStats) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        let mut check = |name: &str, counter: u64, field: u64| {
            if counter != field {
                errors.push(format!("{name}: counter {counter} != stats {field}"));
            }
        };
        check("events_in", self.events_total.get(), stats.events_in);
        check("opened", self.opened.get(), stats.opened);
        check("escalated", self.escalated.get(), stats.escalated);
        check("closed", self.closed.get(), stats.closed);
        check("reclassified", self.reclassified.get(), stats.reclassified);
        check("evictions", self.evictions.get(), stats.evictions);
        check(
            "peak_tracked",
            self.peak_tracked.get(),
            stats.peak_tracked as u64,
        );
        let observed = self.dos.attacks_quic.get() + self.dos.attacks_common.get();
        if observed != stats.closed {
            errors.push(format!(
                "attack observations {observed} != closed alerts {}",
                stats.closed
            ));
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

fn delta(prev: u64, now: u64, what: &str) -> u64 {
    now.checked_sub(prev)
        .unwrap_or_else(|| panic!("monotone live stats regressed: {what} {now} < {prev}"))
}
