//! Streaming flood-detection engine for the QUICsand telescope.
//!
//! The batch pipeline answers "what attacks happened in this capture?"
//! after reading all of it. This crate answers the same question *while
//! the capture is still arriving*: records stream through the ingest
//! guard into per-victim sliding-window state, and alerts move through
//! an explicit lifecycle (`Opened → Escalated → Closed`, plus
//! `Reclassified` when a later TCP/ICMP flood upgrades a closed QUIC
//! alert's multi-vector verdict).
//!
//! The design contract is **online ≡ offline**: on any finite trace the
//! set of closed alerts equals what batch
//! [`detect_attacks`](quicsand_sessions::dos::detect_attacks) +
//! [`classify_multivector`](quicsand_sessions::multivector::classify_multivector)
//! produce for the same thresholds — at any shard count, any chunk
//! size, and across a [`LiveEngine::snapshot`] / [`LiveEngine::restore`]
//! checkpoint. The only sanctioned divergence is memory-pressure
//! eviction (the per-channel victim cap), which is surfaced explicitly
//! via [`LiveEvent::evicted`] and counted in [`LiveStats::evictions`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod detector;
pub mod engine;
pub mod forensics;
pub mod metrics;
pub mod multi;

pub use alert::{EvidencePacket, LiveEvent, LiveEventKind};
pub use detector::{
    ClassifiedAttack, DetectorSnapshot, LiveConfig, LiveDetector, LiveStats, MinuteCell,
    ProfileCell,
};
pub use engine::{LiveEngine, LiveSnapshot};
pub use forensics::{
    parse_slice_qlog, replay_slice, synthesize_packets, AlertSlice, ReplayOutcome, SliceChannel,
    SlicePacket,
};
pub use metrics::LiveMetrics;
pub use multi::{parse_checkpoint, MultiSnapshot, MultiSourceLive, CHECKPOINT_SCHEMA_VERSION};
