//! Alert lifecycle events and their text/JSON renderings.
//!
//! The batch pipeline ends with a terminal `Vec<Attack>`; the live
//! engine instead narrates each flood as it unfolds:
//!
//! ```text
//! Opened ──► Escalated ──► Closed ──► Reclassified*
//! ```
//!
//! All three DoS measures (packet count, duration, max 1-minute rate)
//! are monotone non-decreasing while a session is open, so the state
//! machine only ever moves forward — an alert can never "un-open", which
//! is the structural hysteresis that keeps alerts from flapping.
//! `Closed` carries the final [`Attack`] (identical to what batch
//! `detect_attacks` would emit for the same session) plus the victim's
//! multi-vector classification against the TCP/ICMP floods closed *so
//! far*; a later common-protocol close can upgrade that verdict, which
//! surfaces as `Reclassified`.

use quicsand_net::Timestamp;
use quicsand_sessions::dos::{Attack, AttackProtocol};
use quicsand_sessions::multivector::MultiVectorClass;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A captured packet retained as evidence for an alert (the tail of the
/// flood's backscatter, bounded by
/// [`LiveConfig::evidence_capacity`](crate::LiveConfig::evidence_capacity)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvidencePacket {
    /// Capture time.
    pub ts: Timestamp,
    /// Telescope address the packet hit.
    pub dst: Ipv4Addr,
    /// Wire size in bytes.
    pub bytes: u64,
}

/// What happened to an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LiveEventKind {
    /// The victim's open session first crossed the base thresholds.
    Opened,
    /// The session crossed the escalation tier (base thresholds scaled
    /// by the escalation weight, Appendix-B style).
    Escalated,
    /// The session went idle past the timeout (or the stream ended, or
    /// the victim was evicted under memory pressure): the final attack
    /// record is attached.
    Closed,
    /// A TCP/ICMP flood closing later changed an already-closed QUIC
    /// alert's multi-vector verdict (e.g. Isolated → Concurrent).
    Reclassified,
}

impl LiveEventKind {
    /// Stable label used in text output.
    pub fn label(self) -> &'static str {
        match self {
            LiveEventKind::Opened => "OPEN",
            LiveEventKind::Escalated => "ESCALATE",
            LiveEventKind::Closed => "CLOSE",
            LiveEventKind::Reclassified => "RECLASSIFY",
        }
    }
}

/// One alert lifecycle event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveEvent {
    /// Event time (the packet that triggered the transition for
    /// `Opened`/`Escalated`; the session's last packet for `Closed`).
    pub at: Timestamp,
    /// Which detection channel the alert belongs to.
    pub protocol: AttackProtocol,
    /// The flood victim (the backscatter source).
    pub victim: Ipv4Addr,
    /// The lifecycle transition.
    pub kind: LiveEventKind,
    /// The attack record (`Closed` and `Reclassified` only).
    pub attack: Option<Attack>,
    /// Multi-vector verdict (QUIC `Closed`/`Reclassified` only).
    pub class: Option<MultiVectorClass>,
    /// Overlap share for concurrent verdicts (Fig. 12 semantics).
    pub overlap_share: Option<f64>,
    /// Gap to the nearest common flood for sequential verdicts, in
    /// seconds (Fig. 13 semantics).
    pub gap_secs: Option<f64>,
    /// Whether this `Closed` was forced by the per-channel victim cap
    /// rather than by idleness — the attack record may be truncated.
    pub evicted: bool,
    /// Retained evidence packets, oldest first (`Closed` only).
    pub evidence: Vec<EvidencePacket>,
}

impl LiveEvent {
    /// One-line human-readable rendering (the `--alert-format text`
    /// output).
    pub fn render_text(&self) -> String {
        let mut line = format!(
            "[{:>12.3}] {:<10} {:<8} victim={}",
            self.at.as_secs_f64(),
            self.kind.label(),
            self.protocol.label(),
            self.victim
        );
        if let Some(attack) = &self.attack {
            line.push_str(&format!(
                " packets={} dur={}s max_pps={:.2}",
                attack.packet_count,
                attack.duration().as_secs(),
                attack.max_pps
            ));
        }
        if let Some(class) = self.class {
            line.push_str(&format!(" class={}", class.label()));
        }
        if let Some(share) = self.overlap_share {
            line.push_str(&format!(" share={share:.2}"));
        }
        if let Some(gap) = self.gap_secs {
            line.push_str(&format!(" gap={gap:.0}s"));
        }
        if self.evicted {
            line.push_str(" evicted");
        }
        if !self.evidence.is_empty() {
            line.push_str(&format!(" evidence={}", self.evidence.len()));
        }
        line
    }

    /// JSON rendering (the `--alert-format json` output), one object
    /// per line.
    pub fn render_json(&self) -> String {
        serde_json::to_string(self).expect("LiveEvent serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> LiveEvent {
        LiveEvent {
            at: Timestamp::from_secs(120),
            protocol: AttackProtocol::Quic,
            victim: Ipv4Addr::new(203, 0, 113, 9),
            kind: LiveEventKind::Closed,
            attack: Some(Attack {
                victim: Ipv4Addr::new(203, 0, 113, 9),
                protocol: AttackProtocol::Quic,
                start: Timestamp::from_secs(0),
                end: Timestamp::from_secs(120),
                packet_count: 480,
                max_pps: 4.0,
            }),
            class: Some(MultiVectorClass::Concurrent),
            overlap_share: Some(0.95),
            gap_secs: None,
            evicted: false,
            evidence: vec![EvidencePacket {
                ts: Timestamp::from_secs(119),
                dst: Ipv4Addr::new(10, 0, 0, 1),
                bytes: 60,
            }],
        }
    }

    #[test]
    fn text_rendering_mentions_the_essentials() {
        let text = event().render_text();
        assert!(text.contains("CLOSE"), "{text}");
        assert!(text.contains("victim=203.0.113.9"), "{text}");
        assert!(text.contains("packets=480"), "{text}");
        assert!(text.contains("class=concurrent"), "{text}");
        assert!(text.contains("share=0.95"), "{text}");
        assert!(text.contains("evidence=1"), "{text}");
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let original = event();
        let json = original.render_json();
        let back: LiveEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(LiveEventKind::Opened.label(), "OPEN");
        assert_eq!(LiveEventKind::Escalated.label(), "ESCALATE");
        assert_eq!(LiveEventKind::Closed.label(), "CLOSE");
        assert_eq!(LiveEventKind::Reclassified.label(), "RECLASSIFY");
    }

    #[test]
    fn minimal_event_renders_without_optionals() {
        let e = LiveEvent {
            at: Timestamp::from_secs(1),
            protocol: AttackProtocol::TcpIcmp,
            victim: Ipv4Addr::new(198, 51, 100, 1),
            kind: LiveEventKind::Opened,
            attack: None,
            class: None,
            overlap_share: None,
            gap_secs: None,
            evicted: false,
            evidence: Vec::new(),
        };
        let text = e.render_text();
        assert!(text.contains("OPEN"), "{text}");
        assert!(!text.contains("class="), "{text}");
    }
}
