//! Multi-source front end for the live engine: a [`SourceSet`] pumped
//! into a [`LiveEngine`], with per-source metrics and a schema-v2
//! checkpoint that snapshots every feed's resume cursor.
//!
//! The engine itself is unchanged — it still consumes plain record
//! chunks — so every engine-level invariant (shard-count and chunk-size
//! independence, snapshot/restore losslessness) carries over verbatim.
//! What this layer adds on top:
//!
//! * one [`SourceSample`] bundle per feed on the engine's registry
//!   (volatile: feed layout is deployment shape, not trace content),
//! * the conservation invariant `sum(source cursors) == records
//!   offered`, checked by [`MultiSourceLive::verify_metrics`], and
//! * [`MultiSnapshot`] — checkpoint schema v2. Because the merge holds
//!   exactly one head per source, its future output is a pure function
//!   of the per-source remaining suffixes; restoring the engine state
//!   and re-opening every feed past its cursor therefore reproduces the
//!   exact continuation, even when the original run had reconnects in
//!   flight.
//!
//! **Backward compatibility:** a v1 checkpoint is a bare
//! [`LiveSnapshot`] (single implicit source, no cursor field).
//! [`parse_checkpoint`] still accepts it, and restore maps it onto a
//! one-source set resuming at `offered` — exact, because a
//! single-source merge delivers records in stream order.

use crate::alert::LiveEvent;
use crate::detector::{LiveConfig, LiveStats};
use crate::engine::{LiveEngine, LiveSnapshot};
use quicsand_net::multi::{SourceFactory, SourceSet, SourceSetConfig, SourceStats};
use quicsand_net::StreamSource;
use quicsand_obs::{SourceSample, SourceSetMetrics};
use quicsand_telescope::{GuardConfig, IngestStats};
use serde::{Deserialize, Serialize};

/// Current checkpoint schema version ([`MultiSnapshot::version`]).
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 2;

/// Checkpoint schema v2: the engine snapshot plus one resume cursor
/// (absolute records consumed) per source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSnapshot {
    /// Schema version; see [`CHECKPOINT_SCHEMA_VERSION`].
    pub version: u32,
    /// The engine's own lossless snapshot.
    pub engine: LiveSnapshot,
    /// Records consumed per source at checkpoint time (empty for a
    /// parsed v1 checkpoint).
    pub cursors: Vec<u64>,
}

impl MultiSnapshot {
    /// The per-source cursors a restore over `sources` feeds should
    /// resume from. A v1 checkpoint carries no cursor vector, but the
    /// single implicit source consumed exactly `offered` records.
    pub fn resume_cursors(&self, sources: usize) -> Result<Vec<u64>, String> {
        if self.version < CHECKPOINT_SCHEMA_VERSION {
            if sources != 1 {
                return Err(format!(
                    "v1 checkpoint describes a single source, cannot resume {sources} feeds"
                ));
            }
            return Ok(vec![self.engine.offered]);
        }
        if self.cursors.len() != sources {
            return Err(format!(
                "checkpoint has {} source cursor(s), cannot resume {sources} feeds",
                self.cursors.len()
            ));
        }
        Ok(self.cursors.clone())
    }
}

/// Parses a checkpoint of either schema: v2 [`MultiSnapshot`] JSON, or
/// the v1 format (a bare [`LiveSnapshot`]) which is mapped onto a
/// `version: 1` snapshot with no cursor vector.
pub fn parse_checkpoint(json: &str) -> Result<MultiSnapshot, String> {
    match serde_json::from_str::<MultiSnapshot>(json) {
        Ok(snapshot) if (1..=CHECKPOINT_SCHEMA_VERSION).contains(&snapshot.version) => Ok(snapshot),
        Ok(snapshot) => Err(format!(
            "unsupported checkpoint schema v{} (newest supported: v{CHECKPOINT_SCHEMA_VERSION})",
            snapshot.version
        )),
        Err(_) => {
            let engine: LiveSnapshot = serde_json::from_str(json)
                .map_err(|e| format!("neither a v2 nor a v1 checkpoint: {e}"))?;
            Ok(MultiSnapshot {
                version: 1,
                engine,
                cursors: Vec::new(),
            })
        }
    }
}

fn to_samples(stats: &[SourceStats]) -> Vec<SourceSample> {
    stats
        .iter()
        .map(|s| SourceSample {
            delivered: s.delivered,
            batches: s.batches,
            reconnects: s.reconnects,
            drops: s.drops,
            queue_depth: s.queue_depth as u64,
            queue_peak: s.queue_peak as u64,
        })
        .collect()
}

/// A [`LiveEngine`] fed by a [`SourceSet`], keeping the per-source
/// metric bundles in sync at every chunk boundary.
#[derive(Debug)]
pub struct MultiSourceLive {
    engine: LiveEngine,
    set: SourceSet,
    source_metrics: SourceSetMetrics,
    synced_sources: Vec<SourceSample>,
    exhausted: bool,
}

impl MultiSourceLive {
    /// Builds a fresh engine over `set`.
    pub fn new(config: LiveConfig, guard: GuardConfig, shards: usize, set: SourceSet) -> Self {
        Self::attach(LiveEngine::new(config, guard, shards), set)
    }

    /// Couples an engine (fresh or restored) to a source set and
    /// registers the per-source families on its registry. The first
    /// sync publishes the set's resume cursors whole, so counters cover
    /// the full run even after a restore.
    fn attach(engine: LiveEngine, set: SourceSet) -> Self {
        let source_metrics = SourceSetMetrics::register(engine.registry(), set.len());
        let mut live = MultiSourceLive {
            synced_sources: vec![SourceSample::default(); set.len()],
            engine,
            set,
            source_metrics,
            exhausted: false,
        };
        live.sync_sources();
        live
    }

    /// Rebuilds engine and sources from a checkpoint: the engine via
    /// its own restore, each feed re-opened and fast-forwarded past its
    /// cursor. Replaying the rest of the stream emits exactly the
    /// events the snapshotted run would have.
    pub fn restore(
        snapshot: &MultiSnapshot,
        factories: Vec<Box<dyn SourceFactory>>,
        config: &SourceSetConfig,
    ) -> Result<MultiSourceLive, String> {
        let cursors = snapshot.resume_cursors(factories.len())?;
        let engine = LiveEngine::restore(&snapshot.engine);
        let set = SourceSet::resume(factories, config, &cursors);
        Ok(Self::attach(engine, set))
    }

    /// Publishes per-source deltas against a fresh stats reading.
    fn sync_sources(&mut self) {
        let samples = to_samples(&self.set.stats());
        self.source_metrics
            .add_delta(&self.synced_sources, &samples);
        self.synced_sources = samples;
    }

    /// Pulls up to `chunk` merged records and offers them to the
    /// engine. `None` once every source is exhausted (the engine still
    /// needs [`MultiSourceLive::finish`]).
    pub fn pump(&mut self, chunk: usize) -> Option<Vec<LiveEvent>> {
        self.pump_with(chunk, &mut quicsand_events::NoopSubscriber)
    }

    /// [`MultiSourceLive::pump`], additionally forwarding the typed
    /// event stream (wire rejections, Retry/VN observations, alert
    /// lifecycle) to `subscriber`. Delegates to
    /// [`LiveEngine::offer_chunk_with`], so the stream is deterministic
    /// at any shard count.
    pub fn pump_with<S: quicsand_events::Subscriber>(
        &mut self,
        chunk: usize,
        subscriber: &mut S,
    ) -> Option<Vec<LiveEvent>> {
        if self.exhausted {
            return None;
        }
        let records = self
            .set
            .pull_chunk(chunk.max(1))
            .expect("the merged stream handles source errors internally");
        if records.is_empty() {
            self.exhausted = true;
            self.sync_sources();
            return None;
        }
        let events = self.engine.offer_chunk_with(&records, subscriber);
        self.sync_sources();
        Some(events)
    }

    /// Ends the stream: flushes every open session and returns the
    /// trailing events.
    pub fn finish(&mut self) -> Vec<LiveEvent> {
        self.finish_with(&mut quicsand_events::NoopSubscriber)
    }

    /// [`MultiSourceLive::finish`], forwarding the trailing alert
    /// lifecycle events to `subscriber`.
    pub fn finish_with<S: quicsand_events::Subscriber>(
        &mut self,
        subscriber: &mut S,
    ) -> Vec<LiveEvent> {
        let events = self.engine.finish_with(subscriber);
        self.sync_sources();
        events
    }

    /// Takes a schema-v2 checkpoint of engine and source cursors.
    pub fn snapshot(&self) -> MultiSnapshot {
        MultiSnapshot {
            version: CHECKPOINT_SCHEMA_VERSION,
            engine: self.engine.snapshot(),
            cursors: self.set.cursors(),
        }
    }

    /// The reconciliation invariant, extended with the per-source
    /// counters: engine counters equal engine stats, source counters
    /// equal source stats, and the cursors conserve records —
    /// `sum(delivered) == offered`.
    pub fn verify_metrics(&mut self) -> Result<(), Vec<String>> {
        let mut errors = self.engine.verify_metrics().err().unwrap_or_default();
        let samples = to_samples(&self.set.stats());
        self.source_metrics
            .add_delta(&self.synced_sources, &samples);
        self.synced_sources = samples.clone();
        if let Err(e) = self.source_metrics.verify(&samples) {
            errors.extend(e);
        }
        let delivered = self.set.delivered_total();
        if delivered != self.engine.offered() {
            errors.push(format!(
                "records not conserved: sources delivered {delivered} != engine offered {}",
                self.engine.offered()
            ));
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// The underlying engine (alerts, stats, registry).
    pub fn engine(&self) -> &LiveEngine {
        &self.engine
    }

    /// Mutable engine access (e.g. re-seeding checkpoint counters after
    /// a restore).
    pub fn engine_mut(&mut self) -> &mut LiveEngine {
        &mut self.engine
    }

    /// Records offered to the engine so far.
    pub fn offered(&self) -> u64 {
        self.engine.offered()
    }

    /// Merged detector counters (delegates to the engine).
    pub fn live_stats(&self) -> LiveStats {
        self.engine.live_stats()
    }

    /// Merged ingest counters (delegates to the engine).
    pub fn ingest_stats(&self) -> IngestStats {
        self.engine.ingest_stats()
    }

    /// Per-source telemetry at the last reading.
    pub fn source_stats(&self) -> Vec<SourceStats> {
        self.set.stats()
    }

    /// Number of feeds in the set.
    pub fn sources(&self) -> usize {
        self.set.len()
    }

    /// Per-source vantage labels (delegates to the set). The qlog
    /// export records these in the trace's vantage-point metadata.
    pub fn labels(&self) -> &[String] {
        self.set.labels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_net::multi::{memory_factory, merge_records};
    use quicsand_net::{PacketRecord, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    fn syn_ack(ts_micros: u64, last: u8) -> PacketRecord {
        PacketRecord::tcp(
            Timestamp::from_micros(ts_micros),
            Ipv4Addr::new(198, 51, 100, last),
            Ipv4Addr::new(10, 0, 0, 7),
            443,
            50_000,
            TcpFlags::SYN_ACK,
        )
    }

    fn trace(victims: u8, secs: u64) -> Vec<PacketRecord> {
        let mut records = Vec::new();
        for tick in 0..(secs * 2) {
            for v in 0..victims {
                records.push(syn_ack(tick * 500_000 + v as u64, v + 1));
            }
        }
        records
    }

    fn splits(records: &[PacketRecord], n: usize) -> Vec<Vec<PacketRecord>> {
        let mut parts = vec![Vec::new(); n];
        for (i, r) in records.iter().enumerate() {
            parts[i % n].push(r.clone());
        }
        parts
    }

    fn factories(parts: &[Vec<PacketRecord>]) -> Vec<Box<dyn SourceFactory>> {
        parts
            .iter()
            .map(|p| Box::new(memory_factory(p.clone())) as Box<dyn SourceFactory>)
            .collect()
    }

    #[test]
    fn pump_matches_a_single_engine_over_the_merged_trace() {
        let records = trace(3, 120);
        let parts = splits(&records, 2);
        let merged = merge_records(&parts);

        let mut reference = LiveEngine::new(LiveConfig::default(), GuardConfig::default(), 1);
        let mut want = Vec::new();
        for chunk in merged.chunks(512) {
            want.extend(reference.offer_chunk(chunk));
        }
        want.extend(reference.finish());

        let set = SourceSet::spawn(factories(&parts), &SourceSetConfig::default());
        let mut live = MultiSourceLive::new(LiveConfig::default(), GuardConfig::default(), 1, set);
        let mut got = Vec::new();
        while let Some(events) = live.pump(512) {
            got.extend(events);
        }
        got.extend(live.finish());

        assert_eq!(got, want);
        assert_eq!(live.engine().closed_common(), reference.closed_common());
        live.verify_metrics().expect("reconciles");
    }

    #[test]
    fn v2_checkpoint_round_trips_and_resumes() {
        let records = trace(2, 120);
        let parts = splits(&records, 2);

        let set = SourceSet::spawn(factories(&parts), &SourceSetConfig::default());
        let mut live = MultiSourceLive::new(LiveConfig::default(), GuardConfig::default(), 2, set);
        let mut before = Vec::new();
        for _ in 0..3 {
            before.extend(live.pump(64).expect("stream not done"));
        }
        let snapshot = live.snapshot();
        let encoded = serde_json::to_string(&snapshot).unwrap();
        let decoded = parse_checkpoint(&encoded).expect("v2 parses");
        assert_eq!(decoded, snapshot);

        let mut restored =
            MultiSourceLive::restore(&decoded, factories(&parts), &SourceSetConfig::default())
                .expect("restore");
        assert_eq!(restored.snapshot(), snapshot, "restore is lossless");
        let mut after = Vec::new();
        while let Some(events) = restored.pump(64) {
            after.extend(events);
        }
        after.extend(restored.finish());
        restored.verify_metrics().expect("restored run reconciles");

        // The uninterrupted run emits exactly before ++ after.
        let mut straight = Vec::new();
        let set = SourceSet::spawn(factories(&parts), &SourceSetConfig::default());
        let mut live = MultiSourceLive::new(LiveConfig::default(), GuardConfig::default(), 2, set);
        while let Some(events) = live.pump(64) {
            straight.extend(events);
        }
        straight.extend(live.finish());
        let mut resumed = before;
        resumed.extend(after);
        assert_eq!(resumed, straight);
    }

    #[test]
    fn v1_checkpoints_still_parse_and_resume_a_single_feed() {
        let records = trace(2, 90);
        let mut engine = LiveEngine::new(LiveConfig::default(), GuardConfig::default(), 1);
        let half = records.len() / 2;
        let mut before = engine.offer_chunk(&records[..half]);
        let v1_json = serde_json::to_string(&engine.snapshot()).unwrap();

        let parsed = parse_checkpoint(&v1_json).expect("v1 parses");
        assert_eq!(parsed.version, 1);
        assert!(parsed.cursors.is_empty());
        assert_eq!(
            parsed.resume_cursors(1).unwrap(),
            vec![half as u64],
            "v1 maps offered onto the single source's cursor"
        );
        parsed
            .resume_cursors(2)
            .expect_err("v1 cannot resume multiple feeds");

        let factories: Vec<Box<dyn SourceFactory>> =
            vec![Box::new(memory_factory(records.clone()))];
        let mut restored =
            MultiSourceLive::restore(&parsed, factories, &SourceSetConfig::default())
                .expect("v1 restore");
        while let Some(events) = restored.pump(256) {
            before.extend(events);
        }
        before.extend(restored.finish());

        let mut straight = LiveEngine::new(LiveConfig::default(), GuardConfig::default(), 1);
        let mut want = straight.offer_chunk(&records);
        want.extend(straight.finish());
        assert_eq!(before, want);
    }

    #[test]
    fn unknown_future_schema_is_rejected() {
        let records = trace(1, 30);
        let set = SourceSet::spawn(factories(&splits(&records, 1)), &SourceSetConfig::default());
        let live = MultiSourceLive::new(LiveConfig::default(), GuardConfig::default(), 1, set);
        let mut snapshot = live.snapshot();
        snapshot.version = 3;
        let encoded = serde_json::to_string(&snapshot).unwrap();
        let error = parse_checkpoint(&encoded).expect_err("v3 rejected");
        assert!(error.contains("unsupported"), "{error}");
    }

    #[test]
    fn cursor_count_mismatch_is_rejected() {
        let records = trace(1, 30);
        let parts = splits(&records, 2);
        let set = SourceSet::spawn(factories(&parts), &SourceSetConfig::default());
        let live = MultiSourceLive::new(LiveConfig::default(), GuardConfig::default(), 1, set);
        let snapshot = live.snapshot();
        let one: Vec<Box<dyn SourceFactory>> = vec![Box::new(memory_factory(parts[0].clone()))];
        MultiSourceLive::restore(&snapshot, one, &SourceSetConfig::default())
            .expect_err("2 cursors cannot resume 1 feed");
    }
}
