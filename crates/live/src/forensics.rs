//! Replayable per-alert forensics: self-contained qlog slices.
//!
//! A closed alert's evidence ring holds only the tail of the flood; the
//! per-minute arrival profile ([`ProfileCell`]) holds the rest of what
//! the detector's decision depended on. Together they make a *slice*:
//! a small qlog JSON-SEQ file that carries the detector configuration,
//! the victim's QUIC arrival profile, every same-victim TCP/ICMP flood
//! profile, the retained evidence packets, and the verdict the live run
//! reached.
//!
//! The replay contract: synthesizing packets from the profiles
//! ([`synthesize_packets`]) and feeding them through a **fresh**
//! [`LiveDetector`] with the slice's configuration reproduces the same
//! closed alert — identical [`Attack`] record — and the same
//! `classify_multivector` verdict. The synthesis is exact on everything
//! the detector measures: slot endpoints are real packet times, middles
//! are evenly spaced between them, so per-minute counts, session
//! bounds, packet totals and the max 1-minute rate all reproduce;
//! interpolated inter-packet gaps never exceed the largest original gap
//! (mean ≤ max), so the session never splits during replay.

use crate::alert::EvidencePacket;
use crate::detector::{LiveConfig, LiveDetector, ProfileCell};
use quicsand_events::qlog::{parse_json_seq, validate_qlog, QlogWriter};
use quicsand_net::Timestamp;
use quicsand_sessions::dos::{Attack, AttackProtocol};
use quicsand_sessions::multivector::MultiVectorClass;
use serde::{Deserialize, Serialize, Value};
use std::net::Ipv4Addr;

/// One channel's contribution to a forensic slice: the closed attack,
/// its arrival profile, and the retained evidence packets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceChannel {
    /// The closed attack record.
    pub attack: Attack,
    /// Per-minute arrival profile at close time, sorted by bucket.
    pub profile: Vec<ProfileCell>,
    /// Evidence ring contents at close time, oldest first.
    pub evidence: Vec<EvidencePacket>,
}

/// A self-contained, replayable description of one closed QUIC alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertSlice {
    /// Index of the alert in the run's merged close order.
    pub alert_index: usize,
    /// The flood victim both channels share.
    pub victim: Ipv4Addr,
    /// Detector configuration the alert was produced under (replay uses
    /// exactly this).
    pub config: LiveConfig,
    /// The QUIC alert itself.
    pub quic: SliceChannel,
    /// Every same-victim TCP/ICMP flood that closed during the run —
    /// the inputs to the multi-vector verdict.
    pub commons: Vec<SliceChannel>,
    /// The verdict the live run reached (after all reclassifications).
    pub class: MultiVectorClass,
    /// Overlap share behind a `Concurrent` verdict.
    pub overlap_share: Option<f64>,
    /// Gap in seconds behind a `Sequential` verdict.
    pub gap_secs: Option<f64>,
}

/// One synthesized packet of a slice replay stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlicePacket {
    /// Synthesized arrival time.
    pub at: Timestamp,
    /// Which detection channel the packet belongs to.
    pub protocol: AttackProtocol,
    /// The flood victim (backscatter source).
    pub victim: Ipv4Addr,
}

/// What a successful slice replay reproduced.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// The reproduced attack record (equals the slice's).
    pub attack: Attack,
    /// The reproduced verdict (equals the slice's).
    pub class: MultiVectorClass,
    /// Reproduced overlap share.
    pub overlap_share: Option<f64>,
    /// Reproduced sequential gap in seconds.
    pub gap_secs: Option<f64>,
}

/// Synthesizes per-packet timestamps from an arrival profile.
///
/// Each slot contributes `count` packets: `first` and `last` exactly,
/// middles evenly spaced between them (u128 arithmetic, no overflow).
/// All synthesized times stay inside `[first, last]` and therefore
/// inside the slot's minute bucket, so per-minute counts — and with
/// them `max_pps` — reproduce exactly.
pub fn synthesize_packets(profile: &[ProfileCell]) -> Vec<Timestamp> {
    let mut out = Vec::new();
    for cell in profile {
        if cell.count == 1 {
            out.push(cell.first);
            continue;
        }
        let base = cell.first.as_micros();
        let span = (cell.last.as_micros() - base) as u128;
        for i in 0..cell.count {
            let offset = (span * i as u128 / (cell.count - 1) as u128) as u64;
            out.push(Timestamp::from_micros(base + offset));
        }
    }
    // Profiles are bucket-sorted and cells are disjoint in time, but a
    // sort keeps the contract independent of that invariant.
    out.sort_unstable();
    out
}

impl AlertSlice {
    /// The slice's replay stream: both channels' synthesized packets,
    /// merged into time order (stable, so each channel's own packets
    /// keep their synthesis order).
    pub fn replay_packets(&self) -> Vec<SlicePacket> {
        let mut packets: Vec<SlicePacket> = Vec::new();
        for at in synthesize_packets(&self.quic.profile) {
            packets.push(SlicePacket {
                at,
                protocol: AttackProtocol::Quic,
                victim: self.victim,
            });
        }
        for common in &self.commons {
            for at in synthesize_packets(&common.profile) {
                packets.push(SlicePacket {
                    at,
                    protocol: AttackProtocol::TcpIcmp,
                    victim: self.victim,
                });
            }
        }
        packets.sort_by_key(|p| p.at);
        packets
    }

    /// Serializes the slice as a standalone qlog JSON-SEQ file: the
    /// header, one `quicsand:alert_slice` record carrying the whole
    /// slice, one `quicsand:slice_packet` record per synthesized replay
    /// packet, and one `quicsand:slice_evidence` record per retained
    /// evidence packet.
    pub fn to_qlog(&self) -> Result<Vec<u8>, String> {
        let title = format!(
            "quicsand alert slice #{} victim {}",
            self.alert_index, self.victim
        );
        let (mut writer, buffer) =
            QlogWriter::to_buffer(&title, &[format!("alert-{}", self.alert_index)])?;
        let data = serde::to_value(self).map_err(|e| format!("slice encode: {e}"))?;
        writer.raw_record(self.quic.attack.start, "quicsand:alert_slice", data);
        for packet in self.replay_packets() {
            let data = serde::to_value(&packet).map_err(|e| format!("packet encode: {e}"))?;
            writer.raw_record(packet.at, "quicsand:slice_packet", data);
        }
        for evidence in self
            .quic
            .evidence
            .iter()
            .chain(self.commons.iter().flat_map(|c| c.evidence.iter()))
        {
            let data = serde::to_value(evidence).map_err(|e| format!("evidence encode: {e}"))?;
            writer.raw_record(evidence.ts, "quicsand:slice_evidence", data);
        }
        writer.finish()?;
        Ok(buffer.contents())
    }
}

/// Parses a slice qlog file back into the slice and its replay stream.
///
/// Validates RFC 7464 framing and the qlog header first; the replay
/// stream is taken from the `quicsand:slice_packet` records, so the
/// replay really consumes what the file carries.
pub fn parse_slice_qlog(bytes: &[u8]) -> Result<(AlertSlice, Vec<SlicePacket>), String> {
    validate_qlog(bytes)?;
    let records = parse_json_seq(bytes)?;
    let mut slice: Option<AlertSlice> = None;
    let mut packets: Vec<SlicePacket> = Vec::new();
    for record in records.iter().skip(1) {
        let Some(Value::Str(name)) = record.get("name") else {
            continue;
        };
        let data = || {
            record
                .get("data")
                .cloned()
                .ok_or_else(|| format!("{name} record has no data"))
        };
        match name.as_str() {
            "quicsand:alert_slice" => {
                let parsed = serde::from_value::<AlertSlice>(data()?)
                    .map_err(|e| format!("alert_slice decode: {e}"))?;
                if slice.replace(parsed).is_some() {
                    return Err("more than one alert_slice record".into());
                }
            }
            "quicsand:slice_packet" => {
                packets.push(
                    serde::from_value::<SlicePacket>(data()?)
                        .map_err(|e| format!("slice_packet decode: {e}"))?,
                );
            }
            _ => {}
        }
    }
    let slice = slice.ok_or("no alert_slice record in file")?;
    Ok((slice, packets))
}

/// Feeds a slice's replay stream through a fresh [`LiveDetector`] and
/// checks the replay contract: the run must close exactly one QUIC
/// alert with the slice's attack record and verdict, and reproduce
/// every common flood the slice carries.
pub fn replay_slice(slice: &AlertSlice, packets: &[SlicePacket]) -> Result<ReplayOutcome, String> {
    let mut detector = LiveDetector::new(slice.config);
    let dst = slice
        .quic
        .evidence
        .first()
        .map_or(Ipv4Addr::UNSPECIFIED, |e| e.dst);
    for packet in packets {
        match packet.protocol {
            AttackProtocol::Quic => {
                detector.offer_response(packet.at, packet.victim, dst, 0);
            }
            AttackProtocol::TcpIcmp => {
                detector.offer_baseline(packet.at, packet.victim, dst, 0);
            }
        }
    }
    detector.finish();

    let closed = detector.closed_quic();
    if closed.len() != 1 {
        return Err(format!(
            "replay closed {} QUIC alerts, expected exactly 1",
            closed.len()
        ));
    }
    let got = &closed[0];
    if got.attack != slice.quic.attack {
        return Err(format!(
            "replayed attack diverges:\n  got  {:?}\n  want {:?}",
            got.attack, slice.quic.attack
        ));
    }
    let want_commons: Vec<&Attack> = slice.commons.iter().map(|c| &c.attack).collect();
    let got_commons: Vec<&Attack> = detector.closed_common().iter().collect();
    if got_commons != want_commons {
        return Err(format!(
            "replayed common floods diverge:\n  got  {:?}\n  want {:?}",
            got_commons, want_commons
        ));
    }
    let (class, overlap_share, gap) = got.verdict();
    let gap_secs = gap.map(|g| g.as_secs_f64());
    if class != slice.class || overlap_share != slice.overlap_share || gap_secs != slice.gap_secs {
        return Err(format!(
            "replayed verdict diverges: got ({:?}, {:?}, {:?}), want ({:?}, {:?}, {:?})",
            class, overlap_share, gap_secs, slice.class, slice.overlap_share, slice.gap_secs
        ));
    }
    Ok(ReplayOutcome {
        attack: got.attack.clone(),
        class,
        overlap_share,
        gap_secs,
    })
}

impl LiveDetector {
    /// Builds the self-contained forensic slice for closed QUIC alert
    /// `index` (close order), or `None` if out of range.
    pub fn alert_slice(&self, index: usize) -> Option<AlertSlice> {
        let classified = self.closed_quic().get(index)?;
        let victim = classified.attack.victim;
        let mut commons = Vec::new();
        for (i, attack) in self.closed_common().iter().enumerate() {
            if attack.victim == victim {
                commons.push(SliceChannel {
                    attack: attack.clone(),
                    profile: self.common_profiles()[i].clone(),
                    evidence: self.common_evidence()[i].clone(),
                });
            }
        }
        let (class, overlap_share, gap) = classified.verdict();
        Some(AlertSlice {
            alert_index: index,
            victim,
            config: *self.config(),
            quic: SliceChannel {
                attack: classified.attack.clone(),
                profile: classified.profile.clone(),
                evidence: classified.evidence.clone(),
            },
            commons,
            class,
            overlap_share,
            gap_secs: gap.map(|g| g.as_secs_f64()),
        })
    }

    /// Forensic slices for every closed QUIC alert, in close order.
    pub fn alert_slices(&self) -> Vec<AlertSlice> {
        (0..self.closed_quic().len())
            .filter_map(|i| self.alert_slice(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_net::Duration;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, last)
    }

    fn dst() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }

    /// Feeds a 2-pps flood for `secs` seconds starting at `start_secs`.
    fn flood(detector: &mut LiveDetector, victim: Ipv4Addr, start_secs: u64, secs: u64) {
        for i in 0..(secs * 2) {
            let ts = Timestamp::from_micros(start_secs * 1_000_000 + i * 500_000);
            detector.offer_response(ts, victim, dst(), 60);
        }
    }

    #[test]
    fn synthesis_is_exact_on_endpoints_counts_and_buckets() {
        let profile = vec![
            ProfileCell {
                minute: 0,
                count: 3,
                first: Timestamp::from_secs(10),
                last: Timestamp::from_secs(50),
            },
            ProfileCell {
                minute: 1,
                count: 1,
                first: Timestamp::from_secs(90),
                last: Timestamp::from_secs(90),
            },
        ];
        let packets = synthesize_packets(&profile);
        assert_eq!(packets.len(), 4);
        assert_eq!(packets[0], Timestamp::from_secs(10));
        assert_eq!(packets[1], Timestamp::from_secs(30));
        assert_eq!(packets[2], Timestamp::from_secs(50));
        assert_eq!(packets[3], Timestamp::from_secs(90));
        for p in &packets[..3] {
            assert_eq!(p.minute_bucket(), 0);
        }
        assert_eq!(packets[3].minute_bucket(), 1);
    }

    #[test]
    fn isolated_alert_replays_to_the_identical_attack() {
        let mut d = LiveDetector::new(LiveConfig::default());
        flood(&mut d, ip(1), 0, 180);
        d.finish();
        assert_eq!(d.closed_quic().len(), 1);
        let slice = d.alert_slice(0).expect("slice");
        assert_eq!(slice.class, MultiVectorClass::Isolated);
        let outcome = replay_slice(&slice, &slice.replay_packets()).expect("replay");
        assert_eq!(outcome.attack, slice.quic.attack);
    }

    #[test]
    fn concurrent_alert_replays_with_the_same_verdict() {
        let mut d = LiveDetector::new(LiveConfig::default());
        // Common flood 0..600 s, QUIC flood 100..220 s inside it.
        for i in 0..(600 * 2) {
            d.offer_baseline(Timestamp::from_micros(i * 500_000), ip(2), dst(), 60);
        }
        flood(&mut d, ip(2), 100, 120);
        d.finish();
        let slice = d.alert_slice(0).expect("slice");
        assert_eq!(slice.class, MultiVectorClass::Concurrent);
        assert_eq!(slice.commons.len(), 1);
        let outcome = replay_slice(&slice, &slice.replay_packets()).expect("replay");
        assert_eq!(outcome.class, MultiVectorClass::Concurrent);
        assert_eq!(outcome.overlap_share, slice.overlap_share);
    }

    #[test]
    fn sequential_alert_replays_with_the_same_gap() {
        let mut d = LiveDetector::new(LiveConfig::default());
        // QUIC flood 0..180 s, common flood 600..780 s: disjoint, same
        // victim → Sequential with a 420 s gap.
        flood(&mut d, ip(3), 0, 180);
        for i in 0..(180 * 2) {
            d.offer_baseline(
                Timestamp::from_micros(600 * 1_000_000 + i * 500_000),
                ip(3),
                dst(),
                60,
            );
        }
        d.finish();
        let slice = d.alert_slice(0).expect("slice");
        assert_eq!(slice.class, MultiVectorClass::Sequential);
        assert!(slice.gap_secs.is_some());
        replay_slice(&slice, &slice.replay_packets()).expect("replay");
    }

    #[test]
    fn slice_qlog_roundtrips_and_replays() {
        let mut d = LiveDetector::new(LiveConfig::default());
        flood(&mut d, ip(4), 0, 180);
        for i in 0..(120 * 2) {
            d.offer_baseline(
                Timestamp::from_micros(60 * 1_000_000 + i * 500_000),
                ip(4),
                dst(),
                60,
            );
        }
        d.finish();
        let slice = d.alert_slice(0).expect("slice");
        let bytes = slice.to_qlog().expect("serialize");
        let (parsed, packets) = parse_slice_qlog(&bytes).expect("parse");
        assert_eq!(parsed, slice);
        assert_eq!(packets, slice.replay_packets());
        replay_slice(&parsed, &packets).expect("replay from file");
    }

    #[test]
    fn tampered_slice_fails_the_replay_contract() {
        let mut d = LiveDetector::new(LiveConfig::default());
        flood(&mut d, ip(5), 0, 180);
        d.finish();
        let mut slice = d.alert_slice(0).expect("slice");
        // Claim a larger flood than the profile synthesizes.
        slice.quic.attack.packet_count += 1;
        let err = replay_slice(&slice, &slice.replay_packets()).unwrap_err();
        assert!(err.contains("diverges"), "{err}");
    }

    #[test]
    fn synthesized_gaps_never_exceed_the_session_timeout() {
        let mut d = LiveDetector::new(LiveConfig::default());
        // An irregular but qualifying flood: bursts with dead air just
        // under the timeout between them.
        let timeout = LiveConfig::default().session.timeout;
        let mut ts = Timestamp::from_secs(0);
        for burst in 0..12u64 {
            for i in 0..120u64 {
                d.offer_response(
                    Timestamp::from_micros(ts.as_micros() + i * 250_000),
                    ip(6),
                    dst(),
                    60,
                );
            }
            ts = Timestamp::from_micros(
                ts.as_micros() + 30_000_000 + (timeout.as_micros() - 1_000_000),
            );
            let _ = burst;
        }
        d.finish();
        assert_eq!(d.closed_quic().len(), 1, "one un-split session");
        let slice = d.alert_slice(0).expect("slice");
        let packets = synthesize_packets(&slice.quic.profile);
        for w in packets.windows(2) {
            assert!(
                w[1].saturating_since(w[0]) <= timeout,
                "replay gap {:?} exceeds timeout",
                w[1].saturating_since(w[0])
            );
        }
        replay_slice(&slice, &slice.replay_packets()).expect("replay");
        let _ = Duration::ZERO;
    }
}
