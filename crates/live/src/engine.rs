//! The sharded live engine: guard/quarantine ingest feeding per-shard
//! detectors, with deterministic event merge and checkpoint/restore.
//!
//! Records are partitioned by `hash(src) % N` — the same FNV sharding
//! as the batch parallel path — so every per-source computation (the
//! ingest guard, sessionization, threshold detection, *and* per-victim
//! multi-vector correlation, since victim = source on both channels)
//! sees exactly the packets it would see single-sharded. Events are
//! tagged with the original record index and stable-merged, so the
//! emitted event log is identical at any chunk size, and the closed
//! alert set is identical at any shard count.

use crate::alert::{LiveEvent, LiveEventKind};
use crate::detector::{ClassifiedAttack, DetectorSnapshot, LiveConfig, LiveDetector, LiveStats};
use crate::forensics::AlertSlice;
use crate::metrics::LiveMetrics;
use quicsand_dissect::Direction;
use quicsand_events::{
    AlertClosed, AlertEscalated, AlertOpened, AlertReclassified, EventMeta, NoopSubscriber,
    Subscriber, VecSubscriber,
};
use quicsand_net::PacketRecord;
use quicsand_obs::MetricsRegistry;
use quicsand_sessions::dos::Attack;
use quicsand_telescope::parallel::partition_by_source;
use quicsand_telescope::{
    Admitted, GuardConfig, IngestMetrics, IngestStats, PipelineSnapshot, PipelineStats,
    StageMetrics, TelescopePipeline,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

fn ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1_000.0
}

fn to_micros(ms: f64) -> u64 {
    (ms * 1_000.0).round().max(0.0) as u64
}

/// One shard's chunk output: record-index-tagged events plus the wall
/// milliseconds its admit and detect phases took.
type ShardChunk = (Vec<(usize, LiveEvent)>, f64, f64);

/// One shard: its slice of the ingest guard plus its detector.
#[derive(Debug)]
struct Shard {
    pipeline: TelescopePipeline,
    detector: LiveDetector,
}

/// One shard's state in a [`LiveSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ShardSnapshot {
    pipeline: PipelineSnapshot,
    detector: DetectorSnapshot,
}

/// Serializable checkpoint of the whole engine. Restoring it and
/// replaying the remaining stream yields the exact same events the
/// original engine would have emitted (wall-clock telemetry excepted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveSnapshot {
    /// Detector configuration in effect.
    pub config: LiveConfig,
    /// Ingest guard thresholds in effect.
    pub guard: GuardConfig,
    /// Records offered before the checkpoint.
    pub offered: u64,
    shards: Vec<ShardSnapshot>,
}

impl LiveSnapshot {
    /// Shard count the checkpoint was taken at (restore keeps it).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }
}

/// The streaming flood-detection engine.
#[derive(Debug)]
pub struct LiveEngine {
    config: LiveConfig,
    guard: GuardConfig,
    shards: Vec<Shard>,
    offered: u64,
    stats: PipelineStats,
    /// Per-engine metrics registry (never process-global: restore gets
    /// a fresh one re-seeded from the snapshot, tests stay hermetic).
    registry: Arc<MetricsRegistry>,
    metrics: LiveMetrics,
    ingest_metrics: IngestMetrics,
    stages: StageMetrics,
    /// Stats readings at the last metrics sync — the counters hold
    /// exactly these values, and each sync publishes the delta.
    synced_ingest: IngestStats,
    synced_live: LiveStats,
}

impl LiveEngine {
    /// Creates an engine with `shards` parallel detector shards.
    pub fn new(config: LiveConfig, guard: GuardConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut stats = PipelineStats {
            threads: shards,
            ..PipelineStats::default()
        };
        stats.records = 0;
        let registry = MetricsRegistry::new();
        let metrics = LiveMetrics::register(&registry);
        let ingest_metrics = IngestMetrics::register(&registry);
        let stages = StageMetrics::register(&registry);
        LiveEngine {
            shards: (0..shards)
                .map(|_| Shard {
                    pipeline: TelescopePipeline::with_guard(guard),
                    detector: LiveDetector::new(config),
                })
                .collect(),
            config,
            guard,
            offered: 0,
            stats,
            registry,
            metrics,
            ingest_metrics,
            stages,
            synced_ingest: IngestStats::default(),
            synced_live: LiveStats::default(),
        }
    }

    /// Offers one record.
    pub fn offer(&mut self, record: &PacketRecord) -> Vec<LiveEvent> {
        self.offer_chunk(std::slice::from_ref(record))
    }

    /// Offers a chunk of records in capture order. Chunking is pure
    /// batching: splitting the stream differently never changes the
    /// emitted events, only the parallel hand-off granularity.
    pub fn offer_chunk(&mut self, records: &[PacketRecord]) -> Vec<LiveEvent> {
        self.offer_chunk_with(records, &mut NoopSubscriber)
    }

    /// [`LiveEngine::offer_chunk`] with typed event emission.
    ///
    /// When the subscriber is enabled, each shard worker collects its
    /// record-tied events (wire rejections, Retry / Version Negotiation
    /// sightings) into a local buffer tagged with the record's absolute
    /// stream index; the buffers are merged by that index and replayed
    /// into `subscriber`, so the delivered stream is identical at any
    /// shard count and chunk size. Alert lifecycle events are then
    /// derived from the chunk's (already deterministic) [`LiveEvent`]
    /// output. With [`NoopSubscriber`] the whole emission path
    /// monomorphizes away and this *is* [`LiveEngine::offer_chunk`].
    pub fn offer_chunk_with<S: Subscriber>(
        &mut self,
        records: &[PacketRecord],
        subscriber: &mut S,
    ) -> Vec<LiveEvent> {
        if records.is_empty() {
            return Vec::new();
        }
        let base = self.offered;
        self.offered += records.len() as u64;
        self.stats.records = self.offered;
        let (events, chunk_ingest, chunk_detect) = if self.shards.len() == 1 {
            let (tagged, ingest_ms, detect_ms) = {
                let shard = &mut self.shards[0];
                let indices: Vec<usize> = (0..records.len()).collect();
                if subscriber.enabled() {
                    let mut collector = VecSubscriber::new();
                    let chunk = shard_chunk(shard, records, &indices, base, &mut collector);
                    collector.replay_into(subscriber);
                    chunk
                } else {
                    shard_chunk(shard, records, &indices, base, &mut NoopSubscriber)
                }
            };
            let events: Vec<LiveEvent> = tagged.into_iter().map(|(_, event)| event).collect();
            (events, ingest_ms, detect_ms)
        } else {
            let buckets = partition_by_source(records, self.shards.len());
            let collect = subscriber.enabled();
            let worker = |shard: &mut Shard, indices: &[usize]| {
                if collect {
                    let mut collector = VecSubscriber::new();
                    let chunk = shard_chunk(shard, records, indices, base, &mut collector);
                    (chunk, collector)
                } else {
                    (
                        shard_chunk(shard, records, indices, base, &mut NoopSubscriber),
                        VecSubscriber::new(),
                    )
                }
            };
            let worker = &worker;
            let results: Vec<(ShardChunk, VecSubscriber)> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(buckets.iter())
                    .map(|(shard, indices)| scope.spawn(move |_| worker(shard, indices)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("live shard worker panicked"))
                    .collect()
            })
            .expect("live scope panicked");

            // Critical-path timing: the slowest shard bounds the chunk.
            let mut chunk_ingest: f64 = 0.0;
            let mut chunk_detect: f64 = 0.0;
            let mut tagged: Vec<(usize, LiveEvent)> = Vec::new();
            let mut merged = VecSubscriber::new();
            for ((events, ingest_ms, detect_ms), collector) in results {
                chunk_ingest = chunk_ingest.max(ingest_ms);
                chunk_detect = chunk_detect.max(detect_ms);
                tagged.extend(events);
                merged.events.extend(collector.events);
            }
            if collect {
                // Record indices are unique across shards, so the merge
                // reproduces the single-shard emission order exactly.
                merged.sort_by_record_index();
                merged.replay_into(subscriber);
            }
            // Original record indices are unique; the stable sort keeps
            // each record's own events in emission order.
            tagged.sort_by_key(|(index, _)| *index);
            let events: Vec<LiveEvent> = tagged.into_iter().map(|(_, event)| event).collect();
            (events, chunk_ingest, chunk_detect)
        };
        self.stats.ingest_ms += chunk_ingest;
        self.stats.sessionize_ms += chunk_detect;
        // Detector offers are the live "sessionize" stage (incremental
        // session upkeep + threshold checks).
        self.stages.ingest_walltime.observe(to_micros(chunk_ingest));
        self.stages
            .sessionize_walltime
            .observe(to_micros(chunk_detect));
        if subscriber.enabled() {
            emit_alert_events(&events, subscriber);
        }
        self.observe_closed(&events);
        self.sync_metrics();
        events
    }

    /// Ends the stream: closes every open session on every shard and
    /// returns the trailing events, merged into a deterministic
    /// `(at, victim)` order that is independent of the shard count.
    pub fn finish(&mut self) -> Vec<LiveEvent> {
        self.finish_with(&mut NoopSubscriber)
    }

    /// [`LiveEngine::finish`] with typed event emission for the
    /// trailing alert lifecycle events.
    pub fn finish_with<S: Subscriber>(&mut self, subscriber: &mut S) -> Vec<LiveEvent> {
        let flush_start = Instant::now();
        let mut events: Vec<LiveEvent> = Vec::new();
        for shard in &mut self.shards {
            events.extend(shard.detector.finish());
        }
        // One victim lives in exactly one shard, so ties on
        // `(at, victim)` come from the same shard and the stable sort
        // preserves their emission order.
        events.sort_by_key(|e| (e.at, e.victim));
        self.stats.detect_ms += ms(flush_start);
        self.stats.peak_open_sessions = self.live_stats().peak_tracked;
        self.stages
            .detect_walltime
            .observe(to_micros(self.stats.detect_ms));
        if subscriber.enabled() {
            emit_alert_events(&events, subscriber);
        }
        self.observe_closed(&events);
        self.sync_metrics();
        events
    }

    /// Records closed alerts' attack distributions (the live side of
    /// the shared `quicsand_detect_*`/`quicsand_attack_*` families).
    fn observe_closed(&self, events: &[LiveEvent]) {
        for event in events {
            if event.kind == LiveEventKind::Closed {
                if let Some(attack) = &event.attack {
                    self.metrics.dos.observe_attack(attack);
                }
            }
        }
    }

    /// Publishes the stats-to-counter deltas accumulated since the last
    /// sync. Called at every chunk boundary (and by restore/finish), so
    /// exported counters reconcile exactly with
    /// [`LiveEngine::ingest_stats`]/[`LiveEngine::live_stats`] whenever
    /// the engine is at rest.
    pub fn sync_metrics(&mut self) {
        let ingest_now = self.ingest_stats();
        self.ingest_metrics
            .add_delta(&self.synced_ingest, &ingest_now);
        self.synced_ingest = ingest_now;
        let live_now = self.live_stats();
        self.metrics.add_delta(&self.synced_live, &live_now);
        self.synced_live = live_now;
        self.metrics.tracked.set(self.tracked() as u64);
        self.stages.set_totals(&self.stats);
    }

    /// Checks the reconciliation invariant: every exported counter
    /// equals its stats field. Returns the mismatches on failure.
    pub fn verify_metrics(&mut self) -> Result<(), Vec<String>> {
        self.sync_metrics();
        let mut errors = Vec::new();
        if let Err(e) = self.ingest_metrics.verify(&self.ingest_stats()) {
            errors.extend(e);
        }
        if let Err(e) = self.metrics.verify(&self.live_stats()) {
            errors.extend(e);
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Counts one written checkpoint of `bytes` serialized bytes.
    pub fn record_checkpoint(&self, bytes: u64) {
        self.metrics.checkpoints_total.inc();
        self.metrics.checkpoint_bytes_total.add(bytes);
    }

    /// The engine's metrics registry, for exposition.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The live metric handles (counters reconcile at sync points).
    pub fn metrics(&self) -> &LiveMetrics {
        &self.metrics
    }

    /// The per-chunk stage walltime histograms and totals.
    pub fn stage_metrics(&self) -> &StageMetrics {
        &self.stages
    }

    /// Checkpoints the engine (guard state, open victims, closed-attack
    /// sets, counters). Shard states are captured independently, so the
    /// snapshot is only restorable at the same shard count — which
    /// [`LiveEngine::restore`] enforces by construction.
    pub fn snapshot(&self) -> LiveSnapshot {
        LiveSnapshot {
            config: self.config,
            guard: self.guard,
            offered: self.offered,
            shards: self
                .shards
                .iter()
                .map(|shard| ShardSnapshot {
                    pipeline: shard.pipeline.snapshot(),
                    detector: shard.detector.snapshot(),
                })
                .collect(),
        }
    }

    /// Rebuilds an engine from a checkpoint. The restored engine emits
    /// the exact same events for the rest of the stream as the
    /// snapshotted one would have (timing telemetry restarts at zero).
    pub fn restore(snapshot: &LiveSnapshot) -> Self {
        let registry = MetricsRegistry::new();
        let metrics = LiveMetrics::register(&registry);
        let ingest_metrics = IngestMetrics::register(&registry);
        let stages = StageMetrics::register(&registry);
        let mut engine = LiveEngine {
            config: snapshot.config,
            guard: snapshot.guard,
            offered: snapshot.offered,
            stats: PipelineStats {
                threads: snapshot.shards.len(),
                records: snapshot.offered,
                ..PipelineStats::default()
            },
            shards: snapshot
                .shards
                .iter()
                .map(|shard| Shard {
                    pipeline: TelescopePipeline::restore(&shard.pipeline),
                    detector: LiveDetector::restore(snapshot.config, &shard.detector),
                })
                .collect(),
            registry,
            metrics,
            ingest_metrics,
            stages,
            synced_ingest: IngestStats::default(),
            synced_live: LiveStats::default(),
        };
        // Re-seed the fresh registry from the restored state: counters
        // from the snapshot's stats (sync from zero cursors publishes
        // them whole), attack distributions by re-observing the closed
        // sets the snapshot carries — bucket counts are pure functions
        // of the attack set, so a checkpoint/restore cycle leaves every
        // stable metric exactly where an uninterrupted run would.
        for shard in &engine.shards {
            for classified in shard.detector.closed_quic() {
                engine.metrics.dos.observe_attack(&classified.attack);
            }
            for attack in shard.detector.closed_common() {
                engine.metrics.dos.observe_attack(attack);
            }
        }
        engine.sync_metrics();
        engine
    }

    /// Merged ingest counters across shards.
    pub fn ingest_stats(&self) -> IngestStats {
        let mut stats = IngestStats::default();
        for shard in &self.shards {
            stats.merge(shard.pipeline.stats());
        }
        stats
    }

    /// Merged detector counters across shards.
    pub fn live_stats(&self) -> LiveStats {
        let mut stats = LiveStats::default();
        for shard in &self.shards {
            stats.merge(&shard.detector.stats());
        }
        stats
    }

    /// Wall-clock telemetry (`--verbose` material; non-deterministic).
    pub fn pipeline_stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// Victims currently tracked across all shards and channels.
    pub fn tracked(&self) -> usize {
        self.shards.iter().map(|s| s.detector.tracked()).sum()
    }

    /// Records offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Closed QUIC attacks with their current verdicts, merged across
    /// shards into deterministic `(start, victim)` order.
    pub fn closed_quic(&self) -> Vec<ClassifiedAttack> {
        let mut attacks: Vec<ClassifiedAttack> = self
            .shards
            .iter()
            .flat_map(|s| s.detector.closed_quic().iter().cloned())
            .collect();
        attacks.sort_by_key(|c| (c.attack.start, c.attack.victim));
        attacks
    }

    /// Closed TCP/ICMP attacks, merged across shards into
    /// deterministic `(start, victim)` order.
    pub fn closed_common(&self) -> Vec<Attack> {
        let mut attacks: Vec<Attack> = self
            .shards
            .iter()
            .flat_map(|s| s.detector.closed_common().iter().cloned())
            .collect();
        attacks.sort_by_key(|a| (a.start, a.victim));
        attacks
    }

    /// Forensic slices for every closed QUIC alert, merged across
    /// shards into deterministic `(start, victim)` order and
    /// re-indexed to that order.
    pub fn alert_slices(&self) -> Vec<AlertSlice> {
        let mut slices: Vec<AlertSlice> = self
            .shards
            .iter()
            .flat_map(|s| s.detector.alert_slices())
            .collect();
        slices.sort_by_key(|s| (s.quic.attack.start, s.victim));
        for (index, slice) in slices.iter_mut().enumerate() {
            slice.alert_index = index;
        }
        slices
    }

    /// The detector configuration in effect.
    pub fn config(&self) -> &LiveConfig {
        &self.config
    }
}

/// Processes one shard's slice of a chunk: admit everything through the
/// ingest guard first (timed as ingest), then drive the detector (timed
/// as the live "sessionize+detect" stage). The split is observational
/// only — pipeline and detector are independent state machines, so
/// phase order cannot change any decision.
fn shard_chunk<S: Subscriber>(
    shard: &mut Shard,
    records: &[PacketRecord],
    indices: &[usize],
    base: u64,
    subscriber: &mut S,
) -> ShardChunk {
    let admit_start = Instant::now();
    let admitted: Vec<(usize, Admitted)> = indices
        .iter()
        .map(|&i| {
            let meta = EventMeta::record(base + i as u64);
            (i, shard.pipeline.admit_with(&records[i], &meta, subscriber))
        })
        .collect();
    let ingest_ms = ms(admit_start);

    let detect_start = Instant::now();
    let mut events: Vec<(usize, LiveEvent)> = Vec::new();
    for (index, product) in admitted {
        let emitted = match product {
            Admitted::Quic(obs) if obs.direction == Direction::Response => {
                // Backscatter: the response source is the flood victim.
                let bytes = records[index].wire_size() as u64;
                shard
                    .detector
                    .offer_response(obs.ts, obs.src, obs.dst, bytes)
            }
            // Requests are scan traffic, not flood evidence.
            Admitted::Quic(_) => Vec::new(),
            Admitted::Baseline(record) => {
                let bytes = record.wire_size() as u64;
                shard
                    .detector
                    .offer_baseline(record.ts, record.src, record.dst, bytes)
            }
            Admitted::Dropped => Vec::new(),
        };
        events.extend(emitted.into_iter().map(|event| (index, event)));
    }
    (events, ingest_ms, ms(detect_start))
}

/// Translates the merged, deterministic [`LiveEvent`] stream into the
/// typed alert lifecycle events. Lifecycle events are not tied to one
/// record (a close can be triggered by a watermark sweep landing on a
/// different victim's packet), so they carry [`EventMeta::lifecycle`]
/// and ride *after* the chunk's record-tied events — a position that is
/// itself deterministic because the [`LiveEvent`] stream is.
fn emit_alert_events<S: Subscriber>(events: &[LiveEvent], subscriber: &mut S) {
    let meta = EventMeta::lifecycle();
    for event in events {
        let protocol = event.protocol.label().to_string();
        match event.kind {
            LiveEventKind::Opened => subscriber.on_alert_opened(
                &meta,
                &AlertOpened {
                    at: event.at,
                    victim: event.victim,
                    protocol,
                },
            ),
            LiveEventKind::Escalated => subscriber.on_alert_escalated(
                &meta,
                &AlertEscalated {
                    at: event.at,
                    victim: event.victim,
                    protocol,
                },
            ),
            LiveEventKind::Closed => {
                let attack = event.attack.as_ref().expect("Closed events carry attacks");
                subscriber.on_alert_closed(
                    &meta,
                    &AlertClosed {
                        at: event.at,
                        victim: event.victim,
                        protocol,
                        start: attack.start,
                        packet_count: attack.packet_count,
                        max_pps: attack.max_pps,
                        class: event.class.map(|c| c.label().to_string()),
                        overlap_share: event.overlap_share,
                        gap_secs: event.gap_secs,
                        evicted: event.evicted,
                    },
                );
            }
            LiveEventKind::Reclassified => subscriber.on_alert_reclassified(
                &meta,
                &AlertReclassified {
                    at: event.at,
                    victim: event.victim,
                    protocol,
                    class: event.class.map(|c| c.label().to_string()),
                    overlap_share: event.overlap_share,
                    gap_secs: event.gap_secs,
                },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::LiveEventKind;
    use quicsand_net::{TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    fn victim(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 51, 100, last)
    }

    /// A TCP SYN-ACK backscatter record (baseline channel).
    fn syn_ack(ts_micros: u64, src: Ipv4Addr) -> PacketRecord {
        PacketRecord::tcp(
            Timestamp::from_micros(ts_micros),
            src,
            Ipv4Addr::new(10, 0, 0, 7),
            443,
            50_000,
            TcpFlags::SYN_ACK,
        )
    }

    /// A multi-victim flood trace: `victims` interleaved at 2 pps each
    /// for `secs` seconds.
    fn trace(victims: &[Ipv4Addr], secs: u64) -> Vec<PacketRecord> {
        let mut records = Vec::new();
        for tick in 0..(secs * 2) {
            for (v, addr) in victims.iter().enumerate() {
                records.push(syn_ack(tick * 500_000 + v as u64, *addr));
            }
        }
        records
    }

    #[test]
    fn shard_count_does_not_change_closed_alerts() {
        let records = trace(&[victim(1), victim(2), victim(3), victim(4)], 120);
        let run = |shards: usize| {
            let mut engine = LiveEngine::new(LiveConfig::default(), GuardConfig::default(), shards);
            let mut events = Vec::new();
            for chunk in records.chunks(17) {
                events.extend(engine.offer_chunk(chunk));
            }
            events.extend(engine.finish());
            (events, engine.closed_common(), engine.live_stats())
        };
        let (one_events, one_closed, one_stats) = run(1);
        assert_eq!(one_closed.len(), 4);
        for shards in [2, 3, 8] {
            let (_, closed, stats) = run(shards);
            assert_eq!(closed, one_closed, "{shards} shards");
            assert_eq!(stats.opened, one_stats.opened);
            assert_eq!(stats.closed, one_stats.closed);
        }
        let opens = one_events
            .iter()
            .filter(|e| e.kind == LiveEventKind::Opened)
            .count();
        assert_eq!(opens, 4);
    }

    #[test]
    fn chunk_size_does_not_change_the_event_log() {
        let records = trace(&[victim(5), victim(6)], 90);
        let run = |chunk: usize| {
            let mut engine = LiveEngine::new(LiveConfig::default(), GuardConfig::default(), 2);
            let mut events = Vec::new();
            for part in records.chunks(chunk) {
                events.extend(engine.offer_chunk(part));
            }
            events.extend(engine.finish());
            events
        };
        let baseline = run(usize::MAX);
        for chunk in [1, 7, 64] {
            assert_eq!(run(chunk), baseline, "chunk {chunk}");
        }
    }

    #[test]
    fn evidence_ring_capacity_is_plumbed_and_survives_restore() {
        let records = trace(&[victim(9), victim(10)], 120);
        let config = LiveConfig {
            evidence_capacity: 5,
            ..LiveConfig::default()
        };
        let mut engine = LiveEngine::new(config, GuardConfig::default(), 2);
        // Feed half the trace so alerts are open with populated rings,
        // then checkpoint mid-alert.
        let half = records.len() / 2;
        let mut straight = engine.offer_chunk(&records[..half]);
        let snapshot = engine.snapshot();
        let mut restored = LiveEngine::restore(&snapshot);
        assert_eq!(
            restored.snapshot(),
            snapshot,
            "restore preserves the evidence rings bit for bit"
        );

        // The restored engine continues exactly like the original.
        let mut resumed = straight.clone();
        resumed.extend(restored.offer_chunk(&records[half..]));
        resumed.extend(restored.finish());
        straight.extend(engine.offer_chunk(&records[half..]));
        straight.extend(engine.finish());
        assert_eq!(resumed, straight);

        // Closed alerts carry exactly the configured ring: the 5 most
        // recent packets, ending at the attack's last packet.
        let closed: Vec<_> = straight
            .iter()
            .filter(|e| e.kind == LiveEventKind::Closed)
            .collect();
        assert!(!closed.is_empty());
        for event in closed {
            assert_eq!(event.evidence.len(), 5, "ring capped at --evidence-ring");
            let attack = event.attack.as_ref().expect("closed events carry attacks");
            assert_eq!(
                event.evidence.last().expect("non-empty ring").ts,
                attack.end
            );
            assert!(event.evidence.windows(2).all(|w| w[0].ts <= w[1].ts));
        }
    }

    #[test]
    fn quarantined_records_never_reach_the_detector() {
        let mut engine = LiveEngine::new(LiveConfig::default(), GuardConfig::default(), 1);
        let record = syn_ack(1_000_000, victim(7));
        engine.offer(&record);
        engine.offer(&record); // byte-identical duplicate → quarantined
        assert_eq!(engine.ingest_stats().quarantine.duplicate, 1);
        assert_eq!(engine.live_stats().events_in, 1);
        assert_eq!(engine.offered(), 2);
    }

    #[test]
    fn snapshot_restore_mid_stream_is_invisible() {
        let records = trace(&[victim(8), victim(9)], 120);
        let half = records.len() / 2;

        let mut straight = LiveEngine::new(LiveConfig::default(), GuardConfig::default(), 2);
        let mut straight_events = straight.offer_chunk(&records);
        straight_events.extend(straight.finish());

        let mut first = LiveEngine::new(LiveConfig::default(), GuardConfig::default(), 2);
        let mut resumed_events = first.offer_chunk(&records[..half]);
        let snapshot = first.snapshot();
        let mut second = LiveEngine::restore(&snapshot);
        assert_eq!(second.snapshot(), snapshot, "restore is lossless");
        resumed_events.extend(second.offer_chunk(&records[half..]));
        resumed_events.extend(second.finish());

        assert_eq!(resumed_events, straight_events);
        assert_eq!(second.closed_common(), straight.closed_common());
        assert_eq!(second.live_stats(), straight.live_stats());
        assert_eq!(second.ingest_stats(), straight.ingest_stats());
    }

    #[test]
    fn empty_chunk_is_a_no_op() {
        let mut engine = LiveEngine::new(LiveConfig::default(), GuardConfig::default(), 4);
        assert!(engine.offer_chunk(&[]).is_empty());
        assert_eq!(engine.offered(), 0);
        assert!(engine.finish().is_empty());
    }
}
