//! The incremental flood detector: per-victim sliding-window state,
//! watermark-driven expiry, alert lifecycle, and online multi-vector
//! classification.
//!
//! [`LiveDetector`] mirrors the batch pipeline's semantics exactly:
//!
//! * session boundaries replicate `Sessionizer` (join while the
//!   per-victim gap ≤ timeout, bounds widen for tolerated late packets,
//!   expiry deferred by the skew tolerance, amortized idle sweep);
//! * an alert `Opened`/`Escalated` transition fires the moment the
//!   victim's open session crosses the (scaled) `DosThresholds` — all
//!   three measures are monotone non-decreasing within a session, so
//!   transitions never revert;
//! * a `Closed` alert carries an [`Attack`] with byte-identical fields
//!   to what batch `detect_attacks` computes for the same session.
//!
//! Consequently, on any finite stream the set of closed alerts equals
//! the batch detection output — *unless* the hard per-channel victim
//! cap ([`LiveConfig::max_victims`]) forces an LRU eviction, which may
//! truncate that victim's session (flagged `evicted` and counted in
//! [`LiveStats::evictions`]).

use crate::alert::{EvidencePacket, LiveEvent, LiveEventKind};
use quicsand_net::{Duration, Timestamp};
use quicsand_sessions::dos::{Attack, AttackProtocol, DosThresholds};
use quicsand_sessions::multivector::MultiVectorClass;
use quicsand_sessions::session::SessionConfig;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Live-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiveConfig {
    /// Base alert thresholds (paper: Moore et al. defaults).
    pub thresholds: DosThresholds,
    /// Sessionization parameters. `skew_tolerance` must cover the
    /// ingest guard's reorder tolerance, exactly as in the batch path.
    pub session: SessionConfig,
    /// Escalation tier: base thresholds scaled by this weight
    /// (Appendix-B style). An open alert escalates when its session
    /// crosses `thresholds.scaled(escalation_weight)`.
    pub escalation_weight: f64,
    /// Evidence packets retained per open alert (a ring buffer of the
    /// most recent packets).
    pub evidence_capacity: usize,
    /// Hard cap on tracked victims per channel: inserting a new victim
    /// beyond this evicts the least-recently-active one. Bounds memory
    /// under sustained many-victim floods.
    pub max_victims: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            thresholds: DosThresholds::moore(),
            session: SessionConfig::default(),
            escalation_weight: 4.0,
            evidence_capacity: 16,
            max_victims: 65_536,
        }
    }
}

/// One 1-minute slot of a victim's packet-arrival profile: how many
/// packets landed in the slot plus the exact first and last arrival.
///
/// The triple is what makes a closed alert *replayable*: re-synthesizing
/// `count` packets between `first` and `last` (endpoints exact, middles
/// evenly spaced) reproduces the session's start, end, packet count and
/// per-minute maxima — and therefore the identical [`Attack`] record —
/// when offered to a fresh detector (see [`crate::forensics`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinuteCell {
    /// Packets in this minute slot.
    pub count: u64,
    /// First arrival in the slot.
    pub first: Timestamp,
    /// Last arrival in the slot.
    pub last: Timestamp,
}

impl MinuteCell {
    fn seed(ts: Timestamp) -> Self {
        MinuteCell {
            count: 1,
            first: ts,
            last: ts,
        }
    }

    fn absorb(&mut self, ts: Timestamp) {
        self.count += 1;
        if ts < self.first {
            self.first = ts;
        }
        if ts > self.last {
            self.last = ts;
        }
    }
}

/// One row of a closed alert's arrival profile: a [`MinuteCell`] keyed
/// by its minute bucket, sorted by bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileCell {
    /// Minute bucket (`ts.minute_bucket()`).
    pub minute: u64,
    /// Packets in the slot.
    pub count: u64,
    /// First arrival in the slot.
    pub first: Timestamp,
    /// Last arrival in the slot.
    pub last: Timestamp,
}

/// Where a victim's alert currently stands. Monotone: transitions only
/// ever move rightwards (Quiet → Open → Escalated), because every
/// threshold measure is non-decreasing while the session is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum AlertPhase {
    /// Below the base thresholds.
    Quiet,
    /// Crossed the base thresholds.
    Open,
    /// Crossed the escalation tier.
    Escalated,
}

/// One victim's open sliding-window state — the live analogue of the
/// sessionizer's `OpenSession`, plus the alert phase and evidence ring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct VictimState {
    start: Timestamp,
    last: Timestamp,
    packet_count: u64,
    minute_counts: HashMap<u64, MinuteCell>,
    /// Cached `max(minute_counts.values().count)`; counts only grow, so
    /// this is maintainable in O(1) per packet.
    max_minute: u64,
    phase: AlertPhase,
    /// Evidence ring, managed through `cursor`. Snapshots normalize it
    /// to chronological order (see [`ChannelDetector::snapshot`]).
    evidence: Vec<EvidencePacket>,
    cursor: usize,
}

impl VictimState {
    fn fresh(ts: Timestamp, capacity: usize) -> Self {
        VictimState {
            start: ts,
            last: ts,
            packet_count: 1,
            minute_counts: HashMap::from([(ts.minute_bucket(), MinuteCell::seed(ts))]),
            max_minute: 1,
            phase: AlertPhase::Quiet,
            evidence: Vec::with_capacity(capacity.min(64)),
            cursor: 0,
        }
    }

    fn max_pps(&self) -> f64 {
        self.max_minute as f64 / 60.0
    }

    fn duration(&self) -> Duration {
        self.last.saturating_since(self.start)
    }

    fn push_evidence(&mut self, packet: EvidencePacket, capacity: usize) {
        if capacity == 0 {
            return;
        }
        if self.evidence.len() < capacity {
            self.evidence.push(packet);
        } else {
            self.evidence[self.cursor] = packet;
            self.cursor = (self.cursor + 1) % capacity;
        }
    }

    /// Evidence in chronological order (unwinds the ring). While the
    /// ring is not yet full, `cursor` is 0 and the rotation is the
    /// identity; once full, `cursor` points at the oldest slot.
    fn evidence_chronological(&self) -> Vec<EvidencePacket> {
        let mut out = Vec::with_capacity(self.evidence.len());
        out.extend_from_slice(&self.evidence[self.cursor..]);
        out.extend_from_slice(&self.evidence[..self.cursor]);
        out
    }

    fn as_attack(&self, victim: Ipv4Addr, protocol: AttackProtocol) -> Attack {
        Attack {
            victim,
            protocol,
            start: self.start,
            end: self.last,
            packet_count: self.packet_count,
            max_pps: self.max_pps(),
        }
    }

    /// The arrival profile, sorted by minute bucket.
    fn profile(&self) -> Vec<ProfileCell> {
        let mut profile: Vec<ProfileCell> = self
            .minute_counts
            .iter()
            .map(|(&minute, cell)| ProfileCell {
                minute,
                count: cell.count,
                first: cell.first,
                last: cell.last,
            })
            .collect();
        profile.sort_by_key(|cell| cell.minute);
        profile
    }
}

/// Detector counters — the live analogue of `IngestStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveStats {
    /// Packets offered to the detector (post-ingest-guard).
    pub events_in: u64,
    /// Alerts opened.
    pub opened: u64,
    /// Alerts escalated.
    pub escalated: u64,
    /// Alerts closed (qualifying sessions only).
    pub closed: u64,
    /// Reclassification events emitted.
    pub reclassified: u64,
    /// Victims evicted under the memory cap.
    pub evictions: u64,
    /// High-water mark of simultaneously tracked victims — the
    /// quantity [`LiveConfig::max_victims`] bounds.
    pub peak_tracked: usize,
}

impl LiveStats {
    /// Field-wise sum (peaks sum too: the result is an upper bound on
    /// simultaneously held state across shards/channels).
    pub fn merge(&mut self, other: &LiveStats) {
        self.events_in += other.events_in;
        self.opened += other.opened;
        self.escalated += other.escalated;
        self.closed += other.closed;
        self.reclassified += other.reclassified;
        self.evictions += other.evictions;
        self.peak_tracked += other.peak_tracked;
    }
}

/// A closed qualifying session, before classification.
struct ClosedAlert {
    attack: Attack,
    profile: Vec<ProfileCell>,
    evidence: Vec<EvidencePacket>,
    evicted: bool,
}

/// What one channel emits for one offered packet (or sweep).
enum ChannelEvent {
    Opened { at: Timestamp, victim: Ipv4Addr },
    Escalated { at: Timestamp, victim: Ipv4Addr },
    Closed(ClosedAlert),
}

/// One victim's state in a [`ChannelSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct VictimEntry {
    src: Ipv4Addr,
    state: VictimState,
}

/// Serializable checkpoint of one channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ChannelSnapshot {
    watermark: Timestamp,
    last_sweep: Timestamp,
    stats: LiveStats,
    /// Open victims sorted by address; evidence rings normalized to
    /// chronological order so identical logical state always
    /// serializes identically.
    states: Vec<VictimEntry>,
}

/// One detection channel (QUIC responses, or the TCP/ICMP baseline):
/// per-victim sliding windows + LRU index + watermark machinery.
#[derive(Debug)]
struct ChannelDetector {
    protocol: AttackProtocol,
    thresholds: DosThresholds,
    escalation: DosThresholds,
    session: SessionConfig,
    evidence_capacity: usize,
    max_victims: usize,
    states: HashMap<Ipv4Addr, VictimState>,
    /// Last-activity index `(last, victim)`, kept in lockstep with
    /// `states`: drives both O(log n) idle expiry and LRU eviction,
    /// with the victim address as deterministic tie-break.
    lru: BTreeSet<(Timestamp, Ipv4Addr)>,
    watermark: Timestamp,
    last_sweep: Timestamp,
    stats: LiveStats,
}

impl ChannelDetector {
    fn new(protocol: AttackProtocol, config: &LiveConfig) -> Self {
        ChannelDetector {
            protocol,
            thresholds: config.thresholds,
            escalation: config.thresholds.scaled(config.escalation_weight),
            session: config.session,
            evidence_capacity: config.evidence_capacity,
            max_victims: config.max_victims.max(1),
            states: HashMap::new(),
            lru: BTreeSet::new(),
            watermark: Timestamp::EPOCH,
            last_sweep: Timestamp::EPOCH,
            stats: LiveStats::default(),
        }
    }

    /// Offers one packet attributed to `victim`. Emits sweep-driven
    /// closes first (deterministic `(start, victim)` order), then this
    /// packet's own transition, mirroring `Sessionizer::offer`.
    fn offer(
        &mut self,
        ts: Timestamp,
        victim: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: u64,
        out: &mut Vec<ChannelEvent>,
    ) {
        self.stats.events_in += 1;
        if ts > self.watermark {
            self.watermark = ts;
        }
        // Amortized idle sweep, same trigger as the batch sessionizer.
        if self.watermark.saturating_since(self.last_sweep) > self.session.timeout {
            self.expire(self.watermark, out);
        }
        let evidence = EvidencePacket { ts, dst, bytes };
        match self.states.get_mut(&victim) {
            Some(state) if ts.saturating_since(state.last) <= self.session.timeout => {
                // Joins the open session: bounds only widen (late
                // packets saturate to a zero gap, as in the batch path).
                self.lru.remove(&(state.last, victim));
                if ts > state.last {
                    state.last = ts;
                }
                if ts < state.start {
                    state.start = ts;
                }
                state.packet_count += 1;
                let slot = state
                    .minute_counts
                    .entry(ts.minute_bucket())
                    .and_modify(|cell| cell.absorb(ts))
                    .or_insert_with(|| MinuteCell::seed(ts));
                if slot.count > state.max_minute {
                    state.max_minute = slot.count;
                }
                state.push_evidence(evidence, self.evidence_capacity);
                self.lru.insert((state.last, victim));
                self.transition(ts, victim, out);
            }
            Some(_) => {
                // Gap exceeded: close the old session, start fresh.
                let state = self.states.remove(&victim).expect("state present");
                self.lru.remove(&(state.last, victim));
                self.close_state(victim, state, false, out);
                self.insert_fresh(ts, victim, evidence, out);
            }
            None => {
                self.insert_fresh(ts, victim, evidence, out);
            }
        }
    }

    fn insert_fresh(
        &mut self,
        ts: Timestamp,
        victim: Ipv4Addr,
        evidence: EvidencePacket,
        out: &mut Vec<ChannelEvent>,
    ) {
        // Hard memory cap: evict the least-recently-active victim. Its
        // session is force-closed *now*; if the victim speaks again a
        // new session starts, so the boundaries may differ from batch —
        // the one documented divergence, flagged on the event.
        while self.states.len() >= self.max_victims {
            let entry = *self.lru.iter().next().expect("lru tracks states");
            self.lru.remove(&entry);
            let (_, evictee) = entry;
            let state = self.states.remove(&evictee).expect("evictee tracked");
            self.stats.evictions += 1;
            self.close_state(evictee, state, true, out);
        }
        let mut state = VictimState::fresh(ts, self.evidence_capacity);
        state.push_evidence(evidence, self.evidence_capacity);
        self.lru.insert((ts, victim));
        self.states.insert(victim, state);
        if self.states.len() > self.stats.peak_tracked {
            self.stats.peak_tracked = self.states.len();
        }
        self.transition(ts, victim, out);
    }

    /// Advances the victim's alert phase as far as the thresholds
    /// allow, emitting one event per transition. Monotone measures ⇒
    /// no reverse transitions, ever.
    fn transition(&mut self, at: Timestamp, victim: Ipv4Addr, out: &mut Vec<ChannelEvent>) {
        let state = self.states.get_mut(&victim).expect("victim tracked");
        if state.phase == AlertPhase::Quiet
            && self.thresholds.matches_measures(
                state.packet_count,
                state.duration(),
                state.max_pps(),
            )
        {
            state.phase = AlertPhase::Open;
            self.stats.opened += 1;
            out.push(ChannelEvent::Opened { at, victim });
        }
        if state.phase == AlertPhase::Open
            && self.escalation.matches_measures(
                state.packet_count,
                state.duration(),
                state.max_pps(),
            )
        {
            state.phase = AlertPhase::Escalated;
            self.stats.escalated += 1;
            out.push(ChannelEvent::Escalated { at, victim });
        }
    }

    /// Closes a removed state: qualifying sessions become `Closed`
    /// alerts, quiet ones vanish (exactly the sessions batch
    /// `detect_attacks` would filter out).
    fn close_state(
        &mut self,
        victim: Ipv4Addr,
        state: VictimState,
        evicted: bool,
        out: &mut Vec<ChannelEvent>,
    ) {
        if state.phase == AlertPhase::Quiet {
            return;
        }
        self.stats.closed += 1;
        out.push(ChannelEvent::Closed(ClosedAlert {
            attack: state.as_attack(victim, self.protocol),
            profile: state.profile(),
            evidence: state.evidence_chronological(),
            evicted,
        }));
    }

    /// Expires every victim idle past `timeout + skew_tolerance` as of
    /// `now`, in deterministic `(start, victim)` order — the exact
    /// horizon and ordering of `Sessionizer::expire`. The LRU index
    /// makes collection O(expired · log n) instead of a full scan.
    fn expire(&mut self, now: Timestamp, out: &mut Vec<ChannelEvent>) {
        let horizon = self.session.timeout.as_micros() + self.session.skew_tolerance.as_micros();
        let expired: Vec<Ipv4Addr> = self
            .lru
            .iter()
            .take_while(|(last, _)| now.saturating_since(*last).as_micros() > horizon)
            .map(|(_, victim)| *victim)
            .collect();
        self.last_sweep = now;
        if expired.is_empty() {
            return;
        }
        let mut ordered: Vec<(Timestamp, Ipv4Addr)> = expired
            .iter()
            .map(|victim| (self.states[victim].start, *victim))
            .collect();
        ordered.sort_unstable();
        for (_, victim) in ordered {
            let state = self.states.remove(&victim).expect("expired victim open");
            self.lru.remove(&(state.last, victim));
            self.close_state(victim, state, false, out);
        }
    }

    /// Closes every remaining victim in `(start, victim)` order — the
    /// end-of-stream flush, mirroring `Sessionizer::finish`.
    fn flush(&mut self, out: &mut Vec<ChannelEvent>) {
        let mut remaining: Vec<(Timestamp, Ipv4Addr)> = self
            .states
            .iter()
            .map(|(victim, state)| (state.start, *victim))
            .collect();
        remaining.sort_unstable();
        for (_, victim) in remaining {
            let state = self.states.remove(&victim).expect("victim open");
            self.lru.remove(&(state.last, victim));
            self.close_state(victim, state, false, out);
        }
    }

    fn snapshot(&self) -> ChannelSnapshot {
        let mut states: Vec<VictimEntry> = self
            .states
            .iter()
            .map(|(src, state)| {
                // Normalize the evidence ring to chronological order
                // with cursor 0 (the oldest slot), so identical logical
                // state snapshots identically regardless of history,
                // and future overwrites keep hitting the oldest entry.
                let mut state = state.clone();
                state.evidence = state.evidence_chronological();
                state.cursor = 0;
                VictimEntry { src: *src, state }
            })
            .collect();
        states.sort_by_key(|entry| entry.src);
        ChannelSnapshot {
            watermark: self.watermark,
            last_sweep: self.last_sweep,
            stats: self.stats,
            states,
        }
    }

    fn restore(protocol: AttackProtocol, config: &LiveConfig, snapshot: &ChannelSnapshot) -> Self {
        let mut channel = ChannelDetector::new(protocol, config);
        channel.watermark = snapshot.watermark;
        channel.last_sweep = snapshot.last_sweep;
        channel.stats = snapshot.stats;
        for entry in &snapshot.states {
            channel.lru.insert((entry.state.last, entry.src));
            channel.states.insert(entry.src, entry.state.clone());
        }
        channel
    }

    fn tracked(&self) -> usize {
        self.states.len()
    }
}

/// A closed QUIC attack with its current multi-vector verdict.
///
/// The verdict is *live*: it reflects the common-protocol floods closed
/// so far and can only strengthen (`Isolated` → `Sequential` →
/// `Concurrent`; overlap share grows; gap shrinks) as more commons
/// close. After the stream ends it equals the batch
/// `classify_multivector` result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifiedAttack {
    /// The attack record (identical to batch `detect_attacks` output).
    pub attack: Attack,
    /// Per-minute arrival profile at close time — the basis of the
    /// replayable forensic slice (see [`crate::forensics`]).
    pub profile: Vec<ProfileCell>,
    /// Evidence ring contents at close time, oldest first.
    pub evidence: Vec<EvidencePacket>,
    /// Best overlap with any common flood on this victim so far.
    best_overlap: Duration,
    /// Smallest gap to any common flood on this victim so far (`None`
    /// while the victim has no common floods — Isolated).
    min_gap: Option<Duration>,
}

impl ClassifiedAttack {
    fn new(attack: Attack, profile: Vec<ProfileCell>, evidence: Vec<EvidencePacket>) -> Self {
        ClassifiedAttack {
            attack,
            profile,
            evidence,
            best_overlap: Duration::ZERO,
            min_gap: None,
        }
    }

    /// Folds one more common flood into the verdict. Returns `true`
    /// when the derived classification changed.
    fn absorb(&mut self, common: &Attack) -> bool {
        let before = self.verdict();
        let overlap = self.attack.overlap_with(common);
        if overlap > self.best_overlap {
            self.best_overlap = overlap;
        }
        let gap = self.attack.gap_to(common);
        let closer = match self.min_gap {
            Some(existing) => gap < existing,
            None => true,
        };
        if closer {
            self.min_gap = Some(gap);
        }
        self.verdict() != before
    }

    /// The derived `(class, overlap_share, gap)` triple — exactly the
    /// arithmetic of batch `classify_multivector` (§5.2 / Appendix C).
    pub fn verdict(&self) -> (MultiVectorClass, Option<f64>, Option<Duration>) {
        if self.best_overlap >= Duration::from_secs(1) {
            let quic_duration = self.attack.duration().as_secs_f64().max(1.0);
            let share = (self.best_overlap.as_secs_f64() / quic_duration).min(1.0);
            (MultiVectorClass::Concurrent, Some(share), None)
        } else if let Some(gap) = self.min_gap {
            (MultiVectorClass::Sequential, None, Some(gap))
        } else {
            (MultiVectorClass::Isolated, None, None)
        }
    }

    /// The current class.
    pub fn class(&self) -> MultiVectorClass {
        self.verdict().0
    }
}

/// Serializable checkpoint of a whole detector (both channels plus the
/// correlation state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorSnapshot {
    quic: ChannelSnapshot,
    common: ChannelSnapshot,
    closed_quic: Vec<ClassifiedAttack>,
    closed_common: Vec<Attack>,
    /// Arrival profiles parallel to `closed_common` (kept out of the
    /// `Attack` records the equivalence tests compare against batch).
    common_profiles: Vec<Vec<ProfileCell>>,
    /// Evidence rings parallel to `closed_common`.
    common_evidence: Vec<Vec<EvidencePacket>>,
    reclassified: u64,
}

/// The streaming flood detector: a QUIC-response channel and a
/// TCP/ICMP baseline channel, correlated per victim as alerts close.
#[derive(Debug)]
pub struct LiveDetector {
    config: LiveConfig,
    quic: ChannelDetector,
    common: ChannelDetector,
    /// Closed QUIC attacks with live verdicts, in close order.
    closed_quic: Vec<ClassifiedAttack>,
    /// Closed common attacks, in close order.
    closed_common: Vec<Attack>,
    /// Arrival profiles parallel to `closed_common`.
    common_profiles: Vec<Vec<ProfileCell>>,
    /// Evidence rings parallel to `closed_common`.
    common_evidence: Vec<Vec<EvidencePacket>>,
    /// Victim → indices into `closed_quic` (for reclassification).
    quic_index: HashMap<Ipv4Addr, Vec<usize>>,
    /// Victim → indices into `closed_common` (for classify-at-close).
    common_index: HashMap<Ipv4Addr, Vec<usize>>,
    reclassified: u64,
}

impl LiveDetector {
    /// Creates a detector.
    pub fn new(config: LiveConfig) -> Self {
        LiveDetector {
            quic: ChannelDetector::new(AttackProtocol::Quic, &config),
            common: ChannelDetector::new(AttackProtocol::TcpIcmp, &config),
            config,
            closed_quic: Vec::new(),
            closed_common: Vec::new(),
            common_profiles: Vec::new(),
            common_evidence: Vec::new(),
            quic_index: HashMap::new(),
            common_index: HashMap::new(),
            reclassified: 0,
        }
    }

    /// Offers one QUIC *response* packet (backscatter: `victim` is the
    /// packet's source). Returns the lifecycle events it triggered.
    pub fn offer_response(
        &mut self,
        ts: Timestamp,
        victim: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: u64,
    ) -> Vec<LiveEvent> {
        let mut raw = Vec::new();
        self.quic.offer(ts, victim, dst, bytes, &mut raw);
        self.settle(raw, AttackProtocol::Quic)
    }

    /// Offers one TCP/ICMP baseline packet.
    pub fn offer_baseline(
        &mut self,
        ts: Timestamp,
        victim: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: u64,
    ) -> Vec<LiveEvent> {
        let mut raw = Vec::new();
        self.common.offer(ts, victim, dst, bytes, &mut raw);
        self.settle(raw, AttackProtocol::TcpIcmp)
    }

    /// Flushes both channels at end of stream. Commons close first so
    /// QUIC alerts closing in the same flush already see them — the
    /// final verdicts equal batch `classify_multivector` either way,
    /// this ordering just minimizes trailing `Reclassified` noise.
    pub fn finish(&mut self) -> Vec<LiveEvent> {
        let mut events = Vec::new();
        let mut raw = Vec::new();
        self.common.flush(&mut raw);
        events.extend(self.settle(raw, AttackProtocol::TcpIcmp));
        let mut raw = Vec::new();
        self.quic.flush(&mut raw);
        events.extend(self.settle(raw, AttackProtocol::Quic));
        events
    }

    /// Turns raw channel events into lifecycle events, running the
    /// correlation bookkeeping for every close.
    fn settle(&mut self, raw: Vec<ChannelEvent>, protocol: AttackProtocol) -> Vec<LiveEvent> {
        let mut events = Vec::new();
        for event in raw {
            match event {
                ChannelEvent::Opened { at, victim } => {
                    events.push(plain_event(at, protocol, victim, LiveEventKind::Opened));
                }
                ChannelEvent::Escalated { at, victim } => {
                    events.push(plain_event(at, protocol, victim, LiveEventKind::Escalated));
                }
                ChannelEvent::Closed(alert) => match protocol {
                    AttackProtocol::Quic => events.push(self.close_quic(alert)),
                    AttackProtocol::TcpIcmp => {
                        events.extend(self.close_common(alert));
                    }
                },
            }
        }
        events
    }

    /// A QUIC alert closes: classify it against the common floods
    /// closed so far and record it for future reclassification.
    fn close_quic(&mut self, alert: ClosedAlert) -> LiveEvent {
        let victim = alert.attack.victim;
        let mut classified =
            ClassifiedAttack::new(alert.attack.clone(), alert.profile, alert.evidence.clone());
        if let Some(indices) = self.common_index.get(&victim) {
            for &i in indices {
                classified.absorb(&self.closed_common[i]);
            }
        }
        let (class, share, gap) = classified.verdict();
        self.quic_index
            .entry(victim)
            .or_default()
            .push(self.closed_quic.len());
        self.closed_quic.push(classified);
        LiveEvent {
            at: alert.attack.end,
            protocol: AttackProtocol::Quic,
            victim,
            kind: LiveEventKind::Closed,
            attack: Some(alert.attack),
            class: Some(class),
            overlap_share: share,
            gap_secs: gap.map(|g| g.as_secs_f64()),
            evicted: alert.evicted,
            evidence: alert.evidence,
        }
    }

    /// A common alert closes: emit its own `Closed`, then re-examine
    /// every already-closed QUIC alert on the same victim — verdicts
    /// that change surface as `Reclassified` (Fig. 8 kept current).
    fn close_common(&mut self, alert: ClosedAlert) -> Vec<LiveEvent> {
        let victim = alert.attack.victim;
        let mut events = vec![LiveEvent {
            at: alert.attack.end,
            protocol: AttackProtocol::TcpIcmp,
            victim,
            kind: LiveEventKind::Closed,
            attack: Some(alert.attack.clone()),
            class: None,
            overlap_share: None,
            gap_secs: None,
            evicted: alert.evicted,
            evidence: alert.evidence.clone(),
        }];
        self.common_index
            .entry(victim)
            .or_default()
            .push(self.closed_common.len());
        self.closed_common.push(alert.attack.clone());
        self.common_profiles.push(alert.profile);
        self.common_evidence.push(alert.evidence.clone());
        if let Some(indices) = self.quic_index.get(&victim).cloned() {
            for i in indices {
                let changed = self.closed_quic[i].absorb(&alert.attack);
                if changed {
                    self.reclassified += 1;
                    let (class, share, gap) = self.closed_quic[i].verdict();
                    events.push(LiveEvent {
                        at: alert.attack.end,
                        protocol: AttackProtocol::Quic,
                        victim,
                        kind: LiveEventKind::Reclassified,
                        attack: Some(self.closed_quic[i].attack.clone()),
                        class: Some(class),
                        overlap_share: share,
                        gap_secs: gap.map(|g| g.as_secs_f64()),
                        evicted: false,
                        evidence: Vec::new(),
                    });
                }
            }
        }
        events
    }

    /// Closed QUIC attacks with their current verdicts, in close order.
    pub fn closed_quic(&self) -> &[ClassifiedAttack] {
        &self.closed_quic
    }

    /// Closed common attacks, in close order.
    pub fn closed_common(&self) -> &[Attack] {
        &self.closed_common
    }

    /// Arrival profiles parallel to [`LiveDetector::closed_common`].
    pub fn common_profiles(&self) -> &[Vec<ProfileCell>] {
        &self.common_profiles
    }

    /// Evidence rings parallel to [`LiveDetector::closed_common`].
    pub fn common_evidence(&self) -> &[Vec<EvidencePacket>] {
        &self.common_evidence
    }

    /// Aggregated counters across both channels.
    pub fn stats(&self) -> LiveStats {
        let mut stats = self.quic.stats;
        stats.merge(&self.common.stats);
        stats.reclassified = self.reclassified;
        stats
    }

    /// Victims currently tracked across both channels.
    pub fn tracked(&self) -> usize {
        self.quic.tracked() + self.common.tracked()
    }

    /// Serializable checkpoint. Restoring it yields a detector that
    /// emits the exact same events for the rest of the stream as this
    /// one would.
    pub fn snapshot(&self) -> DetectorSnapshot {
        DetectorSnapshot {
            quic: self.quic.snapshot(),
            common: self.common.snapshot(),
            closed_quic: self.closed_quic.clone(),
            closed_common: self.closed_common.clone(),
            common_profiles: self.common_profiles.clone(),
            common_evidence: self.common_evidence.clone(),
            reclassified: self.reclassified,
        }
    }

    /// Rebuilds a detector from a checkpoint (indices and LRU sets are
    /// derived state and are reconstructed, not serialized).
    pub fn restore(config: LiveConfig, snapshot: &DetectorSnapshot) -> Self {
        let mut quic_index: HashMap<Ipv4Addr, Vec<usize>> = HashMap::new();
        for (i, classified) in snapshot.closed_quic.iter().enumerate() {
            quic_index
                .entry(classified.attack.victim)
                .or_default()
                .push(i);
        }
        let mut common_index: HashMap<Ipv4Addr, Vec<usize>> = HashMap::new();
        for (i, attack) in snapshot.closed_common.iter().enumerate() {
            common_index.entry(attack.victim).or_default().push(i);
        }
        LiveDetector {
            quic: ChannelDetector::restore(AttackProtocol::Quic, &config, &snapshot.quic),
            common: ChannelDetector::restore(AttackProtocol::TcpIcmp, &config, &snapshot.common),
            config,
            closed_quic: snapshot.closed_quic.clone(),
            closed_common: snapshot.closed_common.clone(),
            common_profiles: snapshot.common_profiles.clone(),
            common_evidence: snapshot.common_evidence.clone(),
            quic_index,
            common_index,
            reclassified: snapshot.reclassified,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &LiveConfig {
        &self.config
    }
}

fn plain_event(
    at: Timestamp,
    protocol: AttackProtocol,
    victim: Ipv4Addr,
    kind: LiveEventKind,
) -> LiveEvent {
    LiveEvent {
        at,
        protocol,
        victim,
        kind,
        attack: None,
        class: None,
        overlap_share: None,
        gap_secs: None,
        evicted: false,
        evidence: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, last)
    }

    fn dst() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }

    fn config() -> LiveConfig {
        LiveConfig::default()
    }

    /// Feeds a 2-pps flood for `secs` seconds starting at `start_secs`.
    fn flood(
        detector: &mut LiveDetector,
        victim: Ipv4Addr,
        start_secs: u64,
        secs: u64,
    ) -> Vec<LiveEvent> {
        let mut events = Vec::new();
        for i in 0..(secs * 2) {
            let ts = Timestamp::from_micros(start_secs * 1_000_000 + i * 500_000);
            events.extend(detector.offer_response(ts, victim, dst(), 60));
        }
        events
    }

    #[test]
    fn lifecycle_opens_then_closes_with_attack() {
        let mut d = LiveDetector::new(config());
        let events = flood(&mut d, ip(1), 0, 120);
        let opened: Vec<_> = events
            .iter()
            .filter(|e| e.kind == LiveEventKind::Opened)
            .collect();
        assert_eq!(opened.len(), 1, "exactly one open: {events:?}");
        assert_eq!(opened[0].victim, ip(1));

        let events = d.finish();
        let closed: Vec<_> = events
            .iter()
            .filter(|e| e.kind == LiveEventKind::Closed)
            .collect();
        assert_eq!(closed.len(), 1);
        let attack = closed[0].attack.as_ref().unwrap();
        assert_eq!(attack.victim, ip(1));
        assert_eq!(attack.packet_count, 240);
        assert!(attack.max_pps > 0.5);
        assert_eq!(closed[0].class, Some(MultiVectorClass::Isolated));
        assert!(!closed[0].evidence.is_empty());
        assert!(closed[0].evidence.len() <= config().evidence_capacity);
    }

    #[test]
    fn sub_threshold_victim_never_alerts() {
        let mut d = LiveDetector::new(config());
        // 10 packets over 20 s: under every Moore threshold.
        for i in 0..10u64 {
            let events = d.offer_response(Timestamp::from_secs(i * 2), ip(2), dst(), 60);
            assert!(events.is_empty(), "unexpected events: {events:?}");
        }
        assert!(d.finish().is_empty());
        assert_eq!(d.stats().opened, 0);
        assert_eq!(d.stats().closed, 0);
    }

    #[test]
    fn alert_never_reverts_open() {
        // Monotonicity: after Opened, no later packet may produce a
        // second Opened for the same session.
        let mut d = LiveDetector::new(config());
        let events = flood(&mut d, ip(3), 0, 600);
        let opens = events
            .iter()
            .filter(|e| e.kind == LiveEventKind::Opened)
            .count();
        assert_eq!(opens, 1);
    }

    #[test]
    fn escalation_fires_at_scaled_thresholds() {
        let mut d = LiveDetector::new(LiveConfig {
            escalation_weight: 2.0,
            ..config()
        });
        // 2 pps for 10 minutes: packets=1200 > 50, duration 600 s >
        // 120 s, max_pps 2.0 > 1.0 — crosses the 2× tier.
        let events = flood(&mut d, ip(4), 0, 600);
        let escalated = events
            .iter()
            .filter(|e| e.kind == LiveEventKind::Escalated)
            .count();
        assert_eq!(escalated, 1);
        assert_eq!(d.stats().escalated, 1);
    }

    #[test]
    fn idle_timeout_closes_via_watermark_without_more_victim_packets() {
        let mut d = LiveDetector::new(config());
        let mut events = flood(&mut d, ip(5), 0, 120);
        // Another victim's traffic far in the future advances the
        // watermark and sweeps the idle flood out.
        events.extend(d.offer_response(Timestamp::from_secs(10_000), ip(6), dst(), 60));
        let closed: Vec<_> = events
            .iter()
            .filter(|e| e.kind == LiveEventKind::Closed)
            .collect();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].victim, ip(5));
        // The close carries the session's real end, not the sweep time.
        assert!(closed[0].attack.as_ref().unwrap().end < Timestamp::from_secs(200));
    }

    #[test]
    fn concurrent_classification_when_common_closed_first() {
        let mut d = LiveDetector::new(config());
        // Common flood 0..600 s; close it by advancing the common
        // watermark far ahead.
        for i in 0..(600 * 2) {
            d.offer_baseline(Timestamp::from_micros(i * 500_000), ip(7), dst(), 60);
        }
        d.offer_baseline(Timestamp::from_secs(50_000), ip(99), dst(), 60);
        assert_eq!(d.closed_common().len(), 1);
        // QUIC flood 100..220 s (fully inside the common window), fed
        // afterwards — event time, not arrival time, drives overlap.
        flood(&mut d, ip(7), 100, 120);
        let events = d.finish();
        let quic_close = events
            .iter()
            .find(|e| e.protocol == AttackProtocol::Quic && e.kind == LiveEventKind::Closed)
            .expect("quic close");
        assert_eq!(quic_close.class, Some(MultiVectorClass::Concurrent));
        assert!((quic_close.overlap_share.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reclassified_when_common_closes_after_quic() {
        let mut d = LiveDetector::new(config());
        // QUIC flood closes first (watermark push), classified Isolated.
        flood(&mut d, ip(8), 0, 120);
        let events = d.offer_response(Timestamp::from_secs(20_000), ip(200), dst(), 60);
        let quic_close = events
            .iter()
            .find(|e| e.kind == LiveEventKind::Closed)
            .expect("quic close");
        assert_eq!(quic_close.class, Some(MultiVectorClass::Isolated));
        // Now a common flood on the same victim, overlapping 0..120 s.
        for i in 0..(300 * 2) {
            d.offer_baseline(Timestamp::from_micros(i * 500_000), ip(8), dst(), 60);
        }
        let events = d.finish();
        let reclass: Vec<_> = events
            .iter()
            .filter(|e| e.kind == LiveEventKind::Reclassified)
            .collect();
        assert_eq!(reclass.len(), 1, "events: {events:?}");
        assert_eq!(reclass[0].victim, ip(8));
        assert_eq!(reclass[0].class, Some(MultiVectorClass::Concurrent));
        assert_eq!(d.stats().reclassified, 1);
        assert_eq!(d.closed_quic()[0].class(), MultiVectorClass::Concurrent);
    }

    #[test]
    fn memory_cap_evicts_lru_and_counts_it() {
        let mut d = LiveDetector::new(LiveConfig {
            max_victims: 4,
            ..config()
        });
        // 50 victims, one packet each, in time order: every insert
        // beyond the 4th evicts the least-recently-active victim.
        for i in 0..50u64 {
            d.offer_response(Timestamp::from_secs(i), ip((i % 200) as u8), dst(), 60);
        }
        assert!(d.tracked() <= 4);
        let stats = d.stats();
        assert!(stats.peak_tracked <= 4, "peak {}", stats.peak_tracked);
        assert_eq!(stats.evictions, 46);
        // Quiet evictees close silently: no alerts ever opened.
        assert_eq!(stats.opened, 0);
    }

    #[test]
    fn evicted_qualifying_alert_is_flagged() {
        let mut d = LiveDetector::new(LiveConfig {
            max_victims: 1,
            ..config()
        });
        let mut events = flood(&mut d, ip(9), 0, 120);
        // A new victim forces the qualifying flood out under the cap.
        events.extend(d.offer_response(Timestamp::from_secs(130), ip(10), dst(), 60));
        let closed: Vec<_> = events
            .iter()
            .filter(|e| e.kind == LiveEventKind::Closed)
            .collect();
        assert_eq!(closed.len(), 1);
        assert!(closed[0].evicted);
        assert_eq!(d.stats().evictions, 1);
    }

    #[test]
    fn evidence_ring_keeps_most_recent_packets_in_order() {
        let mut d = LiveDetector::new(LiveConfig {
            evidence_capacity: 4,
            ..config()
        });
        flood(&mut d, ip(11), 0, 120);
        let events = d.finish();
        let closed = events
            .iter()
            .find(|e| e.kind == LiveEventKind::Closed)
            .unwrap();
        assert_eq!(closed.evidence.len(), 4);
        // Chronological, and the *latest* packets of the flood.
        for w in closed.evidence.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
        assert_eq!(
            closed.evidence.last().unwrap().ts,
            closed.attack.as_ref().unwrap().end
        );
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let build = |split: bool| -> (Vec<LiveEvent>, LiveDetector) {
            let mut d = LiveDetector::new(config());
            let mut events = flood(&mut d, ip(12), 0, 90);
            if split {
                let snapshot = d.snapshot();
                let json = serde_json::to_string(&snapshot).unwrap();
                let back: DetectorSnapshot = serde_json::from_str(&json).unwrap();
                assert_eq!(back, snapshot, "snapshot JSON roundtrip");
                d = LiveDetector::restore(config(), &back);
            }
            events.extend(flood(&mut d, ip(12), 90, 90));
            for i in 0..(60 * 2) {
                events.extend(d.offer_baseline(
                    Timestamp::from_micros(100 * 1_000_000 + i * 500_000),
                    ip(12),
                    dst(),
                    60,
                ));
            }
            let finish = d.finish();
            events.extend(finish);
            (events, d)
        };
        let (straight_events, straight) = build(false);
        let (resumed_events, resumed) = build(true);
        assert_eq!(resumed_events, straight_events);
        assert_eq!(resumed.closed_quic(), straight.closed_quic());
        assert_eq!(resumed.closed_common(), straight.closed_common());
        assert_eq!(resumed.stats(), straight.stats());
    }

    #[test]
    fn stats_merge_sums_everything() {
        let a = LiveStats {
            events_in: 10,
            opened: 1,
            escalated: 1,
            closed: 1,
            reclassified: 0,
            evictions: 2,
            peak_tracked: 5,
        };
        let mut b = LiveStats {
            events_in: 7,
            peak_tracked: 3,
            ..LiveStats::default()
        };
        b.merge(&a);
        assert_eq!(b.events_in, 17);
        assert_eq!(b.peak_tracked, 8);
        assert_eq!(b.evictions, 2);
    }
}
