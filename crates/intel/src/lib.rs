//! # quicsand-intel
//!
//! Metadata substrates standing in for the paper's three correlation
//! data sources (§4.2):
//!
//! * [`asdb`] — an IP→ASN longest-prefix-match database with PeeringDB-
//!   style network types (eyeball, content, transit, …) and registrant
//!   countries. Backs the Fig. 5 network-type analysis and the country
//!   breakdown of request sessions.
//! * [`greynoise`] — a honeypot-intelligence lookup: per-source-IP actor
//!   classification and tags (Mirai, Eternalblue, bruteforcer, research
//!   scanner), standing in for the GreyNoise platform.
//! * [`activescan`] — a registry of known QUIC servers with their
//!   operator and deployed QUIC version, standing in for the Rüth et
//!   al. active scan data set the paper cross-checks victims against
//!   (98 % of attacks target known QUIC servers).
//! * [`topology`] — the synthetic Internet: a deterministic allocator
//!   that populates the three databases above with a consistent world
//!   (research universities, eyeball networks per country, content
//!   providers with QUIC deployments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activescan;
pub mod asdb;
pub mod greynoise;
pub mod topology;

pub use activescan::{Provider, QuicServerRegistry, ServerInfo};
pub use asdb::{AsDatabase, AsInfo, NetworkType};
pub use greynoise::{ActorClass, ActorTag, GreyNoise};
pub use topology::{SyntheticInternet, TopologyConfig};
