//! Known-QUIC-server registry (active-scan data set stand-in).
//!
//! The paper cross-references flood victims with active scans of the
//! IPv4 space (Rüth et al.) and finds 98 % of attacks target known QUIC
//! servers, 58 % of them Google and 25 % Facebook (§5.2, Fig. 9). The
//! registry stores, per server IP, the operating provider and the QUIC
//! version its deployment speaks — which determines the version observed
//! in backscatter (mvfst-draft-27 for Facebook, draft-29 for Google).

use quicsand_net::Ipv4Prefix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Content providers the paper distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Provider {
    /// Google (58 % of attacks).
    Google,
    /// Facebook (25 % of attacks).
    Facebook,
    /// Cloudflare.
    Cloudflare,
    /// Akamai.
    Akamai,
    /// Any other QUIC operator.
    Other,
}

impl Provider {
    /// All providers in display order.
    pub const ALL: [Provider; 5] = [
        Provider::Google,
        Provider::Facebook,
        Provider::Cloudflare,
        Provider::Akamai,
        Provider::Other,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Provider::Google => "Google",
            Provider::Facebook => "Facebook",
            Provider::Cloudflare => "Cloudflare",
            Provider::Akamai => "Akamai",
            Provider::Other => "Other",
        }
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Metadata for one known QUIC server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerInfo {
    /// The operating provider.
    pub provider: Provider,
    /// The QUIC version wire value the deployment answers with.
    pub version_wire: u32,
    /// Whether the deployment sends RETRY to unvalidated clients. The
    /// paper observed zero RETRYs in the wild (§6), so scenario defaults
    /// set this to `false` everywhere.
    pub sends_retry: bool,
}

/// Registry of QUIC servers discovered by active scanning.
#[derive(Debug, Clone, Default)]
pub struct QuicServerRegistry {
    servers: HashMap<Ipv4Addr, ServerInfo>,
}

impl QuicServerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one server.
    pub fn register(&mut self, addr: Ipv4Addr, info: ServerInfo) {
        self.servers.insert(addr, info);
    }

    /// Registers every address in `prefix` (used for provider blocks).
    pub fn register_prefix(&mut self, prefix: Ipv4Prefix, info: &ServerInfo) {
        for i in 0..prefix.size() {
            self.servers.insert(prefix.nth(i), info.clone());
        }
    }

    /// Looks up a server.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&ServerInfo> {
        self.servers.get(&addr)
    }

    /// Whether `addr` is a known QUIC server (the 98 % check).
    pub fn is_known_server(&self, addr: Ipv4Addr) -> bool {
        self.servers.contains_key(&addr)
    }

    /// The provider operating `addr`, if known.
    pub fn provider(&self, addr: Ipv4Addr) -> Option<Provider> {
        self.lookup(addr).map(|s| s.provider)
    }

    /// Number of known servers (the paper's 2021 scans saw ~2 M).
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Iterates over all servers.
    pub fn iter(&self) -> impl Iterator<Item = (&Ipv4Addr, &ServerInfo)> {
        self.servers.iter()
    }

    /// Share of `victims` that are known QUIC servers.
    pub fn known_share<'a, I: IntoIterator<Item = &'a Ipv4Addr>>(&self, victims: I) -> f64 {
        let mut total = 0usize;
        let mut known = 0usize;
        for v in victims {
            total += 1;
            if self.is_known_server(*v) {
                known += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            known as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_wire::Version;

    fn google_info() -> ServerInfo {
        ServerInfo {
            provider: Provider::Google,
            version_wire: Version::Draft29.to_wire(),
            sends_retry: false,
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = QuicServerRegistry::new();
        assert!(reg.is_empty());
        let addr = Ipv4Addr::new(172, 217, 16, 100);
        reg.register(addr, google_info());
        assert!(reg.is_known_server(addr));
        assert_eq!(reg.provider(addr), Some(Provider::Google));
        assert_eq!(
            reg.lookup(addr).unwrap().version_wire,
            Version::Draft29.to_wire()
        );
        assert!(!reg.is_known_server(Ipv4Addr::new(1, 1, 1, 1)));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn register_prefix_covers_block() {
        let mut reg = QuicServerRegistry::new();
        let prefix: Ipv4Prefix = "31.13.64.0/28".parse().unwrap();
        reg.register_prefix(
            prefix,
            &ServerInfo {
                provider: Provider::Facebook,
                version_wire: Version::MvfstDraft27.to_wire(),
                sends_retry: false,
            },
        );
        assert_eq!(reg.len(), 16);
        assert_eq!(
            reg.provider(Ipv4Addr::new(31, 13, 64, 15)),
            Some(Provider::Facebook)
        );
        assert!(!reg.is_known_server(Ipv4Addr::new(31, 13, 64, 16)));
    }

    #[test]
    fn known_share_computation() {
        let mut reg = QuicServerRegistry::new();
        reg.register(Ipv4Addr::new(10, 0, 0, 1), google_info());
        reg.register(Ipv4Addr::new(10, 0, 0, 2), google_info());
        let victims = [
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 3),
            Ipv4Addr::new(10, 0, 0, 4),
        ];
        assert!((reg.known_share(victims.iter()) - 0.5).abs() < 1e-12);
        assert_eq!(reg.known_share(std::iter::empty()), 0.0);
    }

    #[test]
    fn provider_labels() {
        assert_eq!(Provider::Google.to_string(), "Google");
        assert_eq!(Provider::Facebook.label(), "Facebook");
        assert_eq!(Provider::ALL.len(), 5);
    }

    #[test]
    fn iteration() {
        let mut reg = QuicServerRegistry::new();
        reg.register(Ipv4Addr::new(1, 1, 1, 1), google_info());
        reg.register(Ipv4Addr::new(2, 2, 2, 2), google_info());
        assert_eq!(reg.iter().count(), 2);
    }
}
