//! IP→AS mapping with PeeringDB-style network types.
//!
//! The paper maps each session's source to an ASN and looks the ASN up
//! in PeeringDB to obtain the network type (Fig. 5: requests come from
//! eyeballs, responses from content networks). This module provides the
//! same two operations: longest-prefix-match IP→ASN and ASN→metadata.

use quicsand_net::Ipv4Prefix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// PeeringDB-style network classification, plus the aggregated labels
/// the paper uses in Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkType {
    /// Access/eyeball networks ("Cable/DSL/ISP" in PeeringDB).
    Eyeball,
    /// Content providers and CDNs.
    Content,
    /// Transit/backbone carriers ("NSP").
    Transit,
    /// Enterprises.
    Enterprise,
    /// Educational / research networks.
    Education,
    /// Anything else or unclassified.
    Other,
}

impl NetworkType {
    /// All variants, in Fig. 5 display order.
    pub const ALL: [NetworkType; 6] = [
        NetworkType::Eyeball,
        NetworkType::Content,
        NetworkType::Transit,
        NetworkType::Enterprise,
        NetworkType::Education,
        NetworkType::Other,
    ];

    /// The label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            NetworkType::Eyeball => "eyeball",
            NetworkType::Content => "content",
            NetworkType::Transit => "transit",
            NetworkType::Enterprise => "enterprise",
            NetworkType::Education => "education",
            NetworkType::Other => "other",
        }
    }
}

impl fmt::Display for NetworkType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Metadata for one autonomous system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsInfo {
    /// The AS number.
    pub asn: u32,
    /// Organization name.
    pub name: String,
    /// PeeringDB-style network type.
    pub network_type: NetworkType,
    /// ISO-3166-style country code of the registrant.
    pub country: &'static str,
}

/// Longest-prefix-match IP→ASN database plus ASN→[`AsInfo`] registry.
///
/// The LPM side is a per-length hash map (32 levels max); lookups probe
/// from the most to the least specific length actually present. With the
/// few thousand prefixes of a scenario this is effectively O(#lengths).
#[derive(Debug, Clone, Default)]
pub struct AsDatabase {
    by_len: HashMap<u8, HashMap<u32, u32>>,
    lengths_desc: Vec<u8>,
    as_info: HashMap<u32, AsInfo>,
}

impl AsDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an AS (overwrites existing metadata for the ASN).
    pub fn register_as(&mut self, info: AsInfo) {
        self.as_info.insert(info.asn, info);
    }

    /// Announces `prefix` as originated by `asn`.
    pub fn announce(&mut self, prefix: Ipv4Prefix, asn: u32) {
        let len = prefix.len();
        self.by_len
            .entry(len)
            .or_default()
            .insert(u32::from(prefix.base()), asn);
        if !self.lengths_desc.contains(&len) {
            self.lengths_desc.push(len);
            self.lengths_desc.sort_unstable_by(|a, b| b.cmp(a));
        }
    }

    /// Longest-prefix-match lookup: the originating ASN for `addr`.
    pub fn lookup_asn(&self, addr: Ipv4Addr) -> Option<u32> {
        let addr = u32::from(addr);
        for &len in &self.lengths_desc {
            let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
            if let Some(asn) = self.by_len[&len].get(&(addr & mask)) {
                return Some(*asn);
            }
        }
        None
    }

    /// Metadata for an ASN.
    pub fn as_info(&self, asn: u32) -> Option<&AsInfo> {
        self.as_info.get(&asn)
    }

    /// Combined lookup: IP → [`AsInfo`].
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&AsInfo> {
        self.lookup_asn(addr).and_then(|asn| self.as_info(asn))
    }

    /// Network type for an address; `Other` when unknown. The paper's
    /// Fig. 5 bins unmapped sources the same way.
    pub fn network_type(&self, addr: Ipv4Addr) -> NetworkType {
        self.lookup(addr)
            .map_or(NetworkType::Other, |i| i.network_type)
    }

    /// Country for an address, if mapped.
    pub fn country(&self, addr: Ipv4Addr) -> Option<&'static str> {
        self.lookup(addr).map(|i| i.country)
    }

    /// Number of registered ASes.
    pub fn as_count(&self) -> usize {
        self.as_info.len()
    }

    /// Number of announced prefixes.
    pub fn prefix_count(&self) -> usize {
        self.by_len.values().map(HashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> AsDatabase {
        let mut db = AsDatabase::new();
        db.register_as(AsInfo {
            asn: 15169,
            name: "Google LLC".into(),
            network_type: NetworkType::Content,
            country: "US",
        });
        db.register_as(AsInfo {
            asn: 17494,
            name: "BTCL Bangladesh".into(),
            network_type: NetworkType::Eyeball,
            country: "BD",
        });
        db.register_as(AsInfo {
            asn: 680,
            name: "DFN (German research)".into(),
            network_type: NetworkType::Education,
            country: "DE",
        });
        db.announce("8.8.8.0/24".parse().unwrap(), 15169);
        db.announce("8.0.0.0/8".parse().unwrap(), 680); // covering, less specific
        db.announce("103.4.0.0/16".parse().unwrap(), 17494);
        db
    }

    #[test]
    fn longest_prefix_wins() {
        let db = db();
        assert_eq!(db.lookup_asn(Ipv4Addr::new(8, 8, 8, 8)), Some(15169));
        assert_eq!(db.lookup_asn(Ipv4Addr::new(8, 9, 0, 1)), Some(680));
    }

    #[test]
    fn unknown_address_unmapped() {
        let db = db();
        assert_eq!(db.lookup_asn(Ipv4Addr::new(9, 9, 9, 9)), None);
        assert_eq!(
            db.network_type(Ipv4Addr::new(9, 9, 9, 9)),
            NetworkType::Other
        );
        assert_eq!(db.country(Ipv4Addr::new(9, 9, 9, 9)), None);
    }

    #[test]
    fn combined_lookup() {
        let db = db();
        let info = db.lookup(Ipv4Addr::new(103, 4, 200, 1)).unwrap();
        assert_eq!(info.asn, 17494);
        assert_eq!(info.network_type, NetworkType::Eyeball);
        assert_eq!(info.country, "BD");
        assert_eq!(
            db.network_type(Ipv4Addr::new(8, 8, 8, 1)),
            NetworkType::Content
        );
        assert_eq!(db.country(Ipv4Addr::new(8, 8, 8, 1)), Some("US"));
    }

    #[test]
    fn announced_but_unregistered_asn() {
        let mut db = AsDatabase::new();
        db.announce("1.0.0.0/8".parse().unwrap(), 42);
        assert_eq!(db.lookup_asn(Ipv4Addr::new(1, 2, 3, 4)), Some(42));
        assert!(db.lookup(Ipv4Addr::new(1, 2, 3, 4)).is_none());
        assert_eq!(
            db.network_type(Ipv4Addr::new(1, 2, 3, 4)),
            NetworkType::Other
        );
    }

    #[test]
    fn counts() {
        let db = db();
        assert_eq!(db.as_count(), 3);
        assert_eq!(db.prefix_count(), 3);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut db = AsDatabase::new();
        db.announce(Ipv4Prefix::ALL, 1);
        db.announce("10.0.0.0/8".parse().unwrap(), 2);
        assert_eq!(db.lookup_asn(Ipv4Addr::new(10, 1, 1, 1)), Some(2));
        assert_eq!(db.lookup_asn(Ipv4Addr::new(200, 1, 1, 1)), Some(1));
    }

    #[test]
    fn reannouncement_overwrites() {
        let mut db = AsDatabase::new();
        db.announce("10.0.0.0/8".parse().unwrap(), 1);
        db.announce("10.0.0.0/8".parse().unwrap(), 2);
        assert_eq!(db.lookup_asn(Ipv4Addr::new(10, 0, 0, 1)), Some(2));
        assert_eq!(db.prefix_count(), 1);
    }

    #[test]
    fn network_type_labels() {
        assert_eq!(NetworkType::Eyeball.label(), "eyeball");
        assert_eq!(NetworkType::Content.to_string(), "content");
        assert_eq!(NetworkType::ALL.len(), 6);
    }
}
