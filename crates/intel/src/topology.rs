//! The synthetic Internet: a deterministic world generator.
//!
//! Builds a consistent AS-level topology that the traffic generator and
//! the analyses share, standing in for the real Internet of April 2021:
//!
//! * two German research scanners (TUM, RWTH) that sweep the full IPv4
//!   space — the 98.5 % bias of Fig. 2;
//! * eyeball ASes across the countries the paper observes as scan
//!   origins (Bangladesh 34 %, USA 27 %, Algeria 8 %, rest elsewhere);
//! * content providers with QUIC deployments (Google on draft-29,
//!   Facebook on mvfst-draft-27, plus Cloudflare/Akamai/long tail),
//!   registered in the active-scan registry;
//! * transit and enterprise filler ASes so Fig. 5 has a realistic
//!   category mix.
//!
//! Address allocation avoids the telescope /9 — by construction no
//! "real" host lives inside the darknet, exactly as with the UCSD
//! telescope.

use crate::activescan::{Provider, QuicServerRegistry, ServerInfo};
use crate::asdb::{AsDatabase, AsInfo, NetworkType};
use crate::greynoise::GreyNoise;
use quicsand_net::rng::{substream, weighted_index};
use quicsand_net::{ip::telescope_prefix, Ipv4Prefix};
use quicsand_wire::Version;
use rand::Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Country mix for eyeball scan sources (paper §5.2: "Most request
/// sessions originate from Bangladesh (34%), USA (27%), and Algeria
/// (8%)").
pub const COUNTRY_WEIGHTS: [(&str, f64); 8] = [
    ("BD", 0.34),
    ("US", 0.27),
    ("DZ", 0.08),
    ("CN", 0.09),
    ("IN", 0.08),
    ("BR", 0.06),
    ("RU", 0.05),
    ("VN", 0.03),
];

/// The paper's per-provider attack shares (Fig. 9: 58 % Google, 25 %
/// Facebook, >83 % combined; the remainder split across the tail).
pub const PROVIDER_ATTACK_SHARES: [(Provider, f64); 5] = [
    (Provider::Google, 0.58),
    (Provider::Facebook, 0.25),
    (Provider::Cloudflare, 0.07),
    (Provider::Akamai, 0.05),
    (Provider::Other, 0.05),
];

/// Configuration for [`SyntheticInternet::build`].
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Master seed; every allocation derives from it.
    pub seed: u64,
    /// Eyeball ASes per country.
    pub eyeball_as_per_country: usize,
    /// QUIC servers to register per major provider.
    pub servers_per_provider: usize,
    /// Filler transit/enterprise AS count.
    pub filler_as_count: usize,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 0x5153_414e_4421, // "QSAND!"
            eyeball_as_per_country: 4,
            servers_per_provider: 48,
            filler_as_count: 24,
        }
    }
}

/// A research scanning project.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResearchScanner {
    /// Scanner source address.
    pub addr: Ipv4Addr,
    /// Operating organization.
    pub org: &'static str,
    /// Origin ASN.
    pub asn: u32,
}

/// The generated world.
#[derive(Debug, Clone)]
pub struct SyntheticInternet {
    /// IP→AS database (PeeringDB stand-in).
    pub asdb: AsDatabase,
    /// Honeypot intelligence (GreyNoise stand-in); populated lazily by
    /// the traffic generator as actors become active.
    pub greynoise: GreyNoise,
    /// Known QUIC servers (active-scan stand-in).
    pub servers: QuicServerRegistry,
    /// The telescope prefix (a /9).
    pub telescope: Ipv4Prefix,
    research: Vec<ResearchScanner>,
    eyeball_pools: Vec<(Ipv4Prefix, &'static str)>,
    country_weights: Vec<f64>,
    country_pool_index: HashMap<&'static str, Vec<usize>>,
    provider_servers: HashMap<Provider, Vec<Ipv4Addr>>,
}

impl SyntheticInternet {
    /// Builds the world deterministically from `config`.
    pub fn build(config: &TopologyConfig) -> Self {
        let mut rng = substream(config.seed, "topology");
        let mut asdb = AsDatabase::new();
        let servers = QuicServerRegistry::new();
        let telescope = telescope_prefix();

        let mut world = SyntheticInternet {
            asdb: AsDatabase::new(),
            greynoise: GreyNoise::new(),
            servers,
            telescope,
            research: Vec::new(),
            eyeball_pools: Vec::new(),
            country_weights: COUNTRY_WEIGHTS.iter().map(|(_, w)| *w).collect(),
            country_pool_index: HashMap::new(),
            provider_servers: HashMap::new(),
        };

        // --- Research scanners (TUM, RWTH): Education ASes in DE. ---
        asdb.register_as(AsInfo {
            asn: 56357,
            name: "Technische Universitaet Muenchen".into(),
            network_type: NetworkType::Education,
            country: "DE",
        });
        asdb.announce("138.246.253.0/24".parse().expect("static"), 56357);
        asdb.register_as(AsInfo {
            asn: 680,
            name: "RWTH Aachen / DFN".into(),
            network_type: NetworkType::Education,
            country: "DE",
        });
        asdb.announce("137.226.224.0/24".parse().expect("static"), 680);
        world.research = vec![
            ResearchScanner {
                addr: Ipv4Addr::new(138, 246, 253, 13),
                org: "TUM",
                asn: 56357,
            },
            ResearchScanner {
                addr: Ipv4Addr::new(137, 226, 224, 42),
                org: "RWTH",
                asn: 680,
            },
        ];

        // --- Eyeball ASes per country. ---
        // Sequential /16 allocation from 60.0.0.0, far from the
        // telescope at 128.0.0.0/9.
        let mut next_asn = 130_000u32;
        let mut next_slash16 = 60u32 << 24;
        for (ci, (country, _)) in COUNTRY_WEIGHTS.iter().enumerate() {
            let mut pools = Vec::new();
            for i in 0..config.eyeball_as_per_country {
                let prefix =
                    Ipv4Prefix::new(Ipv4Addr::from(next_slash16), 16).expect("aligned /16");
                next_slash16 += 1 << 16;
                asdb.register_as(AsInfo {
                    asn: next_asn,
                    name: format!("Eyeball-{country}-{i}"),
                    network_type: NetworkType::Eyeball,
                    country,
                });
                asdb.announce(prefix, next_asn);
                next_asn += 1;
                pools.push(world.eyeball_pools.len());
                world.eyeball_pools.push((prefix, country));
            }
            world.country_pool_index.insert(country, pools);
            let _ = ci;
        }

        // --- Content providers. ---
        let provider_blocks: [(Provider, u32, &str, &str); 5] = [
            (Provider::Google, 15169, "Google LLC", "142.250.0.0/16"),
            (Provider::Facebook, 32934, "Facebook Inc", "157.240.0.0/16"),
            (
                Provider::Cloudflare,
                13335,
                "Cloudflare Inc",
                "104.16.0.0/16",
            ),
            (
                Provider::Akamai,
                20940,
                "Akamai International",
                "23.32.0.0/16",
            ),
            (
                Provider::Other,
                200_000,
                "Misc QUIC Hosting",
                "185.60.0.0/16",
            ),
        ];
        for (provider, asn, name, cidr) in provider_blocks {
            let prefix: Ipv4Prefix = cidr.parse().expect("static prefix");
            asdb.register_as(AsInfo {
                asn,
                name: name.into(),
                network_type: NetworkType::Content,
                country: "US",
            });
            asdb.announce(prefix, asn);
            let mut addrs = Vec::with_capacity(config.servers_per_provider);
            let mut seen = std::collections::HashSet::new();
            while addrs.len() < config.servers_per_provider {
                let addr = prefix.sample(&mut rng);
                if !seen.insert(addr) {
                    continue;
                }
                let version_wire = sample_version(&mut rng, provider);
                world.servers.register(
                    addr,
                    ServerInfo {
                        provider,
                        version_wire,
                        // §6: RETRY unobserved in the wild.
                        sends_retry: false,
                    },
                );
                addrs.push(addr);
            }
            addrs.sort();
            world.provider_servers.insert(provider, addrs);
        }

        // --- Filler transit and enterprise ASes. ---
        for i in 0..config.filler_as_count {
            let prefix = Ipv4Prefix::new(Ipv4Addr::from(next_slash16), 16).expect("aligned /16");
            next_slash16 += 1 << 16;
            let ty = if i % 2 == 0 {
                NetworkType::Transit
            } else {
                NetworkType::Enterprise
            };
            asdb.register_as(AsInfo {
                asn: next_asn,
                name: format!("Filler-{}-{i}", ty.label()),
                network_type: ty,
                country: "US",
            });
            asdb.announce(prefix, next_asn);
            next_asn += 1;
        }

        world.asdb = asdb;
        world
    }

    /// The research scanning projects.
    pub fn research_scanners(&self) -> &[ResearchScanner] {
        &self.research
    }

    /// Samples an eyeball host address weighted by the paper's country
    /// mix; returns the address and its country.
    pub fn sample_eyeball_source<R: Rng + ?Sized>(&self, rng: &mut R) -> (Ipv4Addr, &'static str) {
        let ci = weighted_index(rng, &self.country_weights);
        let country = COUNTRY_WEIGHTS[ci].0;
        let pools = &self.country_pool_index[country];
        let (prefix, _) = self.eyeball_pools[pools[rng.gen_range(0..pools.len())]];
        (prefix.sample(rng), country)
    }

    /// The registered servers of a provider (sorted, deterministic).
    pub fn provider_servers(&self, provider: Provider) -> &[Ipv4Addr] {
        self.provider_servers
            .get(&provider)
            .map_or(&[], Vec::as_slice)
    }

    /// Samples a victim according to the paper's provider attack shares
    /// (58 % Google, 25 % Facebook, rest split).
    pub fn sample_victim<R: Rng + ?Sized>(&self, rng: &mut R) -> (Ipv4Addr, Provider) {
        let weights: Vec<f64> = PROVIDER_ATTACK_SHARES.iter().map(|(_, w)| *w).collect();
        let provider = PROVIDER_ATTACK_SHARES[weighted_index(rng, &weights)].0;
        let servers = self.provider_servers(provider);
        (servers[rng.gen_range(0..servers.len())], provider)
    }
}

fn sample_version<R: Rng + ?Sized>(rng: &mut R, provider: Provider) -> u32 {
    // Fig. 9: Google backscatter is 78 % draft-29 (rest v1 rollout);
    // Facebook is 95 % mvfst-draft-27.
    match provider {
        Provider::Google => {
            if rng.gen_bool(0.78) {
                Version::Draft29.to_wire()
            } else {
                Version::V1.to_wire()
            }
        }
        Provider::Facebook => {
            if rng.gen_bool(0.95) {
                Version::MvfstDraft27.to_wire()
            } else {
                Version::Draft27.to_wire()
            }
        }
        _ => {
            if rng.gen_bool(0.5) {
                Version::V1.to_wire()
            } else {
                Version::Draft29.to_wire()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn world() -> SyntheticInternet {
        SyntheticInternet::build(&TopologyConfig::default())
    }

    #[test]
    fn attack_shares_form_a_distribution() {
        let total: f64 = PROVIDER_ATTACK_SHARES.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(PROVIDER_ATTACK_SHARES[0], (Provider::Google, 0.58));
        assert_eq!(PROVIDER_ATTACK_SHARES[1], (Provider::Facebook, 0.25));
    }

    #[test]
    fn build_is_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(
            a.provider_servers(Provider::Google),
            b.provider_servers(Provider::Google)
        );
        assert_eq!(a.asdb.as_count(), b.asdb.as_count());
    }

    #[test]
    fn research_scanners_are_education_networks() {
        let w = world();
        assert_eq!(w.research_scanners().len(), 2);
        for scanner in w.research_scanners() {
            let info = w.asdb.lookup(scanner.addr).unwrap();
            assert_eq!(info.network_type, NetworkType::Education);
            assert_eq!(info.country, "DE");
            assert_eq!(info.asn, scanner.asn);
        }
    }

    #[test]
    fn eyeball_sources_map_to_eyeball_asns() {
        let w = world();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        for _ in 0..200 {
            let (addr, country) = w.sample_eyeball_source(&mut rng);
            let info = w.asdb.lookup(addr).unwrap();
            assert_eq!(info.network_type, NetworkType::Eyeball);
            assert_eq!(info.country, country);
        }
    }

    #[test]
    fn country_mix_matches_weights() {
        let w = world();
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let n = 20_000;
        let mut bd = 0;
        for _ in 0..n {
            if w.sample_eyeball_source(&mut rng).1 == "BD" {
                bd += 1;
            }
        }
        let share = bd as f64 / n as f64;
        assert!((share - 0.34).abs() < 0.02, "BD share {share}");
    }

    #[test]
    fn provider_servers_live_in_content_networks() {
        let w = world();
        for provider in Provider::ALL {
            let servers = w.provider_servers(provider);
            assert_eq!(
                servers.len(),
                TopologyConfig::default().servers_per_provider
            );
            for addr in servers {
                assert_eq!(w.asdb.network_type(*addr), NetworkType::Content);
                assert!(w.servers.is_known_server(*addr));
                assert_eq!(w.servers.provider(*addr), Some(provider));
            }
        }
    }

    #[test]
    fn victim_sampling_respects_shares() {
        let w = world();
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let n = 20_000;
        let mut google = 0;
        let mut facebook = 0;
        for _ in 0..n {
            match w.sample_victim(&mut rng).1 {
                Provider::Google => google += 1,
                Provider::Facebook => facebook += 1,
                _ => {}
            }
        }
        let g = google as f64 / n as f64;
        let f = facebook as f64 / n as f64;
        assert!((g - 0.58).abs() < 0.02, "google share {g}");
        assert!((f - 0.25).abs() < 0.02, "facebook share {f}");
    }

    #[test]
    fn versions_match_provider_deployments() {
        let w = world();
        let google_d29 = w
            .provider_servers(Provider::Google)
            .iter()
            .filter(|a| w.servers.lookup(**a).unwrap().version_wire == Version::Draft29.to_wire())
            .count();
        // 78 % of 48 ≈ 37; accept a broad band.
        assert!(
            (25..=47).contains(&google_d29),
            "google draft-29 count {google_d29}"
        );
        let fb_mvfst = w
            .provider_servers(Provider::Facebook)
            .iter()
            .filter(|a| {
                w.servers.lookup(**a).unwrap().version_wire == Version::MvfstDraft27.to_wire()
            })
            .count();
        assert!(fb_mvfst >= 40, "facebook mvfst count {fb_mvfst}");
    }

    #[test]
    fn nothing_lives_in_the_telescope() {
        let w = world();
        let mut rng = ChaCha12Rng::seed_from_u64(13);
        for _ in 0..500 {
            let (addr, _) = w.sample_eyeball_source(&mut rng);
            assert!(!w.telescope.contains(addr));
        }
        for provider in Provider::ALL {
            for addr in w.provider_servers(provider) {
                assert!(!w.telescope.contains(*addr));
            }
        }
        for s in w.research_scanners() {
            assert!(!w.telescope.contains(s.addr));
        }
    }

    #[test]
    fn no_retry_deployed_by_default() {
        // §6 of the paper: RETRY unobserved in the wild.
        let w = world();
        for (_, info) in w.servers.iter() {
            assert!(!info.sends_retry);
        }
    }

    #[test]
    fn fig5_category_mix_present() {
        let w = world();
        let mut have = std::collections::HashSet::new();
        for ty in NetworkType::ALL {
            let _ = ty;
        }
        // The database must contain eyeball, content, education,
        // transit and enterprise ASes for Fig. 5 to be meaningful.
        for asn in [56357u32, 680, 15169, 32934, 130_000] {
            if let Some(info) = w.asdb.as_info(asn) {
                have.insert(info.network_type);
            }
        }
        assert!(have.contains(&NetworkType::Education));
        assert!(have.contains(&NetworkType::Content));
        assert!(have.contains(&NetworkType::Eyeball));
    }
}
