//! Honeypot threat-intelligence lookup (GreyNoise stand-in).
//!
//! §5.2 of the paper correlates request-session sources with GreyNoise:
//! *no* source was classified benign, and 2.3 % carried known-actor tags
//! (Mirai, Eternalblue, bruteforcers). This module reproduces the lookup
//! interface: IP → classification + tags.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Coarse actor classification, as GreyNoise reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActorClass {
    /// Known-good scanner (search engines, research projects that
    /// register themselves, monitoring services).
    Benign,
    /// Known-bad actor.
    Malicious,
    /// Observed but unclassified.
    Unknown,
}

/// Fine-grained actor tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActorTag {
    /// Mirai-family botnet member.
    Mirai,
    /// EternalBlue exploit scanner.
    Eternalblue,
    /// Credential bruteforcer.
    Bruteforcer,
    /// Self-identified research scanner.
    ResearchScanner,
}

impl fmt::Display for ActorTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            ActorTag::Mirai => "mirai",
            ActorTag::Eternalblue => "eternalblue",
            ActorTag::Bruteforcer => "bruteforcer",
            ActorTag::ResearchScanner => "research-scanner",
        };
        write!(f, "{label}")
    }
}

/// One observed actor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActorInfo {
    /// Coarse classification.
    pub class: ActorClass,
    /// Tags attached by the platform.
    pub tags: Vec<ActorTag>,
}

/// The honeypot platform: per-IP actor intelligence.
#[derive(Debug, Clone, Default)]
pub struct GreyNoise {
    actors: HashMap<Ipv4Addr, ActorInfo>,
}

impl GreyNoise {
    /// Creates an empty platform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observation for `addr`.
    pub fn observe(&mut self, addr: Ipv4Addr, class: ActorClass, tags: Vec<ActorTag>) {
        self.actors.insert(addr, ActorInfo { class, tags });
    }

    /// Looks up an address. `None` means the honeypots never saw it.
    pub fn classify(&self, addr: Ipv4Addr) -> Option<&ActorInfo> {
        self.actors.get(&addr)
    }

    /// Whether the address is a known benign scanner.
    pub fn is_benign(&self, addr: Ipv4Addr) -> bool {
        self.classify(addr)
            .is_some_and(|a| a.class == ActorClass::Benign)
    }

    /// Whether the address carries any known-actor tag (the 2.3 % bucket
    /// in §5.2).
    pub fn is_tagged(&self, addr: Ipv4Addr) -> bool {
        self.classify(addr).is_some_and(|a| !a.tags.is_empty())
    }

    /// Number of recorded actors.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// Whether the platform has no observations.
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// Summary over a set of sources, as the paper computes it: share of
    /// benign sources and share of tagged sources among `sources`.
    pub fn summarize<'a, I: IntoIterator<Item = &'a Ipv4Addr>>(
        &self,
        sources: I,
    ) -> GreyNoiseSummary {
        let mut summary = GreyNoiseSummary::default();
        for addr in sources {
            summary.total += 1;
            match self.classify(*addr) {
                Some(info) => {
                    match info.class {
                        ActorClass::Benign => summary.benign += 1,
                        ActorClass::Malicious => summary.malicious += 1,
                        ActorClass::Unknown => summary.unknown += 1,
                    }
                    if !info.tags.is_empty() {
                        summary.tagged += 1;
                    }
                }
                None => summary.unseen += 1,
            }
        }
        summary
    }
}

/// Aggregate classification over a source set.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GreyNoiseSummary {
    /// Total sources examined.
    pub total: usize,
    /// Benign sources.
    pub benign: usize,
    /// Malicious sources.
    pub malicious: usize,
    /// Seen-but-unclassified sources.
    pub unknown: usize,
    /// Sources never seen by the platform.
    pub unseen: usize,
    /// Sources carrying at least one tag.
    pub tagged: usize,
}

impl GreyNoiseSummary {
    /// Share of tagged sources (0 when the set is empty).
    pub fn tagged_share(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.tagged as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, last)
    }

    #[test]
    fn observe_and_classify() {
        let mut gn = GreyNoise::new();
        assert!(gn.is_empty());
        gn.observe(ip(1), ActorClass::Malicious, vec![ActorTag::Mirai]);
        gn.observe(ip(2), ActorClass::Benign, vec![ActorTag::ResearchScanner]);
        gn.observe(ip(3), ActorClass::Unknown, vec![]);
        assert_eq!(gn.len(), 3);
        let actor = gn.classify(ip(1)).unwrap();
        assert_eq!(actor.class, ActorClass::Malicious);
        assert_eq!(actor.tags, vec![ActorTag::Mirai]);
        assert!(gn.classify(ip(99)).is_none());
    }

    #[test]
    fn benign_and_tagged_predicates() {
        let mut gn = GreyNoise::new();
        gn.observe(ip(1), ActorClass::Malicious, vec![ActorTag::Eternalblue]);
        gn.observe(ip(2), ActorClass::Benign, vec![]);
        assert!(gn.is_tagged(ip(1)));
        assert!(!gn.is_benign(ip(1)));
        assert!(gn.is_benign(ip(2)));
        assert!(!gn.is_tagged(ip(2)));
        assert!(!gn.is_tagged(ip(50)));
        assert!(!gn.is_benign(ip(50)));
    }

    #[test]
    fn summary_counts() {
        let mut gn = GreyNoise::new();
        gn.observe(ip(1), ActorClass::Malicious, vec![ActorTag::Mirai]);
        gn.observe(ip(2), ActorClass::Malicious, vec![ActorTag::Bruteforcer]);
        gn.observe(ip(3), ActorClass::Unknown, vec![]);
        let sources = [ip(1), ip(2), ip(3), ip(4), ip(5)];
        let s = gn.summarize(sources.iter());
        assert_eq!(s.total, 5);
        assert_eq!(s.malicious, 2);
        assert_eq!(s.unknown, 1);
        assert_eq!(s.unseen, 2);
        assert_eq!(s.benign, 0);
        assert_eq!(s.tagged, 2);
        assert!((s.tagged_share() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_summary() {
        let gn = GreyNoise::new();
        let s = gn.summarize(std::iter::empty());
        assert_eq!(s.total, 0);
        assert_eq!(s.tagged_share(), 0.0);
    }

    #[test]
    fn tag_display() {
        assert_eq!(ActorTag::Mirai.to_string(), "mirai");
        assert_eq!(ActorTag::Eternalblue.to_string(), "eternalblue");
        assert_eq!(ActorTag::Bruteforcer.to_string(), "bruteforcer");
        assert_eq!(ActorTag::ResearchScanner.to_string(), "research-scanner");
    }

    #[test]
    fn reobservation_overwrites() {
        let mut gn = GreyNoise::new();
        gn.observe(ip(1), ActorClass::Unknown, vec![]);
        gn.observe(ip(1), ActorClass::Malicious, vec![ActorTag::Mirai]);
        assert_eq!(gn.len(), 1);
        assert_eq!(gn.classify(ip(1)).unwrap().class, ActorClass::Malicious);
    }
}
