//! The batch pipeline's composite metric bundle.
//!
//! [`Analysis::run`](crate::Analysis::run) creates one fresh
//! [`MetricsRegistry`] per run (never process-global, so tests and
//! embedded callers stay hermetic) and publishes every stage's counters
//! into it at the single-threaded merge point. Counters therefore
//! reconcile exactly with the public stats structs at any thread count
//! — [`AnalysisMetrics::verify`] checks that invariant and is called by
//! the CLI before any export.

use quicsand_obs::MetricsRegistry;
use quicsand_sessions::{DosMetrics, SessionMetrics};
use quicsand_telescope::{IngestMetrics, StageMetrics};

/// Every metric family the batch pipeline publishes.
#[derive(Debug, Clone)]
pub struct AnalysisMetrics {
    /// Ingest/quarantine/dissect counters (mirror [`IngestStats`]).
    ///
    /// [`IngestStats`]: quicsand_telescope::IngestStats
    pub ingest: IngestMetrics,
    /// Session lifecycle counters (mirror the sessionizer counters).
    pub sessions: SessionMetrics,
    /// Detected-attack counters and distributions, by protocol family.
    pub dos: DosMetrics,
    /// Per-shard stage walltime histograms and end-of-run totals.
    pub stages: StageMetrics,
}

impl AnalysisMetrics {
    /// Registers all batch families on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        AnalysisMetrics {
            ingest: IngestMetrics::register(registry),
            sessions: SessionMetrics::register(registry),
            dos: DosMetrics::register(registry),
            stages: StageMetrics::register(registry),
        }
    }
}
