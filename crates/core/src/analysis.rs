//! The end-to-end measurement pipeline (§4 + §5.1/§5.2 mechanics).
//!
//! [`Analysis::run`] executes, in order:
//!
//! 1. **Ingest** — port filter + dissection ([`quicsand_telescope`]).
//! 2. **Sanitize** — behavioural research-scanner detection corroborated
//!    with the AS database; research traffic is split off (Fig. 2).
//! 3. **Sessionize** — requests and responses separately, 5-minute
//!    timeout (Fig. 4 default).
//! 4. **Infer DoS** — Moore et al. thresholds on response sessions
//!    (QUIC) and on TCP/ICMP baseline sessions.
//! 5. **Correlate** — multi-vector classification of QUIC floods
//!    against common floods.
//!
//! Every intermediate product is a public field so experiments (and
//! downstream users) can compute whatever the paper did not.

use crate::metrics::AnalysisMetrics;
use quicsand_dissect::Direction;
use quicsand_events::{EventMeta, SessionMigrated, Subscriber};
use quicsand_net::Duration;
use quicsand_obs::MetricsRegistry;
use quicsand_sessions::dos::{detect_attacks, Attack, AttackProtocol, DosThresholds};
use quicsand_sessions::multivector::{classify_multivector_with, MultiVectorReport, VectorSignals};
use quicsand_sessions::session::{
    link_migrations, MigrationLink, Session, SessionConfig, Sessionizer, SessionizerCounters,
};
use quicsand_telescope::parallel::{ingest_shard_with, partition_by_source};
pub use quicsand_telescope::PipelineStats;
use quicsand_telescope::{
    Admitted, GuardConfig, HourlySeries, IngestStats, QuicObservation, ResearchFilter,
    TelescopePipeline,
};
use quicsand_traffic::Scenario;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;

/// Default worker count: one shard per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Pipeline parameters (the paper's §4.1 choices).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Sessionization timeout (paper: 5 minutes, the Fig. 4 knee).
    pub session_timeout: Duration,
    /// DoS thresholds (paper: Moore et al. defaults).
    pub thresholds: DosThresholds,
    /// Behavioural research-scanner detection: minimum request packets.
    pub research_min_packets: u64,
    /// Behavioural research-scanner detection: minimum unique targets.
    pub research_min_dsts: u64,
    /// Worker threads for the sharded ingest→sessionize stages.
    /// `1` runs the single-threaded path; any value produces
    /// byte-identical analysis products (the shard merge is
    /// deterministic), so this only affects wall-clock time.
    pub threads: usize,
    /// Pre-classification ingest guard: duplicate suppression and
    /// backwards-timestamp quarantine thresholds. Per-source, so the
    /// guard's decisions are also thread-count-invariant.
    pub guard: GuardConfig,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            session_timeout: Duration::from_mins(5),
            thresholds: DosThresholds::moore(),
            research_min_packets: 500,
            research_min_dsts: 400,
            threads: default_threads(),
            guard: GuardConfig::default(),
        }
    }
}

fn ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1_000.0
}

/// Deterministic session order shared by the sequential and parallel
/// paths: `(start, src)` is unique per sessionizer (one source has at
/// most one session starting at a given instant).
fn sort_sessions(sessions: &mut [Session]) {
    sessions.sort_by_key(|s| (s.start, s.src));
}

/// Reads the lifecycle counters and still-open counts of the three
/// channel sessionizers — must run *before* `finish()` consumes them.
fn session_tally(sessionizers: [&Sessionizer; 3]) -> (SessionizerCounters, u64) {
    let mut counters = SessionizerCounters::default();
    let mut open = 0u64;
    for sessionizer in sessionizers {
        counters.merge(&sessionizer.counters());
        open += sessionizer.open_count() as u64;
    }
    (counters, open)
}

/// All pipeline products.
#[derive(Debug)]
pub struct Analysis {
    /// Ingest counters.
    pub ingest: IngestStats,
    /// Identified research scanner sources.
    pub research_sources: HashSet<Ipv4Addr>,
    /// Hourly packet counts: research scanners (Fig. 2).
    pub research_hourly: HourlySeries,
    /// Hourly packet counts: sanitized requests (Fig. 3).
    pub request_hourly: HourlySeries,
    /// Hourly packet counts: sanitized responses (Fig. 3).
    pub response_hourly: HourlySeries,
    /// Research packet total (before sanitization).
    pub research_packets: u64,
    /// Sanitized request observations.
    pub requests: Vec<QuicObservation>,
    /// Sanitized response observations.
    pub responses: Vec<QuicObservation>,
    /// Request sessions (after CID-keyed migration linking: a flow that
    /// changed source address mid-session is one session here).
    pub request_sessions: Vec<Session>,
    /// Mid-flow address changes re-joined by the migration link pass.
    pub migrations: Vec<MigrationLink>,
    /// Response sessions.
    pub response_sessions: Vec<Session>,
    /// Detected QUIC floods.
    pub quic_attacks: Vec<Attack>,
    /// TCP/ICMP baseline sessions.
    pub common_sessions: Vec<Session>,
    /// Detected TCP/ICMP floods.
    pub common_attacks: Vec<Attack>,
    /// Multi-vector correlation.
    pub multivector: MultiVectorReport,
    /// Wall-clock/memory telemetry (non-deterministic; not part of any
    /// report).
    pub stats: PipelineStats,
    /// The configuration used.
    pub config: AnalysisConfig,
    /// The per-run metric registry every counter below is registered
    /// on; render it with
    /// [`render_prometheus`](quicsand_obs::MetricsRegistry::render_prometheus)
    /// or [`render_json`](quicsand_obs::MetricsRegistry::render_json).
    pub registry: Arc<MetricsRegistry>,
    /// Handles to the published metric families (already reconciled
    /// with the stats fields above — see [`Analysis::verify_metrics`]).
    pub metrics: AnalysisMetrics,
}

/// Everything stages 1–3 produce; stages 4–5 are computed on top by
/// [`Analysis::run`], identically for both execution paths.
struct FrontendProducts {
    ingest: IngestStats,
    research_sources: HashSet<Ipv4Addr>,
    research_hourly: HourlySeries,
    request_hourly: HourlySeries,
    response_hourly: HourlySeries,
    research_packets: u64,
    requests: Vec<QuicObservation>,
    responses: Vec<QuicObservation>,
    request_sessions: Vec<Session>,
    response_sessions: Vec<Session>,
    common_sessions: Vec<Session>,
    stats: PipelineStats,
    /// Sessionizer lifecycle counters, summed over every sessionizer
    /// (read *before* `finish()`, which consumes the sessionizer).
    session_counters: SessionizerCounters,
    /// Sessions still open when the end-of-run flush ran (the flush
    /// closes them; `SessionMetrics::add_final` accounts for that).
    sessions_open_at_flush: u64,
    /// One `PipelineStats` per shard (a single entry sequentially) so
    /// the stage-walltime histograms get one observation per shard.
    shard_stats: Vec<PipelineStats>,
}

/// One worker's output in the parallel path. The `requests` /
/// `responses` carry original record indices so the merge can restore
/// exact capture order.
struct ShardProducts {
    ingest: IngestStats,
    research_sources: HashSet<Ipv4Addr>,
    research_hourly: HourlySeries,
    request_hourly: HourlySeries,
    response_hourly: HourlySeries,
    research_packets: u64,
    requests: Vec<(usize, QuicObservation)>,
    responses: Vec<(usize, QuicObservation)>,
    request_sessions: Vec<Session>,
    response_sessions: Vec<Session>,
    common_sessions: Vec<Session>,
    stats: PipelineStats,
    session_counters: SessionizerCounters,
    sessions_open_at_flush: u64,
}

impl Analysis {
    /// Runs the complete pipeline on a scenario.
    ///
    /// With `config.threads > 1` stages 1–3 are sharded by
    /// `hash(src) % threads` across scoped worker threads; the merge
    /// is deterministic, so every analysis product is byte-identical
    /// at any thread count (only [`Analysis::stats`] differs).
    pub fn run(scenario: &Scenario, config: &AnalysisConfig) -> Analysis {
        let threads = config.threads.max(1);
        let frontend = if threads == 1 {
            Self::frontend_sequential(scenario, config)
        } else {
            Self::frontend_parallel(scenario, config, threads)
        };
        let FrontendProducts {
            ingest,
            research_sources,
            research_hourly,
            request_hourly,
            response_hourly,
            research_packets,
            requests,
            responses,
            mut request_sessions,
            mut response_sessions,
            mut common_sessions,
            mut stats,
            session_counters,
            sessions_open_at_flush,
            shard_stats,
        } = frontend;

        // Deterministic session order regardless of close order or
        // shard interleaving.
        sort_sessions(&mut request_sessions);
        sort_sessions(&mut response_sessions);
        sort_sessions(&mut common_sessions);

        // 3b. CID-keyed migration linking on the merged request
        // sessions. Running after the cross-shard merge keeps the pass
        // shard-invariant even though a migrating flow's addresses can
        // land in different shards.
        let migrations = link_migrations(&mut request_sessions, config.session_timeout);

        // 4. DoS inference.
        let detect_start = Instant::now();
        let quic_attacks =
            detect_attacks(&response_sessions, AttackProtocol::Quic, &config.thresholds);
        let common_attacks = detect_attacks(
            &common_sessions,
            AttackProtocol::TcpIcmp,
            &config.thresholds,
        );

        // 5. Multi-vector correlation, fed the packet-level vector
        // evidence: Retry backscatter per victim and the endpoints of
        // every migration link.
        let mut signals = VectorSignals::empty();
        for obs in &responses {
            if obs.dissected.has_retry() {
                signals.record_retry(obs.src);
            }
        }
        for link in &migrations {
            signals.record_migration(link.from);
            signals.record_migration(link.to);
        }
        let multivector = classify_multivector_with(&quic_attacks, &common_attacks, &signals);
        stats.detect_ms = ms(detect_start);
        stats.threads = threads;
        stats.records = ingest.total;
        stats.quarantined = ingest.quarantine.total();

        // Publish everything into a fresh per-run registry at this
        // single-threaded tail: counters are exact deltas of the merged
        // stats, so they reconcile by construction at any thread count.
        let registry = MetricsRegistry::new();
        let metrics = AnalysisMetrics::register(&registry);
        metrics.ingest.add_stats(&ingest);
        metrics
            .sessions
            .add_final(session_counters, sessions_open_at_flush);
        metrics.sessions.migrated_total.add(migrations.len() as u64);
        metrics.dos.observe_attacks(&quic_attacks);
        metrics.dos.observe_attacks(&common_attacks);
        for shard in &shard_stats {
            metrics.stages.observe_frontend(shard);
        }
        metrics.stages.observe_detect(stats.detect_ms);
        metrics.stages.set_totals(&stats);

        Analysis {
            ingest,
            research_sources,
            research_hourly,
            request_hourly,
            response_hourly,
            research_packets,
            requests,
            responses,
            request_sessions,
            migrations,
            response_sessions,
            quic_attacks,
            common_sessions,
            common_attacks,
            multivector,
            stats,
            config: *config,
            registry,
            metrics,
        }
    }

    /// [`Analysis::run`], additionally mirroring the run as a typed
    /// event stream: per-record wire rejections and Retry/VN sightings
    /// plus the session lifecycle of the flood-relevant channels
    /// (`quic` responses and the `tcp_icmp` baseline).
    ///
    /// The events come from a dedicated single-threaded forensic
    /// re-pass over the capture — never from the sharded workers — so
    /// the stream is byte-identical at every `config.threads`, and a
    /// disabled subscriber (`enabled() == false`) skips the re-pass
    /// entirely: `run_with` then costs exactly what [`Analysis::run`]
    /// does.
    pub fn run_with<S: Subscriber>(
        scenario: &Scenario,
        config: &AnalysisConfig,
        subscriber: &mut S,
    ) -> Analysis {
        let analysis = Self::run(scenario, config);
        if subscriber.enabled() {
            Self::emit_events(scenario, &analysis, subscriber);
        }
        analysis
    }

    /// The forensic event re-pass behind [`Analysis::run_with`]: a
    /// fresh guard+dissect pipeline replays the capture record by
    /// record (each event tagged with its absolute record index), and
    /// the admitted flood-relevant streams drive event-emitting
    /// sessionizers. Research scanners are excluded using the already
    /// computed [`Analysis::research_sources`], so the sessions traced
    /// here are exactly the `response_sessions` / `common_sessions` the
    /// detector consumed.
    fn emit_events<S: Subscriber>(scenario: &Scenario, analysis: &Analysis, subscriber: &mut S) {
        let session_config = SessionConfig {
            timeout: analysis.config.session_timeout,
            skew_tolerance: analysis.config.guard.reorder_tolerance,
        };
        let mut pipeline = TelescopePipeline::with_guard(analysis.config.guard);
        let mut response_sessionizer = Sessionizer::new(session_config);
        let mut common_sessionizer = Sessionizer::new(session_config);
        for (index, record) in scenario.records.iter().enumerate() {
            let meta = EventMeta::record(index as u64);
            match pipeline.admit_with(record, &meta, subscriber) {
                Admitted::Quic(obs) => {
                    if obs.direction == Direction::Response
                        && !analysis.research_sources.contains(&obs.src)
                    {
                        response_sessionizer.offer_with(obs.ts, obs.src, "quic", &meta, subscriber);
                    }
                }
                Admitted::Baseline(rec) => {
                    common_sessionizer.offer_with(rec.ts, rec.src, "tcp_icmp", &meta, subscriber);
                }
                Admitted::Dropped => {}
            }
        }
        let meta = EventMeta::lifecycle();
        response_sessionizer.finish_with("quic", &meta, subscriber);
        common_sessionizer.finish_with("tcp_icmp", &meta, subscriber);
        // Migration links are a deterministic post-pass product of the
        // batch run (the request channel is not re-sessionized here);
        // mirror each link as a typed lifecycle event.
        for link in &analysis.migrations {
            subscriber.on_session_migrated(
                &meta,
                &SessionMigrated {
                    at: link.at,
                    from: link.from,
                    to: link.to,
                    channel: "quic_request".to_string(),
                    cid_key: link.cid_key,
                    gap: link.gap,
                },
            );
        }
    }

    /// Stages 1–3, single-threaded (the `threads == 1` path).
    fn frontend_sequential(scenario: &Scenario, config: &AnalysisConfig) -> FrontendProducts {
        let mut stats = PipelineStats::default();

        // 1. Ingest.
        let ingest_start = Instant::now();
        let mut pipeline = TelescopePipeline::with_guard(config.guard);
        pipeline.ingest_all(&scenario.records);
        let (observations, baseline, ingest) = pipeline.finish();
        stats.ingest_ms = ms(ingest_start);

        // 2. Sanitize: behavioural detection corroborated by PeeringDB.
        let sanitize_start = Instant::now();
        let filter = ResearchFilter::detect_with_asdb(
            &observations,
            &scenario.world.asdb,
            config.research_min_packets,
            config.research_min_dsts,
        );
        let research_sources = filter.sources().clone();

        let mut research_hourly = HourlySeries::new();
        let mut request_hourly = HourlySeries::new();
        let mut response_hourly = HourlySeries::new();
        let mut research_packets = 0u64;
        let mut requests = Vec::new();
        let mut responses = Vec::new();
        for obs in observations {
            if filter.is_research(obs.src) {
                research_packets += 1;
                research_hourly.add(obs.ts);
                continue;
            }
            match obs.direction {
                Direction::Request => {
                    request_hourly.add(obs.ts);
                    requests.push(obs);
                }
                Direction::Response => {
                    response_hourly.add(obs.ts);
                    responses.push(obs);
                }
            }
        }
        stats.sanitize_ms = ms(sanitize_start);

        // 3. Sessionize (observations are in capture order).
        let sessionize_start = Instant::now();
        let session_config = SessionConfig {
            timeout: config.session_timeout,
            // Late packets admitted by the ingest guard lag at most its
            // reorder tolerance behind the watermark; the sessionizer's
            // deferred expiry must cover exactly that.
            skew_tolerance: config.guard.reorder_tolerance,
        };
        let mut request_sessionizer = Sessionizer::new(session_config);
        for obs in &requests {
            request_sessionizer.offer_keyed(obs.ts, obs.src, obs.dissected.client_cid_key());
        }
        let mut response_sessionizer = Sessionizer::new(session_config);
        for obs in &responses {
            response_sessionizer.offer(obs.ts, obs.src);
        }
        let mut common_sessionizer = Sessionizer::new(session_config);
        for record in &baseline {
            common_sessionizer.offer(record.ts, record.src);
        }
        stats.peak_open_sessions = request_sessionizer.peak_open_count()
            + response_sessionizer.peak_open_count()
            + common_sessionizer.peak_open_count();
        let (session_counters, sessions_open_at_flush) = session_tally([
            &request_sessionizer,
            &response_sessionizer,
            &common_sessionizer,
        ]);
        let request_sessions = request_sessionizer.finish();
        let response_sessions = response_sessionizer.finish();
        let common_sessions = common_sessionizer.finish();
        stats.sessionize_ms = ms(sessionize_start);

        let shard_stats = vec![stats.clone()];
        FrontendProducts {
            ingest,
            research_sources,
            research_hourly,
            request_hourly,
            response_hourly,
            research_packets,
            requests,
            responses,
            request_sessions,
            response_sessions,
            common_sessions,
            stats,
            session_counters,
            sessions_open_at_flush,
            shard_stats,
        }
    }

    /// Stages 1–3 sharded by `hash(src) % threads` across scoped
    /// worker threads.
    ///
    /// Every per-source computation (dissection is per-packet;
    /// research detection, sessionization and the hourly split are
    /// per-source) sees exactly the packets it would see sequentially,
    /// because a source's packets all land in one shard in capture
    /// order. The merge restores capture order via the original record
    /// indices, so the output equals the sequential path bit for bit.
    fn frontend_parallel(
        scenario: &Scenario,
        config: &AnalysisConfig,
        threads: usize,
    ) -> FrontendProducts {
        let records = &scenario.records;
        let asdb = &scenario.world.asdb;
        let session_config = SessionConfig {
            timeout: config.session_timeout,
            skew_tolerance: config.guard.reorder_tolerance,
        };
        let buckets = partition_by_source(records, threads);

        let run_shard = |indices: &[usize]| -> ShardProducts {
            let mut stats = PipelineStats::default();

            // 1. Ingest (this shard's records only).
            let ingest_start = Instant::now();
            let shard = ingest_shard_with(records, indices, config.guard);
            stats.ingest_ms = ms(ingest_start);

            // 2. Sanitize. Research detection is a per-source
            // aggregation, and sources never span shards, so the
            // per-shard result is the global result restricted to
            // this shard.
            let sanitize_start = Instant::now();
            let filter = ResearchFilter::detect_with_asdb(
                &shard.quic,
                asdb,
                config.research_min_packets,
                config.research_min_dsts,
            );
            let research_sources = filter.sources().clone();

            let mut research_hourly = HourlySeries::new();
            let mut request_hourly = HourlySeries::new();
            let mut response_hourly = HourlySeries::new();
            let mut research_packets = 0u64;
            let mut requests = Vec::new();
            let mut responses = Vec::new();
            for (obs, index) in shard.quic.into_iter().zip(shard.quic_index) {
                if filter.is_research(obs.src) {
                    research_packets += 1;
                    research_hourly.add(obs.ts);
                    continue;
                }
                match obs.direction {
                    Direction::Request => {
                        request_hourly.add(obs.ts);
                        requests.push((index, obs));
                    }
                    Direction::Response => {
                        response_hourly.add(obs.ts);
                        responses.push((index, obs));
                    }
                }
            }
            stats.sanitize_ms = ms(sanitize_start);

            // 3. Sessionize this shard's per-source streams.
            let sessionize_start = Instant::now();
            let mut request_sessionizer = Sessionizer::new(session_config);
            for (_, obs) in &requests {
                request_sessionizer.offer_keyed(obs.ts, obs.src, obs.dissected.client_cid_key());
            }
            let mut response_sessionizer = Sessionizer::new(session_config);
            for (_, obs) in &responses {
                response_sessionizer.offer(obs.ts, obs.src);
            }
            let mut common_sessionizer = Sessionizer::new(session_config);
            for record in &shard.baseline {
                common_sessionizer.offer(record.ts, record.src);
            }
            stats.peak_open_sessions = request_sessionizer.peak_open_count()
                + response_sessionizer.peak_open_count()
                + common_sessionizer.peak_open_count();
            let (session_counters, sessions_open_at_flush) = session_tally([
                &request_sessionizer,
                &response_sessionizer,
                &common_sessionizer,
            ]);
            let request_sessions = request_sessionizer.finish();
            let response_sessions = response_sessionizer.finish();
            let common_sessions = common_sessionizer.finish();
            stats.sessionize_ms = ms(sessionize_start);

            ShardProducts {
                ingest: shard.stats,
                research_sources,
                research_hourly,
                request_hourly,
                response_hourly,
                research_packets,
                requests,
                responses,
                request_sessions,
                response_sessions,
                common_sessions,
                stats,
                session_counters,
                sessions_open_at_flush,
            }
        };

        let run_shard = &run_shard;
        let shards: Vec<ShardProducts> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .iter()
                .map(|indices| scope.spawn(move |_| run_shard(indices)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("analysis shard worker panicked"))
                .collect()
        })
        .expect("analysis scope panicked");

        // Deterministic merge.
        let mut ingest = IngestStats::default();
        let mut research_sources = HashSet::new();
        let mut research_hourly = HourlySeries::new();
        let mut request_hourly = HourlySeries::new();
        let mut response_hourly = HourlySeries::new();
        let mut research_packets = 0u64;
        let mut tagged_requests: Vec<(usize, QuicObservation)> = Vec::new();
        let mut tagged_responses: Vec<(usize, QuicObservation)> = Vec::new();
        let mut request_sessions = Vec::new();
        let mut response_sessions = Vec::new();
        let mut common_sessions = Vec::new();
        let mut stats = PipelineStats::default();
        let mut session_counters = SessionizerCounters::default();
        let mut sessions_open_at_flush = 0u64;
        let mut shard_stats = Vec::new();
        for shard in shards {
            ingest.merge(&shard.ingest);
            research_sources.extend(shard.research_sources);
            research_hourly.merge(&shard.research_hourly);
            request_hourly.merge(&shard.request_hourly);
            response_hourly.merge(&shard.response_hourly);
            research_packets += shard.research_packets;
            tagged_requests.extend(shard.requests);
            tagged_responses.extend(shard.responses);
            request_sessions.extend(shard.request_sessions);
            response_sessions.extend(shard.response_sessions);
            common_sessions.extend(shard.common_sessions);
            stats.max_stage(&shard.stats);
            session_counters.merge(&shard.session_counters);
            sessions_open_at_flush += shard.sessions_open_at_flush;
            shard_stats.push(shard.stats);
        }
        // Original record indices are unique → deterministic order.
        tagged_requests.sort_unstable_by_key(|(index, _)| *index);
        tagged_responses.sort_unstable_by_key(|(index, _)| *index);
        let requests = tagged_requests.into_iter().map(|(_, obs)| obs).collect();
        let responses = tagged_responses.into_iter().map(|(_, obs)| obs).collect();

        FrontendProducts {
            ingest,
            research_sources,
            research_hourly,
            request_hourly,
            response_hourly,
            research_packets,
            requests,
            responses,
            request_sessions,
            response_sessions,
            common_sessions,
            stats,
            session_counters,
            sessions_open_at_flush,
            shard_stats,
        }
    }

    /// The reconciliation invariant, checked end to end: every exported
    /// counter equals the corresponding public product exactly —
    /// ingest/quarantine/dissect counters against [`Analysis::ingest`],
    /// session lifecycle counters against the session lists, attack
    /// counters against the attack lists, and the peak-sessions gauge
    /// against [`Analysis::stats`]. Returns the mismatch list on
    /// failure. Holds at any thread count.
    pub fn verify_metrics(&self) -> Result<(), Vec<String>> {
        let mut errors = self
            .metrics
            .ingest
            .verify(&self.ingest)
            .err()
            .unwrap_or_default();
        let mut check = |name: &str, counter: u64, expected: u64| {
            if counter != expected {
                errors.push(format!("{name}: counter {counter} != expected {expected}"));
            }
        };
        let sessions = self.metrics.sessions.clone();
        // Each migration link folded two closed sessions into one, so
        // the sessionizer lifecycle counters exceed the final session
        // count by exactly the migration count.
        let migrated = self.migrations.len() as u64;
        let total_sessions = (self.request_sessions.len()
            + self.response_sessions.len()
            + self.common_sessions.len()) as u64
            + migrated;
        check(
            "sessions_opened",
            sessions.opened_total.get(),
            total_sessions,
        );
        check(
            "sessions_closed",
            sessions.closed_total.get(),
            total_sessions,
        );
        check("sessions_migrated", sessions.migrated_total.get(), migrated);
        let dos = &self.metrics.dos;
        check(
            "attacks_quic",
            dos.attacks_quic.get(),
            self.quic_attacks.len() as u64,
        );
        check(
            "attacks_common",
            dos.attacks_common.get(),
            self.common_attacks.len() as u64,
        );
        check(
            "attack_duration_observations",
            dos.duration_quic.count() + dos.duration_common.count(),
            (self.quic_attacks.len() + self.common_attacks.len()) as u64,
        );
        check(
            "peak_open_sessions",
            self.metrics.stages.peak_open_sessions.get(),
            self.stats.peak_open_sessions as u64,
        );
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Distinct flood victims.
    pub fn victims(&self) -> HashSet<Ipv4Addr> {
        self.quic_attacks.iter().map(|a| a.victim).collect()
    }

    /// The response observations attributable to one attack (victim +
    /// time window).
    pub fn attack_observations<'a>(&'a self, attack: &Attack) -> Vec<&'a QuicObservation> {
        self.responses
            .iter()
            .filter(|o| o.src == attack.victim && o.ts >= attack.start && o.ts <= attack.end)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_traffic::ScenarioConfig;
    use std::sync::OnceLock;

    /// The test scenario is expensive enough to share across tests.
    fn analysis() -> &'static (Scenario, Analysis) {
        static CELL: OnceLock<(Scenario, Analysis)> = OnceLock::new();
        CELL.get_or_init(|| {
            let scenario = Scenario::generate(&ScenarioConfig::test());
            let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
            (scenario, analysis)
        })
    }

    #[test]
    fn research_scanners_identified_exactly() {
        let (scenario, a) = analysis();
        let expected: HashSet<Ipv4Addr> = scenario
            .world
            .research_scanners()
            .iter()
            .map(|s| s.addr)
            .collect();
        assert_eq!(a.research_sources, expected);
        // All research packets (and only those) split off.
        assert_eq!(a.research_packets, scenario.truth.research_packets);
    }

    #[test]
    fn sanitized_directions_match_truth() {
        let (scenario, a) = analysis();
        // Garbage packets fail dissection, so sanitized counts equal
        // truth counts exactly.
        assert_eq!(a.requests.len() as u64, scenario.truth.request_packets);
        assert_eq!(a.responses.len() as u64, scenario.truth.response_packets);
        assert_eq!(
            a.ingest.quic_false_positives,
            scenario.truth.garbage_packets
        );
    }

    #[test]
    fn detected_attacks_match_planted_victims() {
        let (scenario, a) = analysis();
        assert!(!a.quic_attacks.is_empty());
        let planted: HashSet<Ipv4Addr> = scenario.truth.plan.victims.iter().copied().collect();
        for attack in &a.quic_attacks {
            assert!(
                planted.contains(&attack.victim),
                "detected victim {} was not planted",
                attack.victim
            );
        }
        // Detection recall: most planted attacks qualify.
        let detected = a.quic_attacks.len() as f64;
        let planted_count = scenario.truth.plan.quic.len() as f64;
        assert!(
            detected / planted_count > 0.6,
            "recall {detected}/{planted_count}"
        );
    }

    #[test]
    fn attack_windows_align_with_plan() {
        let (scenario, a) = analysis();
        // Every detected attack must be coverable by a planted window
        // (within the session timeout of slack).
        for attack in &a.quic_attacks {
            let matched = scenario.truth.plan.quic.iter().any(|p| {
                p.victim == attack.victim
                    && attack.start.as_secs() + 30 >= p.start_secs
                    && attack.end.as_secs() <= p.start_secs + p.duration_secs + 330
            });
            assert!(
                matched,
                "attack on {} at {} unmatched",
                attack.victim, attack.start
            );
        }
    }

    #[test]
    fn common_attacks_detected() {
        let (_, a) = analysis();
        assert!(!a.common_attacks.is_empty());
        assert!(!a.common_sessions.is_empty());
        // Durations of common floods exceed QUIC floods in the median
        // (Fig. 7 shape) — allow slack at the tiny test scale.
        let median = |attacks: &[Attack]| {
            let mut d: Vec<u64> = attacks.iter().map(|x| x.duration().as_secs()).collect();
            d.sort_unstable();
            d[d.len() / 2]
        };
        assert!(median(&a.common_attacks) > median(&a.quic_attacks));
    }

    #[test]
    fn multivector_report_covers_all_attacks() {
        let (_, a) = analysis();
        assert_eq!(a.multivector.attacks.len(), a.quic_attacks.len());
        let total: usize = a.multivector.class_counts.values().sum();
        assert_eq!(total, a.quic_attacks.len());
    }

    #[test]
    fn attack_observations_are_scoped() {
        let (_, a) = analysis();
        let attack = &a.quic_attacks[0];
        let obs = a.attack_observations(attack);
        assert!(!obs.is_empty());
        assert_eq!(obs.len() as u64, attack.packet_count);
        for o in obs {
            assert_eq!(o.src, attack.victim);
        }
    }

    #[test]
    fn thread_count_does_not_change_any_product() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let run_with = |threads: usize| {
            Analysis::run(
                &scenario,
                &AnalysisConfig {
                    threads,
                    ..AnalysisConfig::default()
                },
            )
        };
        let sequential = run_with(1);
        sequential
            .verify_metrics()
            .expect("sequential metrics reconcile");
        for threads in [2usize, 3, 8] {
            let parallel = run_with(threads);
            parallel
                .verify_metrics()
                .unwrap_or_else(|e| panic!("{threads}-thread metrics diverged: {e:?}"));
            assert_eq!(parallel.ingest, sequential.ingest, "{threads} threads");
            assert_eq!(parallel.research_sources, sequential.research_sources);
            assert_eq!(parallel.research_hourly, sequential.research_hourly);
            assert_eq!(parallel.request_hourly, sequential.request_hourly);
            assert_eq!(parallel.response_hourly, sequential.response_hourly);
            assert_eq!(parallel.research_packets, sequential.research_packets);
            assert_eq!(parallel.requests, sequential.requests);
            assert_eq!(parallel.responses, sequential.responses);
            assert_eq!(parallel.request_sessions, sequential.request_sessions);
            assert_eq!(parallel.response_sessions, sequential.response_sessions);
            assert_eq!(parallel.common_sessions, sequential.common_sessions);
            assert_eq!(parallel.quic_attacks, sequential.quic_attacks);
            assert_eq!(parallel.common_attacks, sequential.common_attacks);
            assert_eq!(
                parallel.multivector.class_counts,
                sequential.multivector.class_counts
            );
            assert_eq!(parallel.stats.threads, threads);
        }
    }

    #[test]
    fn event_repass_mirrors_sessions_and_ignores_thread_count() {
        use quicsand_events::{Event, VecSubscriber};
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let run = |threads: usize| {
            let mut events = VecSubscriber::new();
            let analysis = Analysis::run_with(
                &scenario,
                &AnalysisConfig {
                    threads,
                    ..AnalysisConfig::default()
                },
                &mut events,
            );
            (analysis, events)
        };
        let (sequential, events) = run(1);
        let closed = |channel: &str| {
            events
                .events
                .iter()
                .filter(|(_, e)| matches!(e, Event::SessionClosed(c) if c.channel == channel))
                .count()
        };
        assert_eq!(
            closed("quic"),
            sequential.response_sessions.len(),
            "one close event per detected response session"
        );
        assert_eq!(closed("tcp_icmp"), sequential.common_sessions.len());
        let rejected = events
            .events
            .iter()
            .filter(|(_, e)| matches!(e, Event::WireRejected(_)))
            .count() as u64;
        assert_eq!(rejected, sequential.ingest.quarantine.total());

        let (_, parallel_events) = run(4);
        assert_eq!(
            events, parallel_events,
            "the forensic re-pass is single-threaded by construction"
        );
    }

    #[test]
    fn pipeline_stats_are_populated() {
        let (_, a) = analysis();
        assert_eq!(a.stats.records, a.ingest.total);
        assert!(a.stats.peak_open_sessions > 0);
        assert!(a.stats.ingest_records_per_sec() > 0.0);
    }

    #[test]
    fn metrics_reconcile_and_export() {
        let (_, a) = analysis();
        a.verify_metrics().expect("metrics reconcile with products");
        // The registry renders both formats and the stable subset is
        // non-empty (counters mirror the ingest stats).
        let prom = a.registry.render_prometheus(true);
        assert!(prom.contains("quicsand_ingest_records_total"));
        let json = a.registry.render_json(false);
        assert!(json.contains("quicsand_detect_attacks_total"));
        assert_eq!(
            a.metrics.ingest.records_total.get(),
            a.ingest.total,
            "counter == stats field"
        );
    }

    #[test]
    fn no_retry_in_the_wild() {
        let (_, a) = analysis();
        assert!(a.responses.iter().all(|o| !o.dissected.has_retry()));
    }
}
