//! The end-to-end measurement pipeline (§4 + §5.1/§5.2 mechanics).
//!
//! [`Analysis::run`] executes, in order:
//!
//! 1. **Ingest** — port filter + dissection ([`quicsand_telescope`]).
//! 2. **Sanitize** — behavioural research-scanner detection corroborated
//!    with the AS database; research traffic is split off (Fig. 2).
//! 3. **Sessionize** — requests and responses separately, 5-minute
//!    timeout (Fig. 4 default).
//! 4. **Infer DoS** — Moore et al. thresholds on response sessions
//!    (QUIC) and on TCP/ICMP baseline sessions.
//! 5. **Correlate** — multi-vector classification of QUIC floods
//!    against common floods.
//!
//! Every intermediate product is a public field so experiments (and
//! downstream users) can compute whatever the paper did not.

use quicsand_dissect::Direction;
use quicsand_net::Duration;
use quicsand_sessions::dos::{detect_attacks, Attack, AttackProtocol, DosThresholds};
use quicsand_sessions::multivector::{classify_multivector, MultiVectorReport};
use quicsand_sessions::session::{Session, SessionConfig, Sessionizer};
use quicsand_telescope::{
    HourlySeries, IngestStats, QuicObservation, ResearchFilter, TelescopePipeline,
};
use quicsand_traffic::Scenario;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Pipeline parameters (the paper's §4.1 choices).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Sessionization timeout (paper: 5 minutes, the Fig. 4 knee).
    pub session_timeout: Duration,
    /// DoS thresholds (paper: Moore et al. defaults).
    pub thresholds: DosThresholds,
    /// Behavioural research-scanner detection: minimum request packets.
    pub research_min_packets: u64,
    /// Behavioural research-scanner detection: minimum unique targets.
    pub research_min_dsts: u64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            session_timeout: Duration::from_mins(5),
            thresholds: DosThresholds::moore(),
            research_min_packets: 500,
            research_min_dsts: 400,
        }
    }
}

/// All pipeline products.
#[derive(Debug)]
pub struct Analysis {
    /// Ingest counters.
    pub ingest: IngestStats,
    /// Identified research scanner sources.
    pub research_sources: HashSet<Ipv4Addr>,
    /// Hourly packet counts: research scanners (Fig. 2).
    pub research_hourly: HourlySeries,
    /// Hourly packet counts: sanitized requests (Fig. 3).
    pub request_hourly: HourlySeries,
    /// Hourly packet counts: sanitized responses (Fig. 3).
    pub response_hourly: HourlySeries,
    /// Research packet total (before sanitization).
    pub research_packets: u64,
    /// Sanitized request observations.
    pub requests: Vec<QuicObservation>,
    /// Sanitized response observations.
    pub responses: Vec<QuicObservation>,
    /// Request sessions.
    pub request_sessions: Vec<Session>,
    /// Response sessions.
    pub response_sessions: Vec<Session>,
    /// Detected QUIC floods.
    pub quic_attacks: Vec<Attack>,
    /// TCP/ICMP baseline sessions.
    pub common_sessions: Vec<Session>,
    /// Detected TCP/ICMP floods.
    pub common_attacks: Vec<Attack>,
    /// Multi-vector correlation.
    pub multivector: MultiVectorReport,
    /// The configuration used.
    pub config: AnalysisConfig,
}

impl Analysis {
    /// Runs the complete pipeline on a scenario.
    pub fn run(scenario: &Scenario, config: &AnalysisConfig) -> Analysis {
        // 1. Ingest.
        let mut pipeline = TelescopePipeline::new();
        pipeline.ingest_all(&scenario.records);
        let (observations, baseline, ingest) = pipeline.finish();

        // 2. Sanitize: behavioural detection corroborated by PeeringDB.
        let filter = ResearchFilter::detect_with_asdb(
            &observations,
            &scenario.world.asdb,
            config.research_min_packets,
            config.research_min_dsts,
        );
        let research_sources = filter.sources().clone();

        let mut research_hourly = HourlySeries::new();
        let mut request_hourly = HourlySeries::new();
        let mut response_hourly = HourlySeries::new();
        let mut research_packets = 0u64;
        let mut requests = Vec::new();
        let mut responses = Vec::new();
        for obs in observations {
            if filter.is_research(obs.src) {
                research_packets += 1;
                research_hourly.add(obs.ts);
                continue;
            }
            match obs.direction {
                Direction::Request => {
                    request_hourly.add(obs.ts);
                    requests.push(obs);
                }
                Direction::Response => {
                    response_hourly.add(obs.ts);
                    responses.push(obs);
                }
            }
        }

        // 3. Sessionize (observations are in capture order).
        let session_config = SessionConfig {
            timeout: config.session_timeout,
        };
        let mut request_sessionizer = Sessionizer::new(session_config);
        for obs in &requests {
            request_sessionizer.offer(obs.ts, obs.src);
        }
        let request_sessions = request_sessionizer.finish();

        let mut response_sessionizer = Sessionizer::new(session_config);
        for obs in &responses {
            response_sessionizer.offer(obs.ts, obs.src);
        }
        let response_sessions = response_sessionizer.finish();

        let mut common_sessionizer = Sessionizer::new(session_config);
        for record in &baseline {
            common_sessionizer.offer(record.ts, record.src);
        }
        let common_sessions = common_sessionizer.finish();

        // 4. DoS inference.
        let quic_attacks =
            detect_attacks(&response_sessions, AttackProtocol::Quic, &config.thresholds);
        let common_attacks = detect_attacks(
            &common_sessions,
            AttackProtocol::TcpIcmp,
            &config.thresholds,
        );

        // 5. Multi-vector correlation.
        let multivector = classify_multivector(&quic_attacks, &common_attacks);

        Analysis {
            ingest,
            research_sources,
            research_hourly,
            request_hourly,
            response_hourly,
            research_packets,
            requests,
            responses,
            request_sessions,
            response_sessions,
            quic_attacks,
            common_sessions,
            common_attacks,
            multivector,
            config: *config,
        }
    }

    /// Distinct flood victims.
    pub fn victims(&self) -> HashSet<Ipv4Addr> {
        self.quic_attacks.iter().map(|a| a.victim).collect()
    }

    /// The response observations attributable to one attack (victim +
    /// time window).
    pub fn attack_observations<'a>(&'a self, attack: &Attack) -> Vec<&'a QuicObservation> {
        self.responses
            .iter()
            .filter(|o| o.src == attack.victim && o.ts >= attack.start && o.ts <= attack.end)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicsand_traffic::ScenarioConfig;
    use std::sync::OnceLock;

    /// The test scenario is expensive enough to share across tests.
    fn analysis() -> &'static (Scenario, Analysis) {
        static CELL: OnceLock<(Scenario, Analysis)> = OnceLock::new();
        CELL.get_or_init(|| {
            let scenario = Scenario::generate(&ScenarioConfig::test());
            let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
            (scenario, analysis)
        })
    }

    #[test]
    fn research_scanners_identified_exactly() {
        let (scenario, a) = analysis();
        let expected: HashSet<Ipv4Addr> = scenario
            .world
            .research_scanners()
            .iter()
            .map(|s| s.addr)
            .collect();
        assert_eq!(a.research_sources, expected);
        // All research packets (and only those) split off.
        assert_eq!(a.research_packets, scenario.truth.research_packets);
    }

    #[test]
    fn sanitized_directions_match_truth() {
        let (scenario, a) = analysis();
        // Garbage packets fail dissection, so sanitized counts equal
        // truth counts exactly.
        assert_eq!(a.requests.len() as u64, scenario.truth.request_packets);
        assert_eq!(a.responses.len() as u64, scenario.truth.response_packets);
        assert_eq!(
            a.ingest.quic_false_positives,
            scenario.truth.garbage_packets
        );
    }

    #[test]
    fn detected_attacks_match_planted_victims() {
        let (scenario, a) = analysis();
        assert!(!a.quic_attacks.is_empty());
        let planted: HashSet<Ipv4Addr> = scenario.truth.plan.victims.iter().copied().collect();
        for attack in &a.quic_attacks {
            assert!(
                planted.contains(&attack.victim),
                "detected victim {} was not planted",
                attack.victim
            );
        }
        // Detection recall: most planted attacks qualify.
        let detected = a.quic_attacks.len() as f64;
        let planted_count = scenario.truth.plan.quic.len() as f64;
        assert!(
            detected / planted_count > 0.6,
            "recall {detected}/{planted_count}"
        );
    }

    #[test]
    fn attack_windows_align_with_plan() {
        let (scenario, a) = analysis();
        // Every detected attack must be coverable by a planted window
        // (within the session timeout of slack).
        for attack in &a.quic_attacks {
            let matched = scenario.truth.plan.quic.iter().any(|p| {
                p.victim == attack.victim
                    && attack.start.as_secs() + 30 >= p.start_secs
                    && attack.end.as_secs() <= p.start_secs + p.duration_secs + 330
            });
            assert!(
                matched,
                "attack on {} at {} unmatched",
                attack.victim, attack.start
            );
        }
    }

    #[test]
    fn common_attacks_detected() {
        let (_, a) = analysis();
        assert!(!a.common_attacks.is_empty());
        assert!(!a.common_sessions.is_empty());
        // Durations of common floods exceed QUIC floods in the median
        // (Fig. 7 shape) — allow slack at the tiny test scale.
        let median = |attacks: &[Attack]| {
            let mut d: Vec<u64> = attacks.iter().map(|x| x.duration().as_secs()).collect();
            d.sort_unstable();
            d[d.len() / 2]
        };
        assert!(median(&a.common_attacks) > median(&a.quic_attacks));
    }

    #[test]
    fn multivector_report_covers_all_attacks() {
        let (_, a) = analysis();
        assert_eq!(a.multivector.attacks.len(), a.quic_attacks.len());
        let total: usize = a.multivector.class_counts.values().sum();
        assert_eq!(total, a.quic_attacks.len());
    }

    #[test]
    fn attack_observations_are_scoped() {
        let (_, a) = analysis();
        let attack = &a.quic_attacks[0];
        let obs = a.attack_observations(attack);
        assert!(!obs.is_empty());
        assert_eq!(obs.len() as u64, attack.packet_count);
        for o in obs {
            assert_eq!(o.src, attack.victim);
        }
    }

    #[test]
    fn no_retry_in_the_wild() {
        let (_, a) = analysis();
        assert!(a.responses.iter().all(|o| !o.dissected.has_retry()));
    }
}
