//! Uniform experiment reports: tabular data plus paper-vs-measured
//! findings, rendered as text or JSON.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One paper-vs-measured comparison line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// What is compared (e.g. "median QUIC flood duration").
    pub metric: String,
    /// The paper's value, as printed in the paper.
    pub paper: String,
    /// Our measured value.
    pub measured: String,
}

/// A regenerated table/figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Artifact id (e.g. "fig07", "tab01").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers of the data table.
    pub columns: Vec<String>,
    /// Data rows (stringified — these are print artifacts).
    pub rows: Vec<Vec<String>>,
    /// Paper-vs-measured findings.
    pub findings: Vec<Finding>,
    /// Free-form notes (sub-sampling factors, deviations).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            columns: Vec::new(),
            rows: Vec::new(),
            findings: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn with_columns<I: IntoIterator<Item = S>, S: Into<String>>(mut self, cols: I) -> Self {
        self.columns = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row; panics if the width disagrees with the
    /// headers (a bug in the experiment, not in the data).
    pub fn push_row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(row);
    }

    /// Appends a finding.
    pub fn push_finding(&mut self, metric: &str, paper: &str, measured: &str) {
        self.findings.push(Finding {
            metric: metric.to_string(),
            paper: paper.to_string(),
            measured: measured.to_string(),
        });
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: &str) {
        self.notes.push(note.to_string());
    }

    /// Renders the report as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        if !self.columns.is_empty() {
            let widths: Vec<usize> = self
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    self.rows
                        .iter()
                        .map(|r| r[i].len())
                        .chain(std::iter::once(c.len()))
                        .max()
                        .unwrap_or(0)
                })
                .collect();
            let render_row = |cells: &[String], widths: &[usize]| {
                cells
                    .iter()
                    .zip(widths)
                    .map(|(c, w)| format!("{c:>w$}", w = w))
                    .collect::<Vec<_>>()
                    .join("  ")
            };
            let _ = writeln!(out, "{}", render_row(&self.columns, &widths));
            let _ = writeln!(
                out,
                "{}",
                widths
                    .iter()
                    .map(|w| "-".repeat(*w))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
            for row in &self.rows {
                let _ = writeln!(out, "{}", render_row(row, &widths));
            }
        }
        if !self.findings.is_empty() {
            let _ = writeln!(
                out,
                "\n  {:<44} {:>18} {:>18}",
                "metric", "paper", "measured"
            );
            for f in &self.findings {
                let _ = writeln!(out, "  {:<44} {:>18} {:>18}", f.metric, f.paper, f.measured);
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Serializes the report to JSON.
    ///
    /// # Errors
    /// Never in practice; propagates serde errors.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Renders the findings as Markdown table rows (for
    /// EXPERIMENTS.md).
    pub fn findings_markdown(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} |",
                self.id, f.metric, f.paper, f.measured
            );
        }
        out
    }
}

/// Formats a float with sensible precision for reports.
pub fn fmt_f64(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 100.0 {
        format!("{value:.0}")
    } else if value.abs() >= 1.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

/// Formats a share as a percentage.
pub fn fmt_percent(share: f64) -> String {
    format!("{:.1}%", share * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("fig99", "Sample").with_columns(["x", "count"]);
        r.push_row(["1", "100"]);
        r.push_row(["2", "50"]);
        r.push_finding("median", "255 s", "261 s");
        r.push_note("sub-sampled by 84x");
        r
    }

    #[test]
    fn render_contains_everything() {
        let text = sample().render();
        assert!(text.contains("fig99"));
        assert!(text.contains("count"));
        assert!(text.contains("100"));
        assert!(text.contains("median"));
        assert!(text.contains("255 s"));
        assert!(text.contains("sub-sampled"));
    }

    #[test]
    fn columns_are_aligned() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        // Header and separator have the same width.
        assert_eq!(lines[1].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut r = Report::new("x", "y").with_columns(["a", "b"]);
        r.push_row(["only one"]);
    }

    #[test]
    fn json_roundtrip() {
        let r = sample();
        let json = r.to_json().unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn markdown_findings() {
        let md = sample().findings_markdown();
        assert!(md.contains("| fig99 | median | 255 s | 261 s |"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.123456), "0.123");
        assert_eq!(fmt_f64(42.25), "42.2");
        assert_eq!(fmt_f64(1234.7), "1235");
        assert_eq!(fmt_percent(0.515), "51.5%");
    }
}
