//! # quicsand-core
//!
//! The QUICsand public API: everything needed to reproduce the paper
//! end-to-end.
//!
//! ```no_run
//! use quicsand_core::{Analysis, AnalysisConfig};
//! use quicsand_traffic::{Scenario, ScenarioConfig};
//!
//! // 1. Generate (or load) a telescope capture.
//! let scenario = Scenario::generate(&ScenarioConfig::test());
//! // 2. Run the paper's measurement pipeline on it.
//! let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
//! // 3. Regenerate any table or figure.
//! let report = quicsand_core::experiments::fig07::run(&analysis);
//! println!("{}", report.render());
//! ```
//!
//! Modules:
//!
//! * [`analysis`] — the §4/§5 pipeline: ingest → sanitize → sessionize
//!   → DoS inference → multi-vector correlation, all products exposed.
//! * [`experiments`] — one runner per paper artifact (Figs. 2–13,
//!   Table 1, the §6 message-mix analysis), each returning a
//!   [`report::Report`].
//! * [`report`] — the uniform report structure with text and JSON
//!   rendering, including paper-vs-measured findings.
//! * [`plot`] — dependency-free SVG rendering for the figure builders
//!   in [`experiments::figures`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod experiments;
pub mod metrics;
pub mod plot;
pub mod report;

pub use analysis::{default_threads, Analysis, AnalysisConfig, PipelineStats};
pub use metrics::AnalysisMetrics;
pub use report::{Finding, Report};
