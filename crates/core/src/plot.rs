//! Minimal dependency-free SVG plotting.
//!
//! Renders the line/step/bar charts behind the paper's figures without
//! pulling a plotting stack into the dependency tree. The output is
//! plain SVG 1.1: axes, ticks, optional log scales, legends, and one of
//! three mark types per plot.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One plotted series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (x, y).
    pub points: Vec<(f64, f64)>,
}

/// Mark type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlotKind {
    /// Connected line (time series).
    Line,
    /// Staircase (CDFs).
    Step,
    /// Vertical bars, one group per x (categorical shares).
    Bar,
}

/// A complete plot description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlotSpec {
    /// Title rendered above the axes.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Mark type.
    pub kind: PlotKind,
    /// The series (non-empty for a meaningful plot).
    pub series: Vec<Series>,
    /// Log-scale the x axis (requires positive x).
    pub log_x: bool,
    /// Categorical x tick labels for bar plots (one per x position).
    pub x_categories: Vec<String>,
}

impl PlotSpec {
    /// Creates a line plot.
    pub fn line(title: &str, x_label: &str, y_label: &str) -> Self {
        Self::new(title, x_label, y_label, PlotKind::Line)
    }

    /// Creates a CDF step plot.
    pub fn step(title: &str, x_label: &str, y_label: &str) -> Self {
        Self::new(title, x_label, y_label, PlotKind::Step)
    }

    /// Creates a bar plot.
    pub fn bar(title: &str, x_label: &str, y_label: &str) -> Self {
        Self::new(title, x_label, y_label, PlotKind::Bar)
    }

    fn new(title: &str, x_label: &str, y_label: &str, kind: PlotKind) -> Self {
        PlotSpec {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            kind,
            series: Vec::new(),
            log_x: false,
            x_categories: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn with_series(mut self, label: &str, points: Vec<(f64, f64)>) -> Self {
        self.series.push(Series {
            label: label.to_string(),
            points,
        });
        self
    }

    /// Enables a log-scaled x axis.
    pub fn with_log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Sets categorical x labels (bar plots).
    pub fn with_categories<I: IntoIterator<Item = S>, S: Into<String>>(mut self, cats: I) -> Self {
        self.x_categories = cats.into_iter().map(Into::into).collect();
        self
    }
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 400.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 20.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 55.0;

/// A small colour-blind-safe palette.
const PALETTE: [&str; 6] = [
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9",
];

/// Renders the plot to an SVG document.
///
/// Plots with no finite data still render (axes + title), so harness
/// code never has to special-case empty analyses.
pub fn render_svg(spec: &PlotSpec) -> String {
    let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;

    let xform = |x: f64| {
        if spec.log_x {
            x.max(f64::MIN_POSITIVE).log10()
        } else {
            x
        }
    };
    let finite_points: Vec<(f64, f64)> = spec
        .series
        .iter()
        .flat_map(|s| s.points.iter())
        .map(|&(x, y)| (xform(x), y))
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();

    let (mut x_min, mut x_max) = bounds(finite_points.iter().map(|p| p.0));
    let (y_min_raw, mut y_max) = bounds(finite_points.iter().map(|p| p.1));
    let mut y_min = y_min_raw.min(0.0);
    if x_min == x_max {
        x_min -= 0.5;
        x_max += 0.5;
    }
    if y_min == y_max {
        y_max = y_min + 1.0;
    }
    if spec.kind == PlotKind::Bar {
        y_min = 0.0;
        x_min -= 0.5;
        x_max += 0.5;
    }

    let sx = move |x: f64| MARGIN_LEFT + (xform(x) - x_min) / (x_max - x_min) * plot_w;
    let sy = move |y: f64| MARGIN_TOP + plot_h - (y - y_min) / (y_max - y_min) * plot_h;

    let mut svg = String::with_capacity(8_192);
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="14" font-weight="bold">{}</text>"#,
        WIDTH / 2.0,
        escape(&spec.title)
    );

    // Axes.
    let x0 = MARGIN_LEFT;
    let y0 = MARGIN_TOP + plot_h;
    let _ = write!(
        svg,
        r#"<line x1="{x0}" y1="{y0}" x2="{}" y2="{y0}" stroke="black"/>"#,
        MARGIN_LEFT + plot_w
    );
    let _ = write!(
        svg,
        r#"<line x1="{x0}" y1="{}" x2="{x0}" y2="{y0}" stroke="black"/>"#,
        MARGIN_TOP
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        MARGIN_LEFT + plot_w / 2.0,
        HEIGHT - 12.0,
        escape(&spec.x_label)
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0,
        escape(&spec.y_label)
    );

    // Ticks.
    if spec.kind == PlotKind::Bar && !spec.x_categories.is_empty() {
        for (i, cat) in spec.x_categories.iter().enumerate() {
            let x = sx(i as f64);
            let _ = write!(
                svg,
                r#"<text x="{x}" y="{}" text-anchor="middle">{}</text>"#,
                y0 + 18.0,
                escape(cat)
            );
        }
    } else {
        for i in 0..=5 {
            let fx = x_min + (x_max - x_min) * f64::from(i) / 5.0;
            let label = if spec.log_x {
                format_tick(10f64.powf(fx))
            } else {
                format_tick(fx)
            };
            let x = MARGIN_LEFT + plot_w * f64::from(i) / 5.0;
            let _ = write!(
                svg,
                r#"<line x1="{x}" y1="{y0}" x2="{x}" y2="{}" stroke="black"/><text x="{x}" y="{}" text-anchor="middle">{label}</text>"#,
                y0 + 4.0,
                y0 + 18.0
            );
        }
    }
    for i in 0..=5 {
        let fy = y_min + (y_max - y_min) * f64::from(i) / 5.0;
        let y = MARGIN_TOP + plot_h - plot_h * f64::from(i) / 5.0;
        let _ = write!(
            svg,
            r#"<line x1="{}" y1="{y}" x2="{x0}" y2="{y}" stroke="black"/><text x="{}" y="{}" text-anchor="end">{}</text>"#,
            x0 - 4.0,
            x0 - 8.0,
            y + 4.0,
            format_tick(fy)
        );
    }

    // Marks.
    for (si, series) in spec.series.iter().enumerate() {
        let color = PALETTE[si % PALETTE.len()];
        match spec.kind {
            PlotKind::Line | PlotKind::Step => {
                let mut d = String::new();
                let mut last_y: Option<f64> = None;
                for (i, &(x, y)) in series.points.iter().enumerate() {
                    if !xform(x).is_finite() || !y.is_finite() {
                        continue;
                    }
                    let (px, py) = (sx(x), sy(y));
                    if i == 0 || last_y.is_none() {
                        let _ = write!(d, "M{px:.1},{py:.1}");
                    } else if spec.kind == PlotKind::Step {
                        let _ = write!(d, "H{px:.1}V{py:.1}");
                    } else {
                        let _ = write!(d, "L{px:.1},{py:.1}");
                    }
                    last_y = Some(py);
                }
                let _ = write!(
                    svg,
                    r#"<path d="{d}" fill="none" stroke="{color}" stroke-width="1.8"/>"#
                );
            }
            PlotKind::Bar => {
                let groups = spec.series.len() as f64;
                let slot = plot_w / ((x_max - x_min).max(1.0)).max(1.0);
                let bar_w = (slot * 0.8 / groups).max(2.0);
                for &(x, y) in &series.points {
                    let cx = sx(x) - slot * 0.4 + bar_w * si as f64;
                    let top = sy(y);
                    let _ = write!(
                        svg,
                        r#"<rect x="{cx:.1}" y="{top:.1}" width="{bar_w:.1}" height="{:.1}" fill="{color}"/>"#,
                        (y0 - top).max(0.0)
                    );
                }
            }
        }
    }

    // Legend.
    if spec.series.len() > 1 || spec.series.first().is_some_and(|s| !s.label.is_empty()) {
        for (si, series) in spec.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            let ly = MARGIN_TOP + 14.0 * si as f64;
            let _ = write!(
                svg,
                r#"<rect x="{}" y="{}" width="10" height="10" fill="{color}"/><text x="{}" y="{}">{}</text>"#,
                MARGIN_LEFT + plot_w - 130.0,
                ly,
                MARGIN_LEFT + plot_w - 115.0,
                ly + 9.0,
                escape(&series.label)
            );
        }
    }

    svg.push_str("</svg>");
    svg
}

fn bounds<I: Iterator<Item = f64>>(values: I) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() || !max.is_finite() {
        (0.0, 1.0)
    } else {
        (min, max)
    }
}

fn format_tick(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 1_000_000.0 {
        format!("{:.1}M", value / 1_000_000.0)
    } else if value.abs() >= 10_000.0 {
        format!("{:.0}k", value / 1_000.0)
    } else if value.abs() >= 10.0 {
        format!("{value:.0}")
    } else if value.abs() >= 0.01 {
        format!("{value:.2}")
    } else {
        format!("{value:.0e}")
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PlotSpec {
        PlotSpec::line("Test <plot>", "time [s]", "count")
            .with_series("a", vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)])
            .with_series("b", vec![(0.0, 0.5), (2.0, 4.0)])
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render_svg(&spec());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2, "one path per series");
        assert!(svg.contains("Test &lt;plot&gt;"), "title escaped");
        assert!(svg.contains("time [s]"));
    }

    #[test]
    fn step_plot_uses_staircase_commands() {
        let svg = render_svg(
            &PlotSpec::step("cdf", "x", "F(x)")
                .with_series("", vec![(1.0, 0.25), (2.0, 0.5), (4.0, 1.0)]),
        );
        assert!(svg.contains('H'), "step paths use horizontal segments");
        assert!(svg.contains('V'));
    }

    #[test]
    fn bar_plot_renders_rects_per_point() {
        let svg = render_svg(
            &PlotSpec::bar("shares", "class", "share")
                .with_categories(["a", "b", "c"])
                .with_series("x", vec![(0.0, 0.5), (1.0, 0.4), (2.0, 0.1)]),
        );
        // 3 bars + the background rect.
        assert_eq!(svg.matches("<rect").count(), 3 + 1 + 1 /* legend */);
        assert!(svg.contains(">a</text>"));
    }

    #[test]
    fn empty_plot_still_renders() {
        let svg = render_svg(&PlotSpec::line("empty", "x", "y"));
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("empty"));
    }

    #[test]
    fn log_x_transforms_ticks() {
        let svg = render_svg(
            &PlotSpec::step("cdf", "gap", "F")
                .with_log_x()
                .with_series("", vec![(1.0, 0.1), (10.0, 0.5), (1000.0, 1.0)]),
        );
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn nan_points_are_skipped_not_propagated() {
        let svg = render_svg(
            &PlotSpec::line("nan", "x", "y")
                .with_series("s", vec![(0.0, 1.0), (f64::NAN, 2.0), (2.0, 3.0)]),
        );
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(1_500_000.0), "1.5M");
        assert_eq!(format_tick(25_000.0), "25k");
        assert_eq!(format_tick(42.4), "42");
        assert_eq!(format_tick(0.25), "0.25");
    }
}
