//! §6 extension — adaptive RETRY deployment.
//!
//! The paper closes with: "RETRYs could be deployed adaptively and only
//! used when high load occurs." This experiment quantifies that
//! proposal on the Table 1 testbed: three policies (off, always,
//! adaptive) are swept across flood rates; for each cell we measure
//! flood-facing availability *and* the round trips a legitimate client
//! pays — adaptive deployments should match RETRY's resilience while
//! charging zero extra RTTs at benign load.

use crate::report::Report;
use quicsand_net::{Duration, Timestamp};
use quicsand_server::client::{run_handshake, QuicClient};
use quicsand_server::model::{QuicServerSim, RetryPolicy, ServerConfig};
use quicsand_server::replay::InitialStream;
use std::net::Ipv4Addr;

/// Outcome of one (policy, rate) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Flood rate in pps (0 = benign load only).
    pub pps: u64,
    /// Policy label.
    pub policy: &'static str,
    /// Share of flood Initials answered (accepted or retried).
    pub availability: f64,
    /// Whether the mid-flood legitimate client completed.
    pub client_served: bool,
    /// Round trips the legitimate client paid.
    pub client_rtts: u32,
}

/// Runs one cell: flood for `secs` seconds, then connect a legitimate
/// client.
pub fn run_cell(policy: RetryPolicy, pps: u64, secs: u64, seed: u64) -> Cell {
    let mut server = QuicServerSim::new(
        ServerConfig {
            workers: 4,
            retry_policy: policy,
            ..ServerConfig::default()
        },
        seed,
    );
    let mut now = Timestamp::EPOCH;
    if let Some(per_packet) = 1_000_000u64.checked_div(pps) {
        let interval = Duration::from_micros(per_packet);
        let mut stream = InitialStream::new(seed ^ 0xADA9);
        for _ in 0..pps * secs {
            let p = stream.next().expect("infinite");
            server.handle_datagram(now, p.src_ip, p.src_port, &p.datagram);
            now += interval;
        }
    } else {
        now = Timestamp::from_secs(secs);
    }
    let stats = server.stats().clone();
    let received = stats.received.max(1);
    let availability = (stats.accepted + stats.retries_sent) as f64 / received as f64;

    let mut client = QuicClient::new(seed ^ 0xC11);
    run_handshake(
        &mut server,
        &mut client,
        Ipv4Addr::new(198, 51, 100, 9),
        40_001,
        now,
    );
    Cell {
        pps,
        policy: policy_label(policy),
        availability: if pps == 0 { 1.0 } else { availability },
        client_served: client.is_established(),
        client_rtts: client.round_trips(),
    }
}

fn policy_label(policy: RetryPolicy) -> &'static str {
    match policy {
        RetryPolicy::Off => "off",
        RetryPolicy::Always => "always",
        RetryPolicy::Adaptive { .. } => "adaptive",
    }
}

/// The policy set under test.
pub fn policies() -> [RetryPolicy; 3] {
    [
        RetryPolicy::Off,
        RetryPolicy::Always,
        RetryPolicy::Adaptive {
            occupancy_threshold: 0.5,
        },
    ]
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut report = Report::new(
        "adaptive_retry",
        "Adaptive RETRY deployment: availability and legitimate-client RTTs (§6 proposal)",
    )
    .with_columns([
        "flood pps",
        "policy",
        "flood answered",
        "legit client",
        "RTTs",
    ]);

    let mut adaptive_benign_rtts = 0;
    let mut adaptive_flood_served = true;
    let mut always_benign_rtts = 0;
    let mut off_flood_served = true;
    for pps in [0u64, 1_000, 5_000] {
        for policy in policies() {
            let cell = run_cell(policy, pps, 60, 0x5eed ^ pps);
            report.push_row([
                pps.to_string(),
                cell.policy.to_string(),
                format!("{:.0}%", cell.availability * 100.0),
                if cell.client_served {
                    "served"
                } else {
                    "STARVED"
                }
                .to_string(),
                cell.client_rtts.to_string(),
            ]);
            match (pps, cell.policy) {
                (0, "adaptive") => adaptive_benign_rtts = cell.client_rtts,
                (0, "always") => always_benign_rtts = cell.client_rtts,
                (5_000, "adaptive") => adaptive_flood_served = cell.client_served,
                (5_000, "off") => off_flood_served = cell.client_served,
                _ => {}
            }
        }
    }

    report.push_finding(
        "benign-load RTTs: adaptive vs always-on",
        "1 vs 2 (no penalty when idle)",
        &format!("{adaptive_benign_rtts} vs {always_benign_rtts}"),
    );
    report.push_finding(
        "legit client under 5k pps flood: adaptive vs off",
        "served vs starved",
        &format!(
            "{} vs {}",
            if adaptive_flood_served {
                "served"
            } else {
                "STARVED"
            },
            if off_flood_served {
                "served"
            } else {
                "STARVED"
            }
        ),
    );
    report.push_note(
        "extension experiment: implements the paper's closing suggestion that \
         RETRY be armed only under load",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_combines_both_benefits() {
        // Benign load: adaptive charges no extra RTT, always-on does.
        let benign_adaptive = run_cell(policies()[2], 0, 10, 1);
        let benign_always = run_cell(RetryPolicy::Always, 0, 10, 1);
        assert!(benign_adaptive.client_served && benign_always.client_served);
        assert_eq!(benign_adaptive.client_rtts, 1);
        assert_eq!(benign_always.client_rtts, 2);

        // Under flood: adaptive serves the client, off starves it.
        let flood_adaptive = run_cell(policies()[2], 2_000, 30, 2);
        let flood_off = run_cell(RetryPolicy::Off, 2_000, 30, 2);
        assert!(flood_adaptive.client_served, "adaptive must survive floods");
        assert!(!flood_off.client_served, "off must starve");
        assert_eq!(flood_adaptive.client_rtts, 2, "retry armed under load");
    }
}
