//! §3 — why QUIC reflective amplification is unlikely.
//!
//! The paper argues QUIC is a poor reflector: servers may send at most
//! 3× the bytes of an unverified client's request (RFC 9000 §8.1), the
//! client must pad its Initial to ≥1200 bytes (§14.1), and protocols
//! with far higher factors exist (NTP ~500×, DNS ~60×, Rossow 2014).
//! This experiment *measures* the amplification factor of our actual
//! server implementation from wire bytes, rather than asserting it.

use crate::report::{fmt_f64, Report};
use quicsand_net::Timestamp;
use quicsand_server::model::{QuicServerSim, ServerConfig};
use quicsand_server::replay::InitialStream;
use std::net::Ipv4Addr;

/// Reference amplification factors from Rossow, "Amplification Hell"
/// (NDSS 2014), as cited by the paper.
pub const NTP_FACTOR: f64 = 500.0;
/// DNS amplification factor from the same source.
pub const DNS_FACTOR: f64 = 60.0;

/// Measures the byte amplification of one server flight.
fn measure_amplification(seed: u64, samples: usize) -> (f64, f64) {
    let mut server = QuicServerSim::new(
        ServerConfig {
            workers: 16,
            ..ServerConfig::default()
        },
        seed,
    );
    let mut total_in = 0usize;
    let mut total_out = 0usize;
    let mut max_factor = 0.0f64;
    for (i, probe) in InitialStream::new(seed).take(samples).enumerate() {
        let responses = server.handle_datagram(
            Timestamp::from_secs(1 + i as u64),
            probe.src_ip,
            probe.src_port,
            &probe.datagram,
        );
        let out: usize = responses.iter().map(|r| r.payload.len()).sum();
        total_in += probe.datagram.len();
        total_out += out;
        max_factor = max_factor.max(out as f64 / probe.datagram.len() as f64);
    }
    (total_out as f64 / total_in as f64, max_factor)
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut report = Report::new(
        "sec3_amplification",
        "Reflective amplification factors: QUIC vs classic UDP amplifiers (§3)",
    )
    .with_columns(["reflector", "amplification factor", "notes"]);

    let (mean_factor, max_factor) = measure_amplification(0xA17, 400);
    report.push_row([
        "QUIC Initial (server flight / padded probe)".to_string(),
        format!("{}x", fmt_f64(mean_factor)),
        "measured from wire bytes".to_string(),
    ]);
    report.push_row([
        "QUIC worst observed".to_string(),
        format!("{}x", fmt_f64(max_factor)),
        "hard-capped at 3x by RFC 9000 §8.1".to_string(),
    ]);
    report.push_row([
        "DNS (open resolver, ANY)".to_string(),
        format!("{DNS_FACTOR}x"),
        "Rossow 2014, cited in §3".to_string(),
    ]);
    report.push_row([
        "NTP (monlist)".to_string(),
        format!("{NTP_FACTOR}x"),
        "Rossow 2014, cited in §3".to_string(),
    ]);

    report.push_finding(
        "QUIC amplification bound",
        "3x (RFC 9000)",
        &format!("{}x measured max", fmt_f64(max_factor)),
    );
    report.push_finding(
        "NTP advantage over QUIC",
        "~167x more attractive",
        &format!("{}x", fmt_f64(NTP_FACTOR / max_factor.max(1e-9))),
    );

    // The §14.1 guard: unpadded probes are discarded outright.
    let mut server = QuicServerSim::new(ServerConfig::default(), 0xA18);
    let bare = quicsand_server::replay::record_corpus(1, 0xA19)
        .pop()
        .expect("one probe");
    // Truncating below 1200 simulates an unpadded probe; the parse
    // fails or the padding check rejects it — either way, no bytes out.
    let out = server.handle_datagram(
        Timestamp::from_secs(1),
        Ipv4Addr::new(10, 0, 0, 1),
        5000,
        &bare.datagram[..600],
    );
    report.push_finding(
        "response to sub-1200-byte probes",
        "none (padding enforced)",
        &format!(
            "{} bytes",
            out.iter().map(|r| r.payload.len()).sum::<usize>()
        ),
    );
    report.push_note(
        "attackers reuse existing NTP/DNS infrastructure with 20-170x better \
         yield, which is why the paper (and this reproduction) focuses on \
         state-exhaustion floods instead",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quic_amplification_is_bounded_and_unattractive() {
        let report = run();
        let measured_max: f64 = report.findings[0]
            .measured
            .split('x')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(measured_max <= 3.0, "3x cap violated: {measured_max}");
        assert!(measured_max > 0.5, "flight should not be trivial");
        // Unpadded probes elicit nothing.
        assert_eq!(report.findings[2].measured, "0 bytes");
    }
}
