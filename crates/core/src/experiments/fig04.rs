//! Fig. 4 — influence of the session timeout on the number of sessions.
//!
//! The paper sweeps 1–60 minutes, observes a significant reduction up
//! to ~5 minutes and picks that knee; the `timeout = ∞` floor is one
//! session per source.

use crate::analysis::Analysis;
use crate::report::Report;
use quicsand_net::{Duration, Timestamp};
use quicsand_sessions::session::timeout_sweep;
use std::net::Ipv4Addr;

/// Runs the experiment.
pub fn run(analysis: &Analysis) -> Report {
    let mut report = Report::new(
        "fig04",
        "Number of sessions vs session timeout (sanitized QUIC traffic)",
    )
    .with_columns(["timeout_min", "sessions"]);

    // Merge requests and responses into one time-ordered stream, as the
    // paper sessionizes the whole sanitized trace.
    let mut stream: Vec<(Timestamp, Ipv4Addr)> = analysis
        .requests
        .iter()
        .chain(analysis.responses.iter())
        .map(|o| (o.ts, o.src))
        .collect();
    stream.sort_unstable_by_key(|(ts, _)| *ts);

    let timeouts: Vec<Duration> = (1..=60).map(Duration::from_mins).collect();
    let sweep = timeout_sweep(stream, &timeouts);
    for (timeout, count) in &sweep.counts {
        report.push_row([(timeout.as_secs() / 60).to_string(), count.to_string()]);
    }

    // 2 % per-minute marginal reduction: the "significant reduction"
    // criterion the paper applies visually.
    let knee = sweep.knee(0.02);
    report.push_finding(
        "knee point (selected timeout)",
        "~5 minutes",
        &knee.map_or("none".to_string(), |k| {
            format!("{} minutes", k.as_secs() / 60)
        }),
    );
    report.push_finding(
        "sessions at timeout = infinity (floor)",
        "(lower bound)",
        &sweep.infinity_floor.to_string(),
    );
    let first = sweep.counts.first().map_or(0, |(_, c)| *c);
    let at_five = sweep
        .counts
        .iter()
        .find(|(t, _)| t.as_secs() == 300)
        .map_or(0, |(_, c)| *c);
    report.push_finding(
        "session reduction from 1 min to 5 min",
        "significant",
        &format!("{first} -> {at_five}"),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use quicsand_traffic::{Scenario, ScenarioConfig};

    #[test]
    fn sweep_decreases_and_knee_is_early() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&analysis);
        assert_eq!(report.rows.len(), 60);
        let counts: Vec<u64> = report.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "session counts must be non-increasing");
        }
        // The knee must sit in the single-digit minutes like the paper.
        let knee: u64 = report.findings[0]
            .measured
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((1..=10).contains(&knee), "knee at {knee} minutes");
    }
}
