//! Fig. 11 (Appendix C) — attacks towards a single victim: one
//! concurrent multi-vector event followed by sequential QUIC floods.

use crate::analysis::Analysis;
use crate::report::Report;
use quicsand_sessions::multivector::{victim_timeline, MultiVectorClass};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Picks the victim whose timeline best illustrates the paper's figure:
/// the Fig. 11 snapshot shows one concurrent multi-vector event
/// followed by five sequential QUIC floods, so prefer a victim with
/// both classes and a QUIC flood count as close to six as possible.
pub fn pick_showcase_victim(analysis: &Analysis) -> Option<Ipv4Addr> {
    let mut counts: HashMap<Ipv4Addr, (usize, bool, bool)> = HashMap::new();
    for corr in &analysis.multivector.attacks {
        let attack = &analysis.quic_attacks[corr.quic_index];
        let entry = counts.entry(attack.victim).or_default();
        entry.0 += 1;
        match corr.class {
            MultiVectorClass::Concurrent => entry.1 = true,
            MultiVectorClass::Sequential => entry.2 = true,
            MultiVectorClass::Isolated => {}
        }
    }
    let distance_to_six = |n: usize| (n as i64 - 6).unsigned_abs();
    counts
        .iter()
        .filter(|(_, (_, c, s))| *c && *s)
        .min_by_key(|(v, (n, _, _))| (distance_to_six(*n), u32::from(**v)))
        .or_else(|| {
            counts
                .iter()
                .min_by_key(|(v, (n, _, _))| (distance_to_six(*n), u32::from(**v)))
        })
        .map(|(v, _)| *v)
}

/// Runs the experiment.
pub fn run(analysis: &Analysis) -> Report {
    let mut report = Report::new(
        "fig11",
        "Attack timeline towards a single victim (concurrent + sequential floods)",
    )
    .with_columns(["protocol", "start [s]", "end [s]"]);

    let Some(victim) = pick_showcase_victim(analysis) else {
        report.push_note("no victims detected at this scale");
        return report;
    };
    let timeline = victim_timeline(victim, &analysis.quic_attacks, &analysis.common_attacks);
    for (protocol, start, end) in &timeline.rows {
        report.push_row([protocol.clone(), start.to_string(), end.to_string()]);
    }

    let quic_count = timeline.rows.iter().filter(|(p, _, _)| p == "QUIC").count();
    let common_count = timeline.rows.len() - quic_count;
    report.push_finding("showcase victim", "(anonymized)", &victim.to_string());
    report.push_finding(
        "QUIC floods on this victim",
        "6 (1 concurrent + 5 sequential)",
        &quic_count.to_string(),
    );
    report.push_finding(
        "TCP/ICMP floods on this victim",
        "1",
        &common_count.to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use quicsand_traffic::{Scenario, ScenarioConfig};

    #[test]
    fn showcase_timeline_mixes_protocols() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&analysis);
        assert!(!report.rows.is_empty());
        let quic: usize = report.findings[1].measured.parse().unwrap();
        let common: usize = report.findings[2].measured.parse().unwrap();
        assert!(quic >= 1);
        assert!(common >= 1, "showcase victim must also see common floods");
        // Rows sorted by start.
        let starts: Vec<u64> = report.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }
}
