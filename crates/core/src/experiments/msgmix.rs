//! §6 — validity of the attack patterns: message-type mix of DoS
//! backscatter and the absence of RETRY.
//!
//! The paper: DoS-suspect QUIC events consist of ~31 % Initial and
//! ~57 % Handshake messages; the Initials carry no unencrypted Client
//! Hello (they are encrypted Server Hello replies); not a single RETRY
//! was captured.

use crate::analysis::Analysis;
use crate::report::{fmt_percent, Report};
use quicsand_dissect::{MessageKind, MessageMixStats};

/// Runs the experiment.
pub fn run(analysis: &Analysis) -> Report {
    let mut report = Report::new(
        "msgmix",
        "Message-type mix of DoS backscatter and RETRY deployment (§6)",
    )
    .with_columns(["message type", "count", "share"]);

    // Restrict to packets belonging to detected attacks, as §6 does
    // ("Captured QUIC events that are suspect to DoS").
    let mut stats = MessageMixStats::new();
    for attack in &analysis.quic_attacks {
        for obs in analysis.attack_observations(attack) {
            stats.add(&obs.dissected);
        }
    }

    for kind in [
        MessageKind::Initial,
        MessageKind::Handshake,
        MessageKind::OneRtt,
        MessageKind::ZeroRtt,
        MessageKind::Retry,
        MessageKind::VersionNegotiation,
    ] {
        report.push_row([
            kind.label().to_string(),
            stats.count(kind).to_string(),
            fmt_percent(stats.share(kind)),
        ]);
    }

    report.push_finding(
        "Initial share of DoS backscatter",
        "31%",
        &fmt_percent(stats.share(MessageKind::Initial)),
    );
    report.push_finding(
        "Handshake share of DoS backscatter",
        "57%",
        &fmt_percent(stats.share(MessageKind::Handshake)),
    );
    report.push_finding(
        "Initials carrying an unencrypted Client Hello",
        "none (encrypted Server Hello replies)",
        &stats.initials_with_client_hello.to_string(),
    );
    report.push_finding(
        "RETRY messages captured",
        "0 (defence not deployed)",
        &stats.count(MessageKind::Retry).to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use quicsand_traffic::{Scenario, ScenarioConfig};

    #[test]
    fn mix_matches_paper_shape() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&analysis);
        let pct = |i: usize| -> f64 {
            report.findings[i]
                .measured
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        let initial = pct(0);
        let handshake = pct(1);
        assert!((22.0..=40.0).contains(&initial), "initial {initial}%");
        assert!((48.0..=72.0).contains(&handshake), "handshake {handshake}%");
        assert!(handshake > initial * 1.5, "handshake ≈ 2x initial");
        assert_eq!(report.findings[2].measured, "0", "no visible client hellos");
        assert_eq!(report.findings[3].measured, "0", "no RETRY in the wild");
    }
}
