//! Fig. 9 — per-provider attack properties: packets, spoofed client
//! IPs, client ports, server SCIDs.
//!
//! The paper: >83 % of attacks target Google (58 %) and Facebook
//! (25 %); spoofed client addresses are few, port randomization drives
//! SCID allocation; Google reacts with more SCIDs despite fewer packets
//! (higher per-packet state load); versions are mvfst-draft-27 (95 %)
//! for Facebook and draft-29 (78 %) for Google.

use crate::analysis::Analysis;
use crate::report::{fmt_f64, fmt_percent, Report};
use quicsand_dissect::stats::VictimResourceStats;
use quicsand_intel::Provider;
use quicsand_sessions::dos::Attack;
use quicsand_traffic::Scenario;
use quicsand_wire::Version;
use std::collections::HashMap;

/// Per-attack resource measurements, tagged by provider.
#[derive(Debug)]
pub struct AttackResources {
    /// The provider of the victim.
    pub provider: Provider,
    /// Backscatter packets.
    pub packets: u64,
    /// Unique spoofed client addresses.
    pub client_ips: usize,
    /// Unique client ports.
    pub client_ports: usize,
    /// Unique server SCIDs (allocated contexts).
    pub scids: usize,
    /// The dominant QUIC version observed.
    pub version: Option<u32>,
}

/// Computes per-attack resources for all detected QUIC attacks.
pub fn attack_resources(scenario: &Scenario, analysis: &Analysis) -> Vec<AttackResources> {
    analysis
        .quic_attacks
        .iter()
        .map(|attack: &Attack| {
            let mut stats = VictimResourceStats::default();
            let mut version_counts: HashMap<u32, u64> = HashMap::new();
            for obs in analysis.attack_observations(attack) {
                stats.add(&obs.dissected, obs.dst, obs.dst_port);
                if let Some(v) = obs.dissected.version() {
                    *version_counts.entry(v).or_default() += 1;
                }
            }
            let provider = scenario
                .world
                .servers
                .provider(attack.victim)
                .unwrap_or(Provider::Other);
            let version = version_counts
                .into_iter()
                .max_by_key(|(_, c)| *c)
                .map(|(v, _)| v);
            AttackResources {
                provider,
                packets: stats.packets,
                client_ips: stats.client_ips.len(),
                client_ports: stats.client_ports.len(),
                scids: stats.scids.len(),
                version,
            }
        })
        .collect()
}

fn median_u64(values: &mut [u64]) -> u64 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    values[values.len() / 2]
}

/// Runs the experiment.
pub fn run(scenario: &Scenario, analysis: &Analysis) -> Report {
    let mut report = Report::new(
        "fig09",
        "Attack properties per content provider (medians per attack)",
    )
    .with_columns([
        "provider",
        "attacks",
        "share",
        "med packets",
        "med client IPs",
        "med ports",
        "med SCIDs",
        "SCIDs/packet",
        "dominant version",
    ]);

    let resources = attack_resources(scenario, analysis);
    let total = resources.len().max(1) as f64;
    let mut provider_rows: Vec<(Provider, Vec<&AttackResources>)> = Provider::ALL
        .iter()
        .map(|p| (*p, resources.iter().filter(|r| r.provider == *p).collect()))
        .collect();
    provider_rows.retain(|(_, rs)| !rs.is_empty());

    for (provider, rs) in &provider_rows {
        let mut packets: Vec<u64> = rs.iter().map(|r| r.packets).collect();
        let mut ips: Vec<u64> = rs.iter().map(|r| r.client_ips as u64).collect();
        let mut ports: Vec<u64> = rs.iter().map(|r| r.client_ports as u64).collect();
        let mut scids: Vec<u64> = rs.iter().map(|r| r.scids as u64).collect();
        let scids_per_packet: f64 = rs
            .iter()
            .map(|r| r.scids as f64 / r.packets.max(1) as f64)
            .sum::<f64>()
            / rs.len() as f64;
        let mut version_counts: HashMap<u32, u64> = HashMap::new();
        for r in rs.iter().filter_map(|r| r.version) {
            *version_counts.entry(r).or_default() += 1;
        }
        let dominant =
            version_counts
                .iter()
                .max_by_key(|(_, c)| **c)
                .map_or("-".to_string(), |(v, c)| {
                    format!(
                        "{} ({})",
                        Version::from_wire(*v).label(),
                        fmt_percent(*c as f64 / rs.len() as f64)
                    )
                });
        report.push_row([
            provider.label().to_string(),
            rs.len().to_string(),
            fmt_percent(rs.len() as f64 / total),
            median_u64(&mut packets).to_string(),
            median_u64(&mut ips).to_string(),
            median_u64(&mut ports).to_string(),
            median_u64(&mut scids).to_string(),
            fmt_f64(scids_per_packet),
            dominant,
        ]);
    }

    let share = |p: Provider| resources.iter().filter(|r| r.provider == p).count() as f64 / total;
    report.push_finding(
        "attacks targeting Google",
        "58%",
        &fmt_percent(share(Provider::Google)),
    );
    report.push_finding(
        "attacks targeting Facebook",
        "25%",
        &fmt_percent(share(Provider::Facebook)),
    );
    report.push_finding(
        "top-2 providers combined",
        ">83%",
        &fmt_percent(share(Provider::Google) + share(Provider::Facebook)),
    );

    // Ports drive SCIDs; IPs stay low.
    let mut all_ips: Vec<u64> = resources.iter().map(|r| r.client_ips as u64).collect();
    let mut all_ports: Vec<u64> = resources.iter().map(|r| r.client_ports as u64).collect();
    report.push_finding(
        "median spoofed client IPs per attack",
        "relatively low",
        &median_u64(&mut all_ips).to_string(),
    );
    report.push_finding(
        "median client ports per attack",
        "driving factor for SCIDs",
        &median_u64(&mut all_ports).to_string(),
    );

    // Google's per-packet SCID load vs Facebook's.
    let mean_load = |p: Provider| {
        let rs: Vec<&AttackResources> = resources.iter().filter(|r| r.provider == p).collect();
        if rs.is_empty() {
            0.0
        } else {
            rs.iter()
                .map(|r| r.scids as f64 / r.packets.max(1) as f64)
                .sum::<f64>()
                / rs.len() as f64
        }
    };
    report.push_finding(
        "SCIDs per packet: Google vs Facebook",
        "Google higher (more server load)",
        &format!(
            "{} vs {}",
            fmt_f64(mean_load(Provider::Google)),
            fmt_f64(mean_load(Provider::Facebook))
        ),
    );

    // The §5.2 validity check: backscatter DCIDs have length zero.
    let valid_dcids = analysis
        .responses
        .iter()
        .filter(|o| o.dissected.all_dcids_empty())
        .count();
    report.push_finding(
        "backscatter with zero-length DCIDs",
        "all (validity check)",
        &fmt_percent(valid_dcids as f64 / analysis.responses.len().max(1) as f64),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use quicsand_traffic::ScenarioConfig;

    #[test]
    fn provider_shares_and_scid_load() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&scenario, &analysis);
        let pct = |i: usize| -> f64 {
            report.findings[i]
                .measured
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        assert!(pct(0) > 35.0, "google share {}", pct(0));
        assert!(pct(2) > 60.0, "top2 share {}", pct(2));
        // SCID load: Google > Facebook (finding 5).
        let loads: Vec<f64> = report.findings[5]
            .measured
            .split(" vs ")
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(
            loads[0] > loads[1],
            "google {} vs fb {}",
            loads[0],
            loads[1]
        );
        // All backscatter carries empty DCIDs (finding 6).
        assert_eq!(report.findings[6].measured, "100.0%");
    }

    #[test]
    fn ports_exceed_ips() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&scenario, &analysis);
        let ips: u64 = report.findings[3].measured.parse().unwrap();
        let ports: u64 = report.findings[4].measured.parse().unwrap();
        assert!(
            ports > ips * 3,
            "port randomization must dominate: {ports} ports vs {ips} ips"
        );
        assert!(ips <= 24, "spoofed IP pools are small");
    }

    #[test]
    fn facebook_dominated_by_mvfst() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&scenario, &analysis);
        let fb_row = report
            .rows
            .iter()
            .find(|r| r[0] == "Facebook")
            .expect("facebook attacks present");
        assert!(
            fb_row[8].contains("mvfst-draft-27"),
            "facebook version {}",
            fb_row[8]
        );
    }
}
