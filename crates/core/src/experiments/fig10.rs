//! Fig. 10 (Appendix B) — threshold-weight sweep.
//!
//! All three Moore et al. thresholds are scaled by a weight `w`; the
//! paper shows many low-volume events are excluded for w ≤ 0.3, that
//! attacks persist even at w = 10, and that the share of attacks
//! hitting well-known content infrastructure stays high for every `w`.

use crate::analysis::Analysis;
use crate::report::{fmt_percent, Report};
use quicsand_sessions::dos::{detect_attacks, AttackProtocol, DosThresholds};
use quicsand_traffic::Scenario;

/// The weights swept (paper x-axis, log-spaced 0.1–10).
pub const WEIGHTS: [f64; 9] = [0.1, 0.2, 0.3, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0];

/// Runs the experiment.
pub fn run(scenario: &Scenario, analysis: &Analysis) -> Report {
    let mut report = Report::new(
        "fig10",
        "DoS threshold weight sweep: detected attacks and content-provider share",
    )
    .with_columns(["weight", "attacks", "content provider share"]);

    let mut at_default = 0usize;
    let mut at_strictest = 0usize;
    for w in WEIGHTS {
        let thresholds = DosThresholds::weighted(w);
        let attacks = detect_attacks(
            &analysis.response_sessions,
            AttackProtocol::Quic,
            &thresholds,
        );
        let known = attacks
            .iter()
            .filter(|a| scenario.world.servers.is_known_server(a.victim))
            .count();
        let share = known as f64 / attacks.len().max(1) as f64;
        if w == 1.0 {
            at_default = attacks.len();
        }
        if w == 10.0 {
            at_strictest = attacks.len();
        }
        report.push_row([
            format!("{w:.1}"),
            attacks.len().to_string(),
            fmt_percent(share),
        ]);
    }

    report.push_finding(
        "attacks at default thresholds (w=1)",
        "2905",
        &at_default.to_string(),
    );
    report.push_finding(
        "attacks remain at w=10",
        "5 (non-zero)",
        &at_strictest.to_string(),
    );
    report.push_note(
        "the exact w=10 count tracks the extreme tail of the intensity          distribution; the reproduced claim is that a handful of floods          survive even a 10x-strict configuration",
    );
    report.push_finding(
        "content-infrastructure share stays high across w",
        "yes",
        if report
            .rows
            .iter()
            // Rows with zero detections carry no share information.
            .filter(|r| r[1].parse::<u64>().unwrap_or(0) > 0)
            .all(|r| r[2].trim_end_matches('%').parse::<f64>().unwrap_or(0.0) > 70.0)
        {
            "yes"
        } else {
            "no"
        },
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use quicsand_traffic::ScenarioConfig;

    #[test]
    fn sweep_is_monotone_and_survives_strictest() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&scenario, &analysis);
        let counts: Vec<u64> = report.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "stricter thresholds must not find more");
        }
        // Relaxed thresholds sweep in the misconfig noise.
        assert!(counts[0] > counts[4], "w=0.1 must exceed w=1");
        assert_eq!(report.findings[2].measured, "yes");
    }
}
