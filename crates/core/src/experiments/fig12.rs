//! Fig. 12 (Appendix C) — time overlap of concurrent attacks.
//!
//! The paper: three quarters of concurrent QUIC attacks run completely
//! in parallel to a TCP/ICMP attack (overlap share 100 %); the mean
//! overlap is 95 % of the QUIC attack's duration.

use crate::analysis::Analysis;
use crate::report::{fmt_percent, Report};
use quicsand_sessions::Cdf;

/// Runs the experiment.
pub fn run(analysis: &Analysis) -> Report {
    let mut report = Report::new("fig12", "CDF of overlap share for concurrent QUIC attacks")
        .with_columns(["overlap share", "CDF"]);

    let shares = analysis.multivector.overlap_shares();
    let cdf = Cdf::new(shares.clone());
    for (x, y) in cdf.points() {
        report.push_row([format!("{x:.3}"), format!("{y:.4}")]);
    }

    let full = shares.iter().filter(|s| **s >= 0.999).count();
    report.push_finding(
        "concurrent attacks fully overlapped (100%)",
        "~75%",
        &fmt_percent(full as f64 / shares.len().max(1) as f64),
    );
    let mean = if shares.is_empty() {
        0.0
    } else {
        shares.iter().sum::<f64>() / shares.len() as f64
    };
    report.push_finding("mean overlap share", "95%", &fmt_percent(mean));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use quicsand_traffic::{Scenario, ScenarioConfig};

    #[test]
    fn most_concurrent_attacks_fully_overlap() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&analysis);
        let full: f64 = report.findings[0]
            .measured
            .trim_end_matches('%')
            .parse()
            .unwrap();
        let mean: f64 = report.findings[1]
            .measured
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(full > 50.0, "fully-overlapped share {full}%");
        assert!(mean > 80.0, "mean overlap {mean}%");
    }
}
