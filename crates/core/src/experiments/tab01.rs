//! Table 1 — local server tests: flood volume vs service availability,
//! with and without RETRY.
//!
//! Reproduces the paper's 9 rows. The default run scales the request
//! counts down (the mechanism — state-table exhaustion at a 60 s hold
//! and the stateless RETRY bypass — is rate-driven, not count-driven);
//! `run_full` replays the exact paper counts.

use crate::report::Report;
use quicsand_server::model::ServerConfig;
use quicsand_server::replay::{paper_table_rows, replay_flood, ReplayConfig, ReplayOutcome};

/// Paper availability per row, for the findings comparison.
const PAPER_AVAILABILITY: [u64; 9] = [100, 68, 7, 100, 26, 26, 100, 100, 100];

/// Runs one row.
pub fn run_row(pps: u64, retry: bool, workers: usize, requests: u64, seed: u64) -> ReplayOutcome {
    let server = ServerConfig {
        workers,
        ..ServerConfig::default()
    }
    .with_retry(retry);
    replay_flood(
        &ReplayConfig {
            pps,
            total_requests: requests,
            server,
        },
        seed,
    )
}

fn run_with_scale(scale: f64) -> Report {
    let mut report = Report::new(
        "tab01",
        "Local QUIC server under Initial floods: service availability (Table 1)",
    )
    .with_columns([
        "volume [pps]",
        "retry",
        "workers",
        "client req",
        "server resp",
        "available",
        "extra RTT",
    ]);

    for (i, (pps, retry, workers, paper_requests)) in paper_table_rows().into_iter().enumerate() {
        let requests = ((paper_requests as f64 * scale) as u64).max(1_000);
        let outcome = run_row(pps, retry, workers, requests, 42 + i as u64);
        report.push_row([
            pps.to_string(),
            if retry { "yes" } else { "no" }.to_string(),
            workers.to_string(),
            outcome.requests.to_string(),
            outcome.responses.to_string(),
            format!("{}%", outcome.availability_percent()),
            if outcome.extra_rtt { "yes" } else { "no" }.to_string(),
        ]);
        report.push_finding(
            &format!(
                "availability at {pps} pps, {workers} workers{}",
                if retry { ", RETRY" } else { "" }
            ),
            &format!("{}%", PAPER_AVAILABILITY[i]),
            &format!("{}%", outcome.availability_percent()),
        );
    }
    if (scale - 1.0).abs() > 1e-9 {
        report.push_note(&format!(
            "request counts scaled by {scale} relative to the paper's replay; rates (pps) are unscaled"
        ));
    }
    report
}

/// Runs the table with scaled-down request counts (fast).
pub fn run_scaled(scale: f64) -> Report {
    run_with_scale(scale)
}

/// Runs the table with the paper's exact request counts.
pub fn run_full() -> Report {
    run_with_scale(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_table_reproduces_the_shape() {
        let report = run_scaled(0.05);
        assert_eq!(report.rows.len(), 9);
        let avail = |i: usize| -> u64 { report.rows[i][5].trim_end_matches('%').parse().unwrap() };
        // Row 0: 10 pps / 4 workers -> fine.
        assert_eq!(avail(0), 100);
        // Row 2: 1000 pps / 4 workers -> collapse below row 1.
        assert!(avail(2) < avail(1));
        assert!(avail(2) <= 35, "row 2 availability {}", avail(2));
        // Row 3: 128 workers restore availability at 1000 pps.
        assert!(avail(3) >= 95);
        // Rows 6-8: RETRY -> 100 % everywhere, extra RTT.
        for i in 6..9 {
            assert_eq!(avail(i), 100, "retry row {i}");
            assert_eq!(report.rows[i][6], "yes");
        }
        // Non-retry rows have no extra RTT.
        assert_eq!(report.rows[0][6], "no");
    }

    #[test]
    fn findings_cover_all_rows() {
        let report = run_scaled(0.02);
        assert_eq!(report.findings.len(), 9);
        assert!(report.notes[0].contains("scaled"));
    }
}
