//! SVG figure builders: the paper's plots as actual plots.
//!
//! Each builder turns the analysis products into a [`PlotSpec`];
//! `render_figures` in `quicsand-bench` writes them to disk. Shapes
//! mirror the paper's presentation (hourly series, CDFs with log-scaled
//! x axes, share bars).

use crate::analysis::Analysis;
use crate::plot::PlotSpec;
use quicsand_intel::NetworkType;
use quicsand_net::Duration;
use quicsand_sessions::dos::attacks_per_victim;
use quicsand_sessions::session::timeout_sweep;
use quicsand_sessions::Cdf;
use quicsand_traffic::Scenario;

/// Every figure, as `(file stem, plot)` pairs.
pub fn all(scenario: &Scenario, analysis: &Analysis) -> Vec<(String, PlotSpec)> {
    vec![
        ("fig02_research_bias".to_string(), fig02(scenario, analysis)),
        ("fig03_diurnal".to_string(), fig03(scenario, analysis)),
        ("fig04_timeout_knee".to_string(), fig04(analysis)),
        ("fig05_network_types".to_string(), fig05(scenario, analysis)),
        ("fig06_victim_cdf".to_string(), fig06(analysis)),
        ("fig07a_durations".to_string(), fig07_durations(analysis)),
        (
            "fig07b_intensities".to_string(),
            fig07_intensities(analysis),
        ),
        ("fig08_multivector".to_string(), fig08(analysis)),
        (
            "fig10_threshold_sweep".to_string(),
            fig10(scenario, analysis),
        ),
        ("fig12_overlap".to_string(), fig12(analysis)),
        ("fig13_gaps".to_string(), fig13(analysis)),
    ]
}

fn hourly_series(series: &quicsand_telescope::HourlySeries, hours: u64) -> Vec<(f64, f64)> {
    series
        .dense(hours)
        .into_iter()
        .map(|(h, c)| (h as f64, c as f64))
        .collect()
}

/// Fig. 2: research vs other packets per hour.
pub fn fig02(scenario: &Scenario, analysis: &Analysis) -> PlotSpec {
    let hours = u64::from(scenario.config.days) * 24;
    let other: Vec<(f64, f64)> = (0..hours)
        .map(|h| {
            (
                h as f64,
                (analysis.request_hourly.get(h) + analysis.response_hourly.get(h)) as f64,
            )
        })
        .collect();
    PlotSpec::line(
        "QUIC packets at the telescope (research scanner bias)",
        "hour",
        "packets/hour",
    )
    .with_series("research", hourly_series(&analysis.research_hourly, hours))
    .with_series("other", other)
}

/// Fig. 3: sanitized requests vs responses per hour.
pub fn fig03(scenario: &Scenario, analysis: &Analysis) -> PlotSpec {
    let hours = u64::from(scenario.config.days) * 24;
    PlotSpec::line("Sanitized QUIC packets by type", "hour", "packets/hour")
        .with_series("requests", hourly_series(&analysis.request_hourly, hours))
        .with_series("responses", hourly_series(&analysis.response_hourly, hours))
}

/// Fig. 4: sessions vs timeout.
pub fn fig04(analysis: &Analysis) -> PlotSpec {
    let mut stream: Vec<_> = analysis
        .requests
        .iter()
        .chain(analysis.responses.iter())
        .map(|o| (o.ts, o.src))
        .collect();
    stream.sort_unstable_by_key(|(ts, _)| *ts);
    let timeouts: Vec<Duration> = (1..=60).map(Duration::from_mins).collect();
    let sweep = timeout_sweep(stream, &timeouts);
    let points: Vec<(f64, f64)> = sweep
        .counts
        .iter()
        .map(|(t, c)| ((t.as_secs() / 60) as f64, *c as f64))
        .collect();
    let floor: Vec<(f64, f64)> = vec![
        (1.0, sweep.infinity_floor as f64),
        (60.0, sweep.infinity_floor as f64),
    ];
    PlotSpec::line(
        "Sessions vs inactivity timeout",
        "timeout [min]",
        "sessions",
    )
    .with_series("sessions", points)
    .with_series("timeout = inf", floor)
}

/// Fig. 5: network types of request/response sessions.
pub fn fig05(scenario: &Scenario, analysis: &Analysis) -> PlotSpec {
    let share = |sessions: &[quicsand_sessions::Session], ty: NetworkType| {
        let n = sessions.len().max(1) as f64;
        sessions
            .iter()
            .filter(|s| scenario.world.asdb.network_type(s.src) == ty)
            .count() as f64
            / n
    };
    let mut requests = Vec::new();
    let mut responses = Vec::new();
    for (i, ty) in NetworkType::ALL.iter().enumerate() {
        requests.push((i as f64, share(&analysis.request_sessions, *ty)));
        responses.push((i as f64, share(&analysis.response_sessions, *ty)));
    }
    PlotSpec::bar(
        "Source network types of sessions",
        "network type",
        "share of sessions",
    )
    .with_categories(NetworkType::ALL.iter().map(|t| t.label()))
    .with_series("requests", requests)
    .with_series("responses", responses)
}

/// Fig. 6: CDF of attacks per victim.
pub fn fig06(analysis: &Analysis) -> PlotSpec {
    let counts = attacks_per_victim(&analysis.quic_attacks);
    let cdf = Cdf::new(counts.values().map(|&c| c as f64).collect());
    PlotSpec::step(
        "Attacks per QUIC flood victim (CDF)",
        "attacks per victim",
        "CDF",
    )
    .with_log_x()
    .with_series("victims", cdf.points())
}

/// Fig. 7(a): flood duration CDFs.
pub fn fig07_durations(analysis: &Analysis) -> PlotSpec {
    let quic = Cdf::new(
        analysis
            .quic_attacks
            .iter()
            .map(|a| a.duration().as_secs_f64())
            .collect(),
    );
    let common = Cdf::new(
        analysis
            .common_attacks
            .iter()
            .map(|a| a.duration().as_secs_f64())
            .collect(),
    );
    PlotSpec::step("Flood durations (CDF)", "duration [s]", "CDF")
        .with_log_x()
        .with_series("QUIC", quic.points())
        .with_series("TCP/ICMP", common.points())
}

/// Fig. 7(b): flood intensity CDFs.
pub fn fig07_intensities(analysis: &Analysis) -> PlotSpec {
    let quic = Cdf::new(analysis.quic_attacks.iter().map(|a| a.max_pps).collect());
    let common = Cdf::new(analysis.common_attacks.iter().map(|a| a.max_pps).collect());
    PlotSpec::step("Flood intensities (CDF)", "max pps", "CDF")
        .with_log_x()
        .with_series("QUIC", quic.points())
        .with_series("TCP/ICMP", common.points())
}

/// Fig. 8: multi-vector class shares.
pub fn fig08(analysis: &Analysis) -> PlotSpec {
    use quicsand_sessions::multivector::MultiVectorClass;
    let classes = [
        MultiVectorClass::Concurrent,
        MultiVectorClass::Sequential,
        MultiVectorClass::Isolated,
    ];
    let points: Vec<(f64, f64)> = classes
        .iter()
        .enumerate()
        .map(|(i, c)| (i as f64, analysis.multivector.share(*c)))
        .collect();
    PlotSpec::bar(
        "Multi-vector attacks: QUIC floods vs TCP/ICMP floods",
        "class",
        "share of QUIC floods",
    )
    .with_categories(classes.iter().map(|c| c.label()))
    .with_series("QUIC floods", points)
}

/// Fig. 10: threshold-weight sweep.
pub fn fig10(scenario: &Scenario, analysis: &Analysis) -> PlotSpec {
    use quicsand_sessions::dos::{detect_attacks, AttackProtocol, DosThresholds};
    let mut attacks = Vec::new();
    let mut shares = Vec::new();
    for w in super::fig10::WEIGHTS {
        let detected = detect_attacks(
            &analysis.response_sessions,
            AttackProtocol::Quic,
            &DosThresholds::weighted(w),
        );
        let known = detected
            .iter()
            .filter(|a| scenario.world.servers.is_known_server(a.victim))
            .count();
        attacks.push((w, detected.len() as f64));
        shares.push((w, known as f64 / detected.len().max(1) as f64));
    }
    PlotSpec::line(
        "DoS threshold weight sweep",
        "threshold weight w",
        "detected attacks / content share",
    )
    .with_log_x()
    .with_series("attacks", attacks)
    .with_series("content share", shares)
}

/// Fig. 12: overlap CDF of concurrent attacks.
pub fn fig12(analysis: &Analysis) -> PlotSpec {
    let cdf = Cdf::new(analysis.multivector.overlap_shares());
    PlotSpec::step(
        "Overlap of concurrent QUIC attacks (CDF)",
        "overlap share of attack time",
        "CDF",
    )
    .with_series("concurrent attacks", cdf.points())
}

/// Fig. 13: sequential gap CDF.
pub fn fig13(analysis: &Analysis) -> PlotSpec {
    let cdf = Cdf::new(
        analysis
            .multivector
            .gap_seconds()
            .iter()
            .map(|s| s / 3_600.0)
            .collect(),
    );
    PlotSpec::step(
        "Gaps between sequential QUIC and TCP/ICMP attacks (CDF)",
        "gap [h]",
        "CDF",
    )
    .with_log_x()
    .with_series("sequential attacks", cdf.points())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use crate::plot::render_svg;
    use quicsand_traffic::ScenarioConfig;
    use std::sync::OnceLock;

    fn fixtures() -> &'static (Scenario, Analysis) {
        static CELL: OnceLock<(Scenario, Analysis)> = OnceLock::new();
        CELL.get_or_init(|| {
            let scenario = Scenario::generate(&ScenarioConfig::test());
            let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
            (scenario, analysis)
        })
    }

    #[test]
    fn every_figure_renders_nonempty_svg() {
        let (scenario, analysis) = fixtures();
        let figures = all(scenario, analysis);
        assert_eq!(figures.len(), 11);
        let mut stems = std::collections::HashSet::new();
        for (stem, spec) in figures {
            assert!(stems.insert(stem.clone()), "duplicate stem {stem}");
            let svg = render_svg(&spec);
            assert!(svg.starts_with("<svg"), "{stem} renders");
            assert!(svg.len() > 500, "{stem} has content: {} bytes", svg.len());
            assert!(
                !spec.series.iter().all(|s| s.points.is_empty()),
                "{stem} has data"
            );
        }
    }

    #[test]
    fn cdf_figures_end_at_one() {
        let (_, analysis) = fixtures();
        for spec in [fig06(analysis), fig07_durations(analysis), fig13(analysis)] {
            for series in &spec.series {
                let last = series.points.last().unwrap().1;
                assert!((last - 1.0).abs() < 1e-9, "{} ends at {last}", spec.title);
            }
        }
    }
}
