//! Fig. 8 — multi-vector attacks: concurrent / sequential / isolated
//! shares.
//!
//! The paper: 51 % of QUIC floods overlap in time with TCP/ICMP floods,
//! 40 % hit a victim that was also attacked at another time, only 9 %
//! are unrelated to any common flood.

use crate::analysis::Analysis;
use crate::report::{fmt_percent, Report};
use quicsand_sessions::multivector::MultiVectorClass;

/// Runs the experiment.
pub fn run(analysis: &Analysis) -> Report {
    let mut report = Report::new(
        "fig08",
        "Multi-vector attacks: QUIC floods relative to TCP/ICMP floods",
    )
    .with_columns(["class", "QUIC attacks", "share"]);

    let total = analysis.multivector.attacks.len().max(1);
    for class in [
        MultiVectorClass::Concurrent,
        MultiVectorClass::Sequential,
        MultiVectorClass::Isolated,
    ] {
        let count = analysis
            .multivector
            .class_counts
            .get(class.label())
            .copied()
            .unwrap_or(0);
        report.push_row([
            class.label().to_string(),
            count.to_string(),
            fmt_percent(count as f64 / total as f64),
        ]);
    }

    report.push_finding(
        "concurrent with TCP/ICMP floods",
        "51%",
        &fmt_percent(analysis.multivector.share(MultiVectorClass::Concurrent)),
    );
    report.push_finding(
        "sequential to TCP/ICMP floods",
        "40%",
        &fmt_percent(analysis.multivector.share(MultiVectorClass::Sequential)),
    );
    report.push_finding(
        "isolated QUIC floods",
        "9%",
        &fmt_percent(analysis.multivector.share(MultiVectorClass::Isolated)),
    );
    let gaps = analysis.multivector.gap_seconds();
    if !gaps.is_empty() {
        let mean_hours = gaps.iter().sum::<f64>() / gaps.len() as f64 / 3_600.0;
        report.push_finding(
            "mean gap of sequential attacks",
            "36 h",
            &format!("{mean_hours:.1} h"),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use quicsand_traffic::{Scenario, ScenarioConfig};

    #[test]
    fn shares_follow_paper_ordering() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&analysis);
        let pct = |i: usize| -> f64 {
            report.findings[i]
                .measured
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        let (concurrent, sequential, isolated) = (pct(0), pct(1), pct(2));
        assert!(
            concurrent > sequential && sequential > isolated,
            "{concurrent} / {sequential} / {isolated}"
        );
        // Around half concurrent (generous band at test scale).
        assert!(
            (30.0..=70.0).contains(&concurrent),
            "concurrent {concurrent}%"
        );
        assert!(isolated < 25.0, "isolated {isolated}%");
        assert!((concurrent + sequential + isolated - 100.0).abs() < 0.2);
    }
}
