//! Fig. 5 — source network types of sessions.
//!
//! The paper: request sessions originate predominantly from eyeball
//! networks; response sessions are received almost exclusively from
//! content networks.

use crate::analysis::Analysis;
use crate::report::{fmt_percent, Report};
use quicsand_intel::NetworkType;
use quicsand_sessions::session::Session;
use quicsand_traffic::Scenario;

fn type_shares(sessions: &[Session], scenario: &Scenario) -> Vec<(NetworkType, f64)> {
    let mut counts = std::collections::HashMap::new();
    for s in sessions {
        *counts
            .entry(scenario.world.asdb.network_type(s.src))
            .or_insert(0u64) += 1;
    }
    let total = sessions.len().max(1) as f64;
    NetworkType::ALL
        .iter()
        .map(|ty| (*ty, counts.get(ty).copied().unwrap_or(0) as f64 / total))
        .collect()
}

/// Runs the experiment.
pub fn run(scenario: &Scenario, analysis: &Analysis) -> Report {
    let mut report = Report::new(
        "fig05",
        "Source network types of sessions (PeeringDB mapping)",
    )
    .with_columns(["network type", "request sessions", "response sessions"]);

    let request_shares = type_shares(&analysis.request_sessions, scenario);
    let response_shares = type_shares(&analysis.response_sessions, scenario);
    for ((ty, req), (_, resp)) in request_shares.iter().zip(&response_shares) {
        report.push_row([
            ty.label().to_string(),
            fmt_percent(*req),
            fmt_percent(*resp),
        ]);
    }

    let eyeball_req = request_shares
        .iter()
        .find(|(t, _)| *t == NetworkType::Eyeball)
        .map_or(0.0, |(_, s)| *s);
    let content_resp = response_shares
        .iter()
        .find(|(t, _)| *t == NetworkType::Content)
        .map_or(0.0, |(_, s)| *s);
    report.push_finding(
        "request sessions from eyeball networks",
        "predominant",
        &fmt_percent(eyeball_req),
    );
    report.push_finding(
        "response sessions from content networks",
        "almost exclusive",
        &fmt_percent(content_resp),
    );

    // §5.2 corroborations on the same session sets.
    let request_sources: std::collections::HashSet<_> =
        analysis.request_sessions.iter().map(|s| s.src).collect();
    let summary = scenario.world.greynoise.summarize(request_sources.iter());
    report.push_finding(
        "benign request sources (GreyNoise)",
        "none",
        &summary.benign.to_string(),
    );
    report.push_finding(
        "tagged request sources (Mirai/EB/bruteforce)",
        "2.3%",
        &fmt_percent(summary.tagged_share()),
    );

    // Country mix of request sessions.
    let mut by_country = std::collections::HashMap::new();
    for s in &analysis.request_sessions {
        if let Some(c) = scenario.world.asdb.country(s.src) {
            *by_country.entry(c).or_insert(0u64) += 1;
        }
    }
    let total = analysis.request_sessions.len().max(1) as f64;
    let share = |c: &str| by_country.get(c).copied().unwrap_or(0) as f64 / total;
    report.push_finding(
        "top request origin countries",
        "BD 34%, US 27%, DZ 8%",
        &format!(
            "BD {}, US {}, DZ {}",
            fmt_percent(share("BD")),
            fmt_percent(share("US")),
            fmt_percent(share("DZ"))
        ),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use quicsand_traffic::ScenarioConfig;

    #[test]
    fn network_types_match_paper_pattern() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&scenario, &analysis);
        let pct = |s: &str| -> f64 { s.trim_end_matches('%').parse().unwrap() };
        assert!(pct(&report.findings[0].measured) > 80.0, "eyeball requests");
        assert!(
            pct(&report.findings[1].measured) > 80.0,
            "content responses"
        );
        assert_eq!(report.findings[2].measured, "0", "no benign sources");
    }

    #[test]
    fn country_mix_reported() {
        let mut config = ScenarioConfig::test();
        config.request_sessions = 1_000;
        let scenario = Scenario::generate(&config);
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&scenario, &analysis);
        let countries = &report.findings[4].measured;
        // BD must lead with roughly a third.
        let bd: f64 = countries
            .split("BD ")
            .nth(1)
            .unwrap()
            .split('%')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((25.0..=45.0).contains(&bd), "BD share {bd}");
    }
}
