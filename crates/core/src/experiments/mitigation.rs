//! §5.2 extension — countermeasure deployment: port-based vs
//! QUIC-specific filtering, measured.
//!
//! The paper's operational takeaway: "operators may protect against
//! QUIC floods by filtering based on common transport protocol features
//! (i.e., ports) instead of using QUIC-specific features (i.e., SCIDs),
//! which eases the deployment of countermeasures." This experiment puts
//! numbers on that recommendation across two flood types:
//!
//! * a **botnet** flood (real, unspoofed sources — Mirai-style), and
//! * a **spoofed** flood (random source per packet, the kind whose
//!   backscatter the telescope captures).
//!
//! The QUIC-aware per-source connection budget is surgical against the
//! botnet but is *defeated outright* by address spoofing — every packet
//! is a "new source" — while its flow table explodes. The content-blind
//! port limiter degrades gracefully against both at O(1) state, paying
//! with collateral damage. Hence the paper's advice.

use crate::report::{fmt_percent, Report};
use quicsand_net::{Duration, Timestamp};
use quicsand_server::filter::{ConnectionIdLimiter, IngressFilter, PortRateLimiter};
use quicsand_server::replay::InitialStream;
use std::net::Ipv4Addr;

/// Flood source model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloodKind {
    /// Unspoofed bots: a fixed pool of 50 sources.
    Botnet,
    /// Randomly spoofed source per packet.
    Spoofed,
}

impl FloodKind {
    fn label(self) -> &'static str {
        match self {
            FloodKind::Botnet => "botnet",
            FloodKind::Spoofed => "spoofed",
        }
    }
}

/// Result of pushing a mixed flood+legit stream through one filter.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterOutcome {
    /// Strategy label.
    pub label: &'static str,
    /// Flood model.
    pub flood: FloodKind,
    /// Share of flood packets admitted (lower is better).
    pub flood_admitted: f64,
    /// Share of legitimate packets admitted (higher is better).
    pub legit_admitted: f64,
    /// State entries held at the end (deployability cost).
    pub state_entries: usize,
}

/// Pushes `secs` seconds of flood at `flood_pps` interleaved with a
/// legitimate client population (20 clients, one fresh connection every
/// 10 s each) through `filter`.
pub fn evaluate<F: IngressFilter>(
    mut filter: F,
    kind: FloodKind,
    flood_pps: u64,
    secs: u64,
    seed: u64,
) -> FilterOutcome {
    let mut flood = InitialStream::new(seed);
    let mut legit = InitialStream::new(seed ^ 0x1e91);
    let mut flood_total = 0u64;
    let mut flood_ok = 0u64;
    let mut legit_total = 0u64;
    let mut legit_ok = 0u64;

    let bot_pool: Vec<Ipv4Addr> = (0..50).map(|i| Ipv4Addr::new(10, 66, 0, i)).collect();
    let legit_sources: Vec<Ipv4Addr> = (0..20).map(|i| Ipv4Addr::new(198, 51, 100, i)).collect();

    for sec in 0..secs {
        for i in 0..flood_pps {
            let p = flood.next().expect("infinite");
            let src = match kind {
                FloodKind::Spoofed => p.src_ip,
                FloodKind::Botnet => bot_pool[(flood_total % 50) as usize],
            };
            let ts =
                Timestamp::from_secs(sec) + Duration::from_micros(i * 1_000_000 / flood_pps.max(1));
            flood_total += 1;
            if filter.admit(ts, src, &p.datagram) {
                flood_ok += 1;
            }
        }
        // Legitimate clients: one connection attempt per 10 s each,
        // staggered across the population.
        for (i, src) in legit_sources.iter().enumerate() {
            if sec % 10 != (i as u64) % 10 {
                continue;
            }
            let p = legit.next().expect("infinite");
            let ts = Timestamp::from_secs(sec) + Duration::from_millis(100 + i as u64 * 17);
            legit_total += 1;
            if filter.admit(ts, *src, &p.datagram) {
                legit_ok += 1;
            }
        }
    }
    FilterOutcome {
        label: filter.label(),
        flood: kind,
        flood_admitted: flood_ok as f64 / flood_total.max(1) as f64,
        legit_admitted: legit_ok as f64 / legit_total.max(1) as f64,
        state_entries: filter.state_entries(),
    }
}

/// Runs the experiment.
pub fn run() -> Report {
    let mut report = Report::new(
        "mitigation",
        "Flood filtering: transport-feature vs QUIC-specific strategies (§5.2 insight)",
    )
    .with_columns([
        "strategy",
        "flood",
        "flood admitted",
        "legit admitted",
        "state entries",
    ]);

    let flood_pps = 2_000u64;
    let secs = 30u64;
    let mut outcomes = Vec::new();
    for kind in [FloodKind::Botnet, FloodKind::Spoofed] {
        outcomes.push(evaluate(
            PortRateLimiter::new(100.0, 200.0),
            kind,
            flood_pps,
            secs,
            7,
        ));
        outcomes.push(evaluate(
            ConnectionIdLimiter::new(5, Duration::from_secs(10)),
            kind,
            flood_pps,
            secs,
            7,
        ));
    }
    for o in &outcomes {
        report.push_row([
            o.label.to_string(),
            o.flood.label().to_string(),
            fmt_percent(o.flood_admitted),
            fmt_percent(o.legit_admitted),
            o.state_entries.to_string(),
        ]);
    }

    let find = |label: &str, kind: FloodKind| {
        outcomes
            .iter()
            .find(|o| o.label == label && o.flood == kind)
            .expect("outcome present")
    };
    let port_spoofed = find("port rate limit", FloodKind::Spoofed);
    let cid_spoofed = find("connection-id limit", FloodKind::Spoofed);
    let cid_botnet = find("connection-id limit", FloodKind::Botnet);

    report.push_finding(
        "port filter vs spoofed flood",
        "works (feature-agnostic)",
        &format!(
            "{} admitted, {} state entries",
            fmt_percent(port_spoofed.flood_admitted),
            port_spoofed.state_entries
        ),
    );
    report.push_finding(
        "QUIC-aware filter vs spoofed flood",
        "defeated (every packet is a new source)",
        &format!(
            "{} admitted, {} state entries",
            fmt_percent(cid_spoofed.flood_admitted),
            cid_spoofed.state_entries
        ),
    );
    report.push_finding(
        "QUIC-aware filter vs botnet flood",
        "surgical (legit unharmed)",
        &format!(
            "{} flood admitted, {} legit admitted",
            fmt_percent(cid_botnet.flood_admitted),
            fmt_percent(cid_botnet.legit_admitted)
        ),
    );
    report.push_finding(
        "recommended deployment (paper §5.2)",
        "filter on ports, not SCIDs",
        "confirmed: spoofing nullifies per-flow QUIC state",
    );
    report.push_note("extension experiment quantifying the §5.2 deployability observation");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_filter_blunts_both_flood_kinds() {
        for kind in [FloodKind::Botnet, FloodKind::Spoofed] {
            let o = evaluate(PortRateLimiter::new(100.0, 200.0), kind, 2_000, 10, 3);
            assert!(o.flood_admitted < 0.1, "{:?}: {}", kind, o.flood_admitted);
            assert_eq!(o.state_entries, 1);
        }
    }

    #[test]
    fn cid_filter_is_surgical_against_botnets() {
        let o = evaluate(
            ConnectionIdLimiter::new(5, Duration::from_secs(10)),
            FloodKind::Botnet,
            2_000,
            10,
            3,
        );
        assert!(o.flood_admitted < 0.02, "flood {}", o.flood_admitted);
        assert!(o.legit_admitted > 0.95, "legit {}", o.legit_admitted);
    }

    #[test]
    fn cid_filter_defeated_by_spoofing() {
        let o = evaluate(
            ConnectionIdLimiter::new(5, Duration::from_secs(10)),
            FloodKind::Spoofed,
            2_000,
            10,
            3,
        );
        assert!(o.flood_admitted > 0.9, "flood {}", o.flood_admitted);
        assert!(
            o.state_entries > 10_000,
            "state explosion expected, got {}",
            o.state_entries
        );
    }

    #[test]
    fn report_narrative_holds() {
        let report = run();
        assert_eq!(report.rows.len(), 4);
        assert_eq!(
            report.findings[3].measured,
            "confirmed: spoofing nullifies per-flow QUIC state"
        );
    }
}
