//! Fig. 7 — CDFs of flood durations and intensities, QUIC vs TCP/ICMP.
//!
//! The paper: QUIC floods are shorter (median 255 s vs 1 499 s) but the
//! median intensity is ~1 max pps for both; the telescope's 1/512 share
//! extrapolates to 512 × max pps Internet-wide.

use crate::analysis::Analysis;
use crate::report::{fmt_f64, Report};
use quicsand_sessions::Cdf;

/// Runs the experiment.
pub fn run(analysis: &Analysis) -> Report {
    let mut report = Report::new(
        "fig07",
        "Flood durations (a) and intensities (b): QUIC vs TCP/ICMP (CDF quantiles)",
    )
    .with_columns([
        "quantile",
        "QUIC duration [s]",
        "TCP/ICMP duration [s]",
        "QUIC max pps",
        "TCP/ICMP max pps",
    ]);

    let quic_durations = Cdf::new(
        analysis
            .quic_attacks
            .iter()
            .map(|a| a.duration().as_secs_f64())
            .collect(),
    );
    let common_durations = Cdf::new(
        analysis
            .common_attacks
            .iter()
            .map(|a| a.duration().as_secs_f64())
            .collect(),
    );
    let quic_pps = Cdf::new(analysis.quic_attacks.iter().map(|a| a.max_pps).collect());
    let common_pps = Cdf::new(analysis.common_attacks.iter().map(|a| a.max_pps).collect());

    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99] {
        report.push_row([
            format!("{q:.2}"),
            fmt_f64(quic_durations.quantile(q).unwrap_or(0.0)),
            fmt_f64(common_durations.quantile(q).unwrap_or(0.0)),
            fmt_f64(quic_pps.quantile(q).unwrap_or(0.0)),
            fmt_f64(common_pps.quantile(q).unwrap_or(0.0)),
        ]);
    }

    let quic_median = quic_durations.median().unwrap_or(0.0);
    let common_median = common_durations.median().unwrap_or(0.0);
    report.push_finding(
        "median QUIC flood duration",
        "255 s",
        &format!("{} s", fmt_f64(quic_median)),
    );
    report.push_finding(
        "median TCP/ICMP flood duration",
        "1499 s",
        &format!("{} s", fmt_f64(common_median)),
    );
    report.push_finding(
        "QUIC floods shorter than TCP/ICMP",
        "yes (~5.9x)",
        &format!("yes ({}x)", fmt_f64(common_median / quic_median.max(1e-9))),
    );
    report.push_finding(
        "median QUIC intensity (max pps)",
        "~1",
        &fmt_f64(quic_pps.median().unwrap_or(0.0)),
    );
    report.push_finding(
        "median TCP/ICMP intensity (max pps)",
        "~1",
        &fmt_f64(common_pps.median().unwrap_or(0.0)),
    );
    report.push_finding(
        "estimated global rate at median (512x)",
        "~512 pps",
        &format!("{} pps", fmt_f64(quic_pps.median().unwrap_or(0.0) * 512.0)),
    );
    report.push_finding(
        "TCP/ICMP attacks detected",
        "282k (full population)",
        &analysis.common_attacks.len().to_string(),
    );
    report.push_note(
        "TCP/ICMP population generated as a documented sub-sample; distribution shapes preserved",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use quicsand_traffic::{Scenario, ScenarioConfig};

    #[test]
    fn quic_shorter_but_similar_intensity() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&analysis);
        let quic_median: f64 = report.findings[0]
            .measured
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let common_median: f64 = report.findings[1]
            .measured
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            common_median > 2.0 * quic_median,
            "QUIC {quic_median}s vs common {common_median}s"
        );
        // Medians of intensity within the same order of magnitude, near 1.
        let quic_pps: f64 = report.findings[3].measured.parse().unwrap();
        let common_pps: f64 = report.findings[4].measured.parse().unwrap();
        assert!((0.3..=3.0).contains(&quic_pps), "quic pps {quic_pps}");
        assert!((0.3..=3.0).contains(&common_pps), "common pps {common_pps}");
    }
}
