//! Fig. 13 (Appendix C) — time gaps between sequential QUIC attacks
//! and the nearest TCP/ICMP attack.
//!
//! The paper: 82 % of sequential attacks have a break of more than one
//! hour; gaps reach up to 28 days — long gaps argue these are not part
//! of one coordinated multi-vector event.

use crate::analysis::Analysis;
use crate::report::{fmt_percent, Report};
use quicsand_sessions::Cdf;

/// Runs the experiment.
pub fn run(analysis: &Analysis) -> Report {
    let mut report = Report::new(
        "fig13",
        "CDF of time gaps between sequential QUIC attacks and TCP/ICMP attacks",
    )
    .with_columns(["gap [h]", "CDF"]);

    let gaps_hours: Vec<f64> = analysis
        .multivector
        .gap_seconds()
        .iter()
        .map(|s| s / 3_600.0)
        .collect();
    let cdf = Cdf::new(gaps_hours.clone());
    for (x, y) in cdf.points() {
        report.push_row([format!("{x:.2}"), format!("{y:.4}")]);
    }

    let over_hour = gaps_hours.iter().filter(|g| **g > 1.0).count();
    report.push_finding(
        "sequential attacks with gap > 1 h",
        "82%",
        &fmt_percent(over_hour as f64 / gaps_hours.len().max(1) as f64),
    );
    report.push_finding(
        "maximum gap",
        "up to 28 days",
        &format!("{:.1} days", cdf.max().unwrap_or(0.0) / 24.0),
    );
    let mean = if gaps_hours.is_empty() {
        0.0
    } else {
        gaps_hours.iter().sum::<f64>() / gaps_hours.len() as f64
    };
    report.push_finding("mean gap", "36 h", &format!("{mean:.1} h"));
    report.push_note(
        "the mean gap is compressed relative to the paper: heavily attacked victims          host many companion floods, so the *nearest* common flood sits closer than          the planted sequential gap; the >1 h share and the day-scale tail are the          reproduced shape",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use quicsand_traffic::{Scenario, ScenarioConfig};

    #[test]
    fn gaps_are_heavy_tailed_hours() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&analysis);
        let over_hour: f64 = report.findings[0]
            .measured
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(over_hour > 60.0, "gap > 1h share {over_hour}%");
        let mean: f64 = report.findings[2]
            .measured
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(mean > 2.0, "mean gap {mean} h");
    }
}
