//! Fig. 6 — CDF of attacks per QUIC flood victim.
//!
//! The paper: 2 905 attacks over 394 victims, more than half of the
//! victims attacked only once, heavy tail (last 5 data points
//! highlighted).

use crate::analysis::Analysis;
use crate::report::{fmt_percent, Report};
use quicsand_sessions::dos::attacks_per_victim;
use quicsand_sessions::Cdf;

/// Runs the experiment.
pub fn run(analysis: &Analysis) -> Report {
    let mut report = Report::new("fig06", "CDF of number of attacks per QUIC flood victim")
        .with_columns(["attacks per victim", "CDF"]);

    let counts = attacks_per_victim(&analysis.quic_attacks);
    let samples: Vec<f64> = counts.values().map(|&c| c as f64).collect();
    let cdf = Cdf::new(samples);
    for (x, y) in cdf.points() {
        report.push_row([format!("{x:.0}"), format!("{y:.4}")]);
    }

    report.push_finding(
        "total QUIC attacks",
        "2905",
        &analysis.quic_attacks.len().to_string(),
    );
    report.push_finding("unique victims", "394", &counts.len().to_string());
    report.push_finding(
        "victims attacked exactly once",
        ">50%",
        &fmt_percent(cdf.fraction_at_or_below(1.0)),
    );

    // The highlighted tail: the 5 most-attacked victims.
    let mut tail: Vec<u64> = counts.values().copied().collect();
    tail.sort_unstable_by(|a, b| b.cmp(a));
    let top5: Vec<String> = tail.iter().take(5).map(u64::to_string).collect();
    report.push_finding(
        "5 most-attacked victims (attack counts)",
        "long tail",
        &top5.join(", "),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use quicsand_traffic::{Scenario, ScenarioConfig};

    #[test]
    fn half_of_victims_attacked_once_with_heavy_tail() {
        let scenario = Scenario::generate(&ScenarioConfig::test());
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&analysis);
        let once: f64 = report.findings[2]
            .measured
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(once > 35.0, "single-attack victims {once}%");
        let top: u64 = report.findings[3]
            .measured
            .split(", ")
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(top >= 3, "heavy tail, top victim has {top}");
        // CDF rows end at 1.0.
        let last: f64 = report.rows.last().unwrap()[1].parse().unwrap();
        assert!((last - 1.0).abs() < 1e-9);
    }
}
