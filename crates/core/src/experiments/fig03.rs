//! Fig. 3 — sanitized QUIC packets by type: requests are diurnal,
//! responses erratic.
//!
//! The paper: 15 % requests / 85 % responses; requests peak at 6:00 and
//! 18:00 UTC; responses spike erratically (flood backscatter).

use crate::analysis::Analysis;
use crate::report::{fmt_f64, fmt_percent, Report};
use quicsand_traffic::Scenario;

/// Runs the experiment.
pub fn run(scenario: &Scenario, analysis: &Analysis) -> Report {
    let mut report = Report::new(
        "fig03",
        "Sanitized QUIC packets by type (per hour), with hour-of-day request profile",
    )
    .with_columns(["hour", "requests", "responses"]);

    let hours = u64::from(scenario.config.days) * 24;
    for hour in 0..hours {
        report.push_row([
            hour.to_string(),
            analysis.request_hourly.get(hour).to_string(),
            analysis.response_hourly.get(hour).to_string(),
        ]);
    }

    let requests = analysis.requests.len() as f64;
    let responses = analysis.responses.len() as f64;
    let total = requests + responses;
    report.push_finding(
        "request share of sanitized packets",
        "15%",
        &fmt_percent(requests / total),
    );
    report.push_finding(
        "response share of sanitized packets",
        "85%",
        &fmt_percent(responses / total),
    );

    // Diurnal peaks: the two highest hours of the request profile at
    // least 6 hours apart (the profile is 12h-periodic, so adjacent
    // noisy hours must not masquerade as the second peak).
    let profile = analysis.request_hourly.hour_of_day_profile(hours);
    let mut ranked: Vec<(usize, f64)> = profile.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
    let first = ranked[0].0;
    let second = ranked[1..]
        .iter()
        .find(|(h, _)| {
            let d = (*h as i64 - first as i64).rem_euclid(24);
            d.min(24 - d) >= 6
        })
        .map_or(ranked[1].0, |(h, _)| *h);
    let mut peaks = [first, second];
    peaks.sort_unstable();
    report.push_finding(
        "request activity peaks (UTC hours)",
        "06:00 and 18:00",
        &format!("{:02}:00 and {:02}:00", peaks[0], peaks[1]),
    );

    // Stability contrast: coefficient of variation.
    let request_cv = analysis.request_hourly.coefficient_of_variation(hours);
    let response_cv = analysis.response_hourly.coefficient_of_variation(hours);
    report.push_finding(
        "hourly variability (CV) requests vs responses",
        "stable vs erratic",
        &format!("{} vs {}", fmt_f64(request_cv), fmt_f64(response_cv)),
    );
    report.push_note(
        "the measured request share sits below the paper's 15%: our flood          backscatter distribution is mean-heavier than the paper's average          response session implies (a consequence of matching the Fig. 7          duration/intensity tails); the qualitative claims — diurnal          requests, erratic responses, responses dominating — all hold",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisConfig;
    use quicsand_traffic::ScenarioConfig;

    #[test]
    fn responses_dominate_and_are_more_erratic() {
        // The CV contrast needs enough request volume that shot noise
        // does not dominate the request series: at the default test
        // scale (150 sessions over 48 h, many empty hours) both CVs
        // land near 1.05 and the comparison is a coin flip. With 2 000
        // sessions the diurnal request series settles to CV ≈ 0.5
        // while flood backscatter stays at CV ≈ 1.05.
        let mut config = ScenarioConfig::test();
        config.request_sessions = 2_000;
        let scenario = Scenario::generate(&config);
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&scenario, &analysis);
        let response_share: f64 = report.findings[1]
            .measured
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(response_share > 50.0, "response share {response_share}%");
        // CV finding: responses more variable than requests.
        let cvs: Vec<f64> = report.findings[3]
            .measured
            .split(" vs ")
            .map(|s| s.parse().unwrap())
            .collect();
        assert!(
            cvs[1] > cvs[0],
            "request CV {} vs response CV {}",
            cvs[0],
            cvs[1]
        );
    }

    #[test]
    fn diurnal_peaks_near_paper_hours() {
        // Peaks need volume; use a request-heavy scenario.
        let mut config = ScenarioConfig::test();
        config.request_sessions = 2_000;
        config.quic_attacks = 10;
        config.common_attacks = 10;
        config.misconfig_sessions = 20;
        let scenario = Scenario::generate(&config);
        let analysis = Analysis::run(&scenario, &AnalysisConfig::default());
        let report = run(&scenario, &analysis);
        let measured = &report.findings[2].measured;
        // Accept ±1 hour around each paper peak.
        let hours: Vec<i64> = measured
            .split(" and ")
            .map(|s| s[..2].parse().unwrap())
            .collect();
        assert!(
            (hours[0] - 6).abs() <= 1 && (hours[1] - 18).abs() <= 1,
            "peaks {measured}"
        );
    }
}
