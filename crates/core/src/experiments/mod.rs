//! One runner per paper artifact.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`fig02`] | Fig. 2 — research scanner bias |
//! | [`fig03`] | Fig. 3 — requests vs responses, diurnal pattern |
//! | [`fig04`] | Fig. 4 — session-timeout sweep |
//! | [`fig05`] | Fig. 5 — source network types |
//! | [`fig06`] | Fig. 6 — attacks per victim CDF |
//! | [`fig07`] | Fig. 7 — flood durations & intensities |
//! | [`fig08`] | Fig. 8 — multi-vector shares |
//! | [`fig09`] | Fig. 9 — per-provider attack properties |
//! | [`tab01`] | Table 1 — server DoS resiliency |
//! | [`fig10`] | Fig. 10 — threshold-weight sweep |
//! | [`fig11`] | Fig. 11 — single-victim timeline |
//! | [`fig12`] | Fig. 12 — concurrent overlap CDF |
//! | [`fig13`] | Fig. 13 — sequential gap CDF |
//! | [`msgmix`] | §6 — backscatter message mix & RETRY absence |
//! | [`sec3_amplification`] | §3 — amplification factors (QUIC vs NTP/DNS) |
//! | [`adaptive_retry`] | §6 proposal — adaptive RETRY deployment |
//! | [`mitigation`] | §5.2 insight — port vs QUIC-specific filtering |
//! | [`figures`] | SVG builders for every plot |

pub mod adaptive_retry;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod figures;
pub mod mitigation;
pub mod msgmix;
pub mod sec3_amplification;
pub mod tab01;
