//! A pcap stand-in: streaming binary capture format.
//!
//! Scenarios are expensive to generate at month scale; persisting them
//! lets the experiment harness generate once and analyze many times,
//! just like the paper works from a fixed April 2021 trace. The format
//! is deliberately simple: a magic header followed by length-delimited
//! records.
//!
//! ```text
//! file   := "QSCP" u16:version u16:reserved record*
//! record := u64:ts_micros u32:src u32:dst u8:tag body
//! body   := udp(src_port u16, dst_port u16, len u32, payload)
//!         | tcp(src_port u16, dst_port u16, flags u8)
//!         | icmp(kind u8)
//! ```
//! All integers little-endian.

use crate::record::{IcmpKind, PacketRecord, TcpFlags, Transport};
use crate::time::Timestamp;
use bytes::Bytes;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::Ipv4Addr;

/// File magic.
pub const MAGIC: &[u8; 4] = b"QSCP";
/// Current format version.
pub const FORMAT_VERSION: u16 = 1;

pub(crate) const TAG_UDP: u8 = 0;
pub(crate) const TAG_TCP: u8 = 1;
pub(crate) const TAG_ICMP: u8 = 2;

/// Largest UDP payload representable over IPv4 (65 535 − 20 IP − 8 UDP).
///
/// A declared record length above this bound cannot have come from a
/// real datagram, so the reader rejects it *before* allocating — a
/// corrupt or hostile capture must not be able to request a 4 GiB
/// buffer with four bytes of input.
pub const MAX_UDP_PAYLOAD: usize = 65_507;

/// Errors from reading a capture stream.
#[derive(Debug)]
pub enum CaptureError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Bad magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Unknown record tag.
    BadTag(u8),
    /// Unknown encoded enum value.
    BadValue(&'static str),
    /// A record declared a payload length no real datagram can have.
    OversizedPayload(u32),
    /// A record was cut off mid-way.
    Truncated,
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureError::Io(e) => write!(f, "io error: {e}"),
            CaptureError::BadMagic => write!(f, "bad capture magic"),
            CaptureError::BadVersion(v) => write!(f, "unsupported capture version {v}"),
            CaptureError::BadTag(t) => write!(f, "unknown record tag {t}"),
            CaptureError::BadValue(what) => write!(f, "invalid encoded value for {what}"),
            CaptureError::OversizedPayload(len) => {
                write!(f, "declared payload length {len} exceeds {MAX_UDP_PAYLOAD}")
            }
            CaptureError::Truncated => write!(f, "truncated record"),
        }
    }
}

impl std::error::Error for CaptureError {}

impl From<io::Error> for CaptureError {
    fn from(e: io::Error) -> Self {
        CaptureError::Io(e)
    }
}

/// Streaming capture writer.
pub struct CaptureWriter<W: Write> {
    inner: W,
    records_written: u64,
}

impl<W: Write> CaptureWriter<W> {
    /// Creates a writer, emitting the file header immediately.
    ///
    /// # Errors
    /// IO errors from the sink.
    pub fn new(mut inner: W) -> io::Result<Self> {
        inner.write_all(MAGIC)?;
        inner.write_all(&FORMAT_VERSION.to_le_bytes())?;
        inner.write_all(&0u16.to_le_bytes())?;
        Ok(CaptureWriter {
            inner,
            records_written: 0,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    /// IO errors from the sink; `InvalidInput` for a UDP payload larger
    /// than [`MAX_UDP_PAYLOAD`] (which the reader would refuse anyway).
    pub fn write(&mut self, record: &PacketRecord) -> io::Result<()> {
        if let Transport::Udp { payload, .. } = &record.transport {
            if payload.len() > MAX_UDP_PAYLOAD {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "udp payload of {} bytes exceeds {MAX_UDP_PAYLOAD}",
                        payload.len()
                    ),
                ));
            }
        }
        let w = &mut self.inner;
        w.write_all(&record.ts.as_micros().to_le_bytes())?;
        w.write_all(&u32::from(record.src).to_le_bytes())?;
        w.write_all(&u32::from(record.dst).to_le_bytes())?;
        match &record.transport {
            Transport::Udp {
                src_port,
                dst_port,
                payload,
            } => {
                w.write_all(&[TAG_UDP])?;
                w.write_all(&src_port.to_le_bytes())?;
                w.write_all(&dst_port.to_le_bytes())?;
                w.write_all(&(payload.len() as u32).to_le_bytes())?;
                w.write_all(payload)?;
            }
            Transport::Tcp {
                src_port,
                dst_port,
                flags,
            } => {
                w.write_all(&[TAG_TCP])?;
                w.write_all(&src_port.to_le_bytes())?;
                w.write_all(&dst_port.to_le_bytes())?;
                w.write_all(&[encode_flags(*flags)])?;
            }
            Transport::Icmp { kind } => {
                w.write_all(&[TAG_ICMP])?;
                w.write_all(&[encode_icmp(*kind)])?;
            }
        }
        self.records_written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Flushes and returns the sink.
    ///
    /// # Errors
    /// IO errors from the flush.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming capture reader; iterate to obtain records.
pub struct CaptureReader<R: Read> {
    inner: R,
}

impl<R: Read> CaptureReader<R> {
    /// Creates a reader, validating the file header.
    ///
    /// # Errors
    /// [`CaptureError`] on IO failure or bad header.
    pub fn new(mut inner: R) -> Result<Self, CaptureError> {
        let mut magic = [0u8; 4];
        inner.read_exact(&mut magic).map_err(map_truncation)?;
        if &magic != MAGIC {
            return Err(CaptureError::BadMagic);
        }
        let mut ver = [0u8; 2];
        inner.read_exact(&mut ver).map_err(map_truncation)?;
        let version = u16::from_le_bytes(ver);
        if version != FORMAT_VERSION {
            return Err(CaptureError::BadVersion(version));
        }
        let mut reserved = [0u8; 2];
        inner.read_exact(&mut reserved).map_err(map_truncation)?;
        Ok(CaptureReader { inner })
    }

    /// Reads the leading timestamp of the next record, distinguishing a
    /// clean end of stream (zero bytes available at a record boundary)
    /// from a record cut mid-timestamp (some but not all of the 8 bytes
    /// present), which must be reported as [`CaptureError::Truncated`]
    /// — `read_exact`'s `UnexpectedEof` conflates the two.
    fn read_ts(&mut self) -> Result<Option<u64>, CaptureError> {
        let mut ts_buf = [0u8; 8];
        let mut filled = 0;
        while filled < ts_buf.len() {
            match self.inner.read(&mut ts_buf[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => return Err(CaptureError::Truncated),
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(Some(u64::from_le_bytes(ts_buf)))
    }

    fn read_record(&mut self) -> Result<Option<PacketRecord>, CaptureError> {
        let ts = match self.read_ts()? {
            Some(micros) => Timestamp::from_micros(micros),
            None => return Ok(None),
        };
        let src = Ipv4Addr::from(self.read_u32()?);
        let dst = Ipv4Addr::from(self.read_u32()?);
        let tag = self.read_u8()?;
        let transport = match tag {
            TAG_UDP => {
                let src_port = self.read_u16()?;
                let dst_port = self.read_u16()?;
                let len = self.read_u32()?;
                if len as usize > MAX_UDP_PAYLOAD {
                    return Err(CaptureError::OversizedPayload(len));
                }
                let mut payload = vec![0u8; len as usize];
                self.inner
                    .read_exact(&mut payload)
                    .map_err(map_truncation)?;
                Transport::Udp {
                    src_port,
                    dst_port,
                    payload: Bytes::from(payload),
                }
            }
            TAG_TCP => {
                let src_port = self.read_u16()?;
                let dst_port = self.read_u16()?;
                let flags = decode_flags(self.read_u8()?);
                Transport::Tcp {
                    src_port,
                    dst_port,
                    flags,
                }
            }
            TAG_ICMP => Transport::Icmp {
                kind: decode_icmp(self.read_u8()?)?,
            },
            other => return Err(CaptureError::BadTag(other)),
        };
        Ok(Some(PacketRecord {
            ts,
            src,
            dst,
            transport,
        }))
    }

    fn read_u8(&mut self) -> Result<u8, CaptureError> {
        let mut b = [0u8; 1];
        self.inner.read_exact(&mut b).map_err(map_truncation)?;
        Ok(b[0])
    }

    fn read_u16(&mut self) -> Result<u16, CaptureError> {
        let mut b = [0u8; 2];
        self.inner.read_exact(&mut b).map_err(map_truncation)?;
        Ok(u16::from_le_bytes(b))
    }

    fn read_u32(&mut self) -> Result<u32, CaptureError> {
        let mut b = [0u8; 4];
        self.inner.read_exact(&mut b).map_err(map_truncation)?;
        Ok(u32::from_le_bytes(b))
    }
}

fn map_truncation(e: io::Error) -> CaptureError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        CaptureError::Truncated
    } else {
        CaptureError::Io(e)
    }
}

impl<R: Read> Iterator for CaptureReader<R> {
    type Item = Result<PacketRecord, CaptureError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_record().transpose()
    }
}

fn encode_flags(flags: TcpFlags) -> u8 {
    (flags.syn as u8) | (flags.ack as u8) << 1 | (flags.rst as u8) << 2 | (flags.fin as u8) << 3
}

pub(crate) fn decode_flags(b: u8) -> TcpFlags {
    TcpFlags {
        syn: b & 1 != 0,
        ack: b & 2 != 0,
        rst: b & 4 != 0,
        fin: b & 8 != 0,
    }
}

fn encode_icmp(kind: IcmpKind) -> u8 {
    match kind {
        IcmpKind::EchoRequest => 0,
        IcmpKind::EchoReply => 1,
        IcmpKind::DestUnreachable => 2,
        IcmpKind::TtlExceeded => 3,
    }
}

pub(crate) fn decode_icmp(b: u8) -> Result<IcmpKind, CaptureError> {
    Ok(match b {
        0 => IcmpKind::EchoRequest,
        1 => IcmpKind::EchoReply,
        2 => IcmpKind::DestUnreachable,
        3 => IcmpKind::TtlExceeded,
        _ => return Err(CaptureError::BadValue("icmp kind")),
    })
}

/// Serializes records to an in-memory capture buffer.
///
/// # Errors
/// Never fails for in-memory sinks in practice; propagates IO errors.
pub fn to_bytes(records: &[PacketRecord]) -> io::Result<Vec<u8>> {
    let mut writer = CaptureWriter::new(Vec::new())?;
    for record in records {
        writer.write(record)?;
    }
    writer.finish()
}

/// Deserializes an in-memory capture buffer.
///
/// # Errors
/// [`CaptureError`] on malformed input.
pub fn from_bytes(data: &[u8]) -> Result<Vec<PacketRecord>, CaptureError> {
    CaptureReader::new(data)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<PacketRecord> {
        vec![
            PacketRecord::udp(
                Timestamp::from_micros(123),
                Ipv4Addr::new(1, 2, 3, 4),
                Ipv4Addr::new(128, 0, 0, 1),
                40000,
                443,
                Bytes::from_static(b"\xc3payload"),
            ),
            PacketRecord::tcp(
                Timestamp::from_secs(60),
                Ipv4Addr::new(8, 8, 8, 8),
                Ipv4Addr::new(128, 5, 5, 5),
                443,
                55555,
                TcpFlags::SYN_ACK,
            ),
            PacketRecord::icmp(
                Timestamp::from_secs(61),
                Ipv4Addr::new(9, 9, 9, 9),
                Ipv4Addr::new(128, 6, 6, 6),
                IcmpKind::DestUnreachable,
            ),
            PacketRecord::udp(
                Timestamp::from_secs(62),
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(128, 7, 7, 7),
                443,
                1,
                Bytes::new(),
            ),
        ]
    }

    #[test]
    fn roundtrip() {
        let records = samples();
        let bytes = to_bytes(&records).unwrap();
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_capture() {
        let bytes = to_bytes(&[]).unwrap();
        assert_eq!(bytes.len(), 8); // header only
        assert!(from_bytes(&bytes).unwrap().is_empty());
    }

    #[test]
    fn writer_counts_records() {
        let mut writer = CaptureWriter::new(Vec::new()).unwrap();
        assert_eq!(writer.records_written(), 0);
        for record in samples() {
            writer.write(&record).unwrap();
        }
        assert_eq!(writer.records_written(), 4);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&samples()).unwrap();
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(CaptureError::BadMagic)));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = to_bytes(&[]).unwrap();
        bytes[4] = 99;
        assert!(matches!(
            from_bytes(&bytes),
            Err(CaptureError::BadVersion(99))
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = to_bytes(&samples()).unwrap();
        // Cut in the middle of the last record.
        let cut = bytes.len() - 3;
        let result = from_bytes(&bytes[..cut]);
        assert!(
            matches!(result, Err(CaptureError::Truncated)),
            "got {result:?}"
        );
    }

    #[test]
    fn bad_tag_rejected() {
        let mut bytes = to_bytes(&[]).unwrap();
        // Append a record with an invalid tag.
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(9);
        assert!(matches!(from_bytes(&bytes), Err(CaptureError::BadTag(9))));
    }

    #[test]
    fn bad_icmp_kind_rejected() {
        let mut bytes = to_bytes(&[]).unwrap();
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(TAG_ICMP);
        bytes.push(77);
        assert!(matches!(
            from_bytes(&bytes),
            Err(CaptureError::BadValue("icmp kind"))
        ));
    }

    #[test]
    fn all_flag_combinations_roundtrip() {
        for bits in 0u8..16 {
            let flags = decode_flags(bits);
            assert_eq!(encode_flags(flags), bits);
        }
    }

    #[test]
    fn oversized_declared_length_rejected_before_allocation() {
        // A hostile capture that declares a 4 GiB payload with zero
        // bytes of backing data must fail fast, not preallocate.
        let mut bytes = to_bytes(&[]).unwrap();
        bytes.extend_from_slice(&0u64.to_le_bytes()); // ts
        bytes.extend_from_slice(&0u32.to_le_bytes()); // src
        bytes.extend_from_slice(&0u32.to_le_bytes()); // dst
        bytes.push(TAG_UDP);
        bytes.extend_from_slice(&443u16.to_le_bytes());
        bytes.extend_from_slice(&443u16.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // declared len
        assert!(matches!(
            from_bytes(&bytes),
            Err(CaptureError::OversizedPayload(u32::MAX))
        ));
    }

    #[test]
    fn max_payload_boundary_roundtrips_and_one_past_is_rejected() {
        let at_limit = PacketRecord::udp(
            Timestamp::from_micros(1),
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(128, 0, 0, 1),
            40000,
            443,
            Bytes::from(vec![0xAB; MAX_UDP_PAYLOAD]),
        );
        let bytes = to_bytes(std::slice::from_ref(&at_limit)).unwrap();
        assert_eq!(from_bytes(&bytes).unwrap(), vec![at_limit]);

        let over = PacketRecord::udp(
            Timestamp::from_micros(1),
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(128, 0, 0, 1),
            40000,
            443,
            Bytes::from(vec![0xAB; MAX_UDP_PAYLOAD + 1]),
        );
        let err = to_bytes(std::slice::from_ref(&over)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn streaming_iteration() {
        let bytes = to_bytes(&samples()).unwrap();
        let reader = CaptureReader::new(&bytes[..]).unwrap();
        let mut count = 0;
        for record in reader {
            record.unwrap();
            count += 1;
        }
        assert_eq!(count, 4);
    }
}
