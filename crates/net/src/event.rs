//! A minimal discrete-event scheduler.
//!
//! The server resource model (Table 1) is a queueing simulation: packet
//! arrivals, worker completions, state expirations and keep-alive timers
//! are all timed events. The scheduler is a binary heap keyed by
//! `(timestamp, sequence)`; the sequence number makes simultaneous
//! events FIFO and the whole simulation deterministic.

use crate::time::Timestamp;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event carrying a user-defined payload.
#[derive(Debug)]
struct Scheduled<E> {
    at: Timestamp,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behaviour on BinaryHeap (a max-heap).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Timestamp,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at the epoch.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Timestamp::EPOCH,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Schedules `event` at absolute time `at`. Events scheduled in the
    /// past fire "now" (they are not reordered before already-popped
    /// events, which is the standard DES convention).
    pub fn schedule(&mut self, at: Timestamp, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        let scheduled = self.heap.pop()?;
        self.now = scheduled.at;
        Some((scheduled.at, scheduled.event))
    }

    /// Timestamp of the next event without popping.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Timestamp::from_secs(5), "c");
        q.schedule(Timestamp::from_secs(1), "a");
        q.schedule(Timestamp::from_secs(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = Timestamp::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Timestamp::from_secs(10), ());
        q.schedule(Timestamp::from_secs(20), ());
        assert_eq!(q.now(), Timestamp::EPOCH);
        q.pop();
        assert_eq!(q.now(), Timestamp::from_secs(10));
        q.pop();
        assert_eq!(q.now(), Timestamp::from_secs(20));
    }

    #[test]
    fn past_events_fire_now_not_before() {
        let mut q = EventQueue::new();
        q.schedule(Timestamp::from_secs(10), "first");
        q.pop();
        // Scheduling in the past clamps to `now`.
        q.schedule(Timestamp::from_secs(1), "late");
        let (at, event) = q.pop().unwrap();
        assert_eq!(event, "late");
        assert_eq!(at, Timestamp::from_secs(10));
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Timestamp::from_secs(2), ());
        q.schedule(Timestamp::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Timestamp::from_secs(1)));
        q.pop();
        assert_eq!(q.len(), 1);
    }

    proptest! {
        #[test]
        fn prop_pop_order_is_sorted(times in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(Timestamp::from_secs(*t), i);
            }
            let mut last = Timestamp::EPOCH;
            while let Some((at, _)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
            }
        }

        #[test]
        fn prop_all_events_delivered(n in 1usize..500) {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(Timestamp::from_secs((i % 7) as u64), i);
            }
            let mut seen = vec![false; n];
            while let Some((_, e)) = q.pop() {
                seen[e] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }
}
